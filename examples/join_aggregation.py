"""Online join aggregation: a ripple join over two sample views.

Estimates ``SUM(sale.amount * promo.discount)`` for sales joined to
promotions on PART, where each side is first restricted by its own range
predicate — the multi-table online-aggregation scenario the paper's
introduction motivates (its reference [4], ripple joins, is the consumer;
two ACE-Tree streams are the random-order inputs it needs).

Run:  python examples/join_aggregation.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import random

from repro.acetree import AceBuildParams, build_ace_tree
from repro.apps import RippleJoin, ripple_join_streams
from repro.core import Field, Schema
from repro.storage import CostModel, HeapFile, SimulatedDisk

SALE_SCHEMA = Schema(
    [Field("day", "i8"), Field("part", "i8"), Field("amount", "f8"),
     Field("pad", "bytes", 76)]
)
PROMO_SCHEMA = Schema(
    [Field("week", "i8"), Field("part", "i8"), Field("discount", "f8"),
     Field("pad", "bytes", 76)]
)

NUM_PARTS = 500


def main() -> None:
    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
    rng = random.Random(0)

    print("Generating SALE (80,000 rows) and PROMO (20,000 rows)...")
    sale = HeapFile.bulk_load(
        disk, SALE_SCHEMA,
        ((rng.randrange(365), rng.randrange(NUM_PARTS), rng.random() * 100, b"")
         for _ in range(80_000)),
        name="sale",
    )
    promo = HeapFile.bulk_load(
        disk, PROMO_SCHEMA,
        ((rng.randrange(52), rng.randrange(NUM_PARTS), rng.random() * 0.3, b"")
         for _ in range(20_000)),
        name="promo",
    )

    print("Building a sample view on each table...")
    sale_tree = build_ace_tree(sale, AceBuildParams(key_fields=("day",), seed=1))
    promo_tree = build_ace_tree(promo, AceBuildParams(key_fields=("week",), seed=2))

    # Each side restricted by its own predicate: Q1 days, Q1 weeks.
    sale_query = sale_tree.query((0, 90))
    promo_query = promo_tree.query((0, 12))
    population_r = sale_tree.estimate_count(sale_query)
    population_s = promo_tree.estimate_count(promo_query)
    print(f"SALE predicate matches ~{population_r:,.0f} rows, "
          f"PROMO predicate ~{population_s:,.0f} rows")

    truth = 0.0
    promos_by_part: dict[int, list[float]] = {}
    for row in promo.scan():
        if 0 <= row[0] <= 12:
            promos_by_part.setdefault(row[1], []).append(row[2])
    for row in sale.scan():
        if 0 <= row[0] <= 90:
            for discount in promos_by_part.get(row[1], ()):
                truth += row[2] * discount
    print(f"true SUM(amount * discount) over the join = {truth:,.0f}")

    print("\nRipple join over the two online sample streams "
          "(stop at +/-10% CI):")
    join = RippleJoin(
        value_of=lambda r, s: r[2] * s[2],
        population_r=population_r,
        population_s=population_s,
        r_key=lambda r: r[1],   # SALE.part
        s_key=lambda s: s[1],   # PROMO.part
    )
    disk.reset_clock()
    print(f"{'sim time':>10} | {'R+S samples':>12} | {'estimate':>12} | "
          f"{'95% CI':>27} | {'error':>7}")
    shown = 0
    for point in ripple_join_streams(
        sale_tree.sample(sale_query, seed=3),
        promo_tree.sample(promo_query, seed=4),
        join,
        target_relative_width=0.10,
    ):
        shown += 1
        if shown % 4 == 1:
            err = abs(point.estimate - truth) / truth
            print(f"{point.clock * 1000:>8.2f}ms | "
                  f"{point.samples_r + point.samples_s:>12,} | "
                  f"{point.estimate:>12,.0f} | [{point.low:>11,.0f}, "
                  f"{point.high:>11,.0f}] | {err:>6.2%}")
    print(f"\nstopped after {join.samples_r + join.samples_s:,} samples "
          f"({join.samples_r:,} SALE + {join.samples_s:,} PROMO); "
          f"final error {abs(join.sum_estimate - truth) / truth:.1%}")


if __name__ == "__main__":
    main()
