"""Quickstart: create a materialized sample view and sample from it.

Builds a small SALE relation on a simulated disk, creates an ACE-Tree-backed
sample view (both through the Python API and through the SQL-ish front end),
and draws an online random sample from a range predicate — the end-to-end
workflow of the paper's introduction.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    Catalog,
    CostModel,
    SimulatedDisk,
    create_sample_view,
    generate_sale_1d,
)


def main() -> None:
    # A simulated disk with the paper-shaped cost model (random page access
    # ~10x a sequential one).
    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))

    print("Generating the SALE relation (100,000 records of 100 bytes)...")
    sale = generate_sale_1d(disk, num_records=100_000, seed=0)
    print(f"  {sale.num_records} records on {sale.num_pages} pages; "
          f"full scan takes {sale.scan_seconds() * 1000:.1f} ms of simulated time")

    # --- Python API -------------------------------------------------------
    print("\nBuilding the sample view (two external sorts)...")
    view = create_sample_view("mysam", sale, index_on=("day",), seed=1)
    report = view.tree.build_report
    print(f"  ACE Tree: height {report.height}, {report.num_leaves} leaves, "
          f"mean section size {report.mean_section_size:.1f}")
    print(f"  build cost: {report.build_seconds:.2f} simulated seconds "
          f"({report.io.page_reads} page reads, {report.io.page_writes} writes)")

    # WHERE day BETWEEN 100M AND 300M (~20% of the relation).
    query = view.query((100_000_000, 300_000_000))
    print(f"\nSampling from DAY BETWEEN 1e8 AND 3e8 "
          f"(~{view.estimate_count(query):,.0f} matching records estimated)...")

    disk.reset_clock()
    stream = view.tree.sample(query, seed=2)
    first_100 = stream.take(100)
    print(f"  first 100 samples after {disk.clock * 1000:.2f} ms of simulated "
          f"I/O ({stream.stats.leaves_read} leaf reads)")
    days = sorted(r[0] for r in first_100)
    print(f"  sample day range: [{days[0]:,} .. {days[-1]:,}] — every prefix "
          "is a uniform random sample of the matching records")

    # --- SQL-ish front end --------------------------------------------------
    print("\nSame thing through the SQL front end:")
    catalog = Catalog()
    catalog.register_table("sale", sale)
    catalog.execute(
        "CREATE MATERIALIZED SAMPLE VIEW mysam2 AS SELECT * FROM sale "
        "INDEX ON day"
    )
    rows = catalog.execute(
        "SELECT * FROM mysam2 WHERE day BETWEEN 100000000 AND 300000000 "
        "SAMPLE 10",
        seed=3,
    )
    for row in rows:
        print(f"  day={row[0]:>11,}  cust={row[1]:>7}  part={row[2]:>7}")


if __name__ == "__main__":
    main()
