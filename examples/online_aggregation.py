"""Online aggregation over a sample view (the paper's flagship application).

Estimates AVG(cust) over a range predicate on DAY, watching the estimate
and its 95% confidence interval tighten as the ACE Tree streams samples —
and compares how long the randomly permuted file takes to reach the same
accuracy.  The population size for the interval comes from the ACE Tree's
internal-node counts, exactly as Section III.B of the paper suggests.

Run:  python examples/online_aggregation.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import CostModel, SimulatedDisk, generate_sale_1d
from repro.acetree import AceBuildParams, build_ace_tree
from repro.apps import aggregate_stream
from repro.baselines import build_permuted_file

TARGET_RELATIVE_WIDTH = 0.05  # stop when the CI is within +/-5% of the mean


def main() -> None:
    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
    print("Generating SALE (150,000 records) and building structures...")
    sale = generate_sale_1d(disk, num_records=150_000, seed=0)
    # height=10 gives large multi-page leaves: each random leaf access
    # amortizes its seek over ~300 records.
    tree = build_ace_tree(
        sale, AceBuildParams(key_fields=("day",), height=10, seed=1)
    )
    permuted = build_permuted_file(sale, ("day",), seed=1)

    # A selective predicate (~2.5% of the relation): the regime where the
    # paper's sample view shines (Figure 12).
    query = tree.query((200_000_000, 225_000_000))
    population = tree.estimate_count(query)
    true_values = [float(r[1]) for r in sale.scan() if 2e8 <= r[0] <= 2.25e8]
    true_mean = float(np.mean(true_values))
    print(f"query matches ~{population:,.0f} records "
          f"(true {len(true_values):,}); true AVG(cust) = {true_mean:,.1f}")

    def value_of(record) -> float:
        return float(record[1])  # the CUST column

    print(f"\nOnline aggregation from the ACE Tree "
          f"(stop at +/-{TARGET_RELATIVE_WIDTH:.0%} relative CI):")
    print(f"{'sim time':>10} | {'samples':>8} | {'AVG estimate':>13} | "
          f"{'95% CI':>25} | {'error':>7}")
    disk.reset_clock()
    start = disk.clock
    shown = 0
    last = None
    for point in aggregate_stream(
        tree.sample(query, seed=2),
        value_of,
        population=population,
        target_relative_width=TARGET_RELATIVE_WIDTH,
    ):
        last = point
        shown += 1
        if shown % 8 == 1:  # print every few progress points
            err = abs(point.mean - true_mean) / true_mean
            print(f"{(point.clock - start) * 1000:>8.2f}ms | {point.sample_size:>8} "
                  f"| {point.mean:>13,.1f} | [{point.mean_low:>10,.1f}, "
                  f"{point.mean_high:>10,.1f}] | {err:>6.2%}")
    assert last is not None
    ace_time = last.clock - start
    ace_samples = last.sample_size
    print(f"  -> ACE Tree reached the target with {ace_samples:,} samples in "
          f"{ace_time * 1000:.2f} ms of simulated time")

    print("\nSame target from the randomly permuted file:")
    start = disk.clock
    last = None
    for point in aggregate_stream(
        permuted.sample(query),
        value_of,
        population=population,
        target_relative_width=TARGET_RELATIVE_WIDTH,
    ):
        last = point
    assert last is not None
    perm_time = last.clock - start
    print(f"  -> permuted file reached it with {last.sample_size:,} samples in "
          f"{perm_time * 1000:.2f} ms of simulated time")
    print(f"\nspeedup from the sample view at this accuracy: "
          f"{perm_time / ace_time:.1f}x")


if __name__ == "__main__":
    main()
