"""Scalable clustering over a 2-D sample view (paper Section I's data-mining
motivation, in the style of Bradley et al.'s scalable K-means).

Builds a k-d ACE Tree over a 2-D SALE-like relation whose (day, amount)
points form planted clusters, then fits streaming K-means from the online
sample stream of a *range query* — clustering only the selected region,
using a fraction of the records a full scan would touch.

Run:  python examples/clustering_kmeans.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.acetree import AceBuildParams, build_ace_tree
from repro.apps import StreamingKMeans
from repro.core import Field, Schema
from repro.storage import CostModel, HeapFile, SimulatedDisk

SCHEMA = Schema(
    [Field("day", "f8"), Field("amount", "f8"), Field("cust", "i8"),
     Field("pad", "bytes", 76)]
)

#: Planted cluster centers inside the query window [0.2, 0.8]^2 ...
CLUSTERS = [(0.3, 0.3), (0.7, 0.35), (0.5, 0.7)]
#: ... plus background noise everywhere.
NOISE_FRACTION = 0.25


def generate(disk: SimulatedDisk, n: int, seed: int) -> HeapFile:
    rng = np.random.default_rng(seed)
    points = []
    for i in range(n):
        if rng.random() < NOISE_FRACTION:
            x, y = rng.random(), rng.random()
        else:
            cx, cy = CLUSTERS[int(rng.integers(len(CLUSTERS)))]
            x, y = rng.normal([cx, cy], 0.06)
            x, y = float(np.clip(x, 0, 0.999)), float(np.clip(y, 0, 0.999))
        points.append((float(x), float(y), i, b""))
    return HeapFile.bulk_load(disk, SCHEMA, points, name="sale2d")


def main() -> None:
    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
    print("Generating 120,000 2-D records with three planted clusters...")
    sale = generate(disk, 120_000, seed=0)

    print("Building the k-d ACE Tree on (day, amount)...")
    tree = build_ace_tree(
        sale, AceBuildParams(key_fields=("day", "amount"), seed=1)
    )
    print(f"  height {tree.height}, {tree.num_leaves} leaves")

    query = tree.query((0.2, 0.8), (0.2, 0.8))
    population = tree.estimate_count(query)
    print(f"\nClustering the window [0.2,0.8]^2 "
          f"(~{population:,.0f} matching records)...")

    disk.reset_clock()
    model = StreamingKMeans(3, lambda r: (r[0], r[1]), seed=2)
    report = model.fit_stream(
        tree.sample(query, seed=3),
        min_records=1000,
        max_records=30_000,
        tolerance=1e-3,
    )
    print(f"  consumed {report.records_consumed:,} samples "
          f"({report.records_consumed / population:.0%} of the selection) in "
          f"{disk.clock * 1000:.1f} ms simulated; converged={report.converged}")

    print("\nlearned centers vs planted centers:")
    learned = sorted(model.centers.tolist())
    planted = sorted(CLUSTERS)
    for (lx, ly), (px, py) in zip(learned, planted):
        err = ((lx - px) ** 2 + (ly - py) ** 2) ** 0.5
        print(f"  learned ({lx:.3f}, {ly:.3f})   planted ({px:.2f}, {py:.2f})"
              f"   off by {err:.3f}")


if __name__ == "__main__":
    main()
