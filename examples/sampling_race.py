"""A miniature version of the paper's evaluation: race the three 1-D
retrieval methods on one query and print their emission curves.

This is the quickest way to *see* the paper's headline result: the ACE Tree
streams useful samples immediately, the B+-Tree pays a random I/O per early
sample, and the permuted file's rate is capped by the query's selectivity.

Run:  python examples/sampling_race.py [selectivity]
      (selectivity defaults to 0.025; try 0.0025 and 0.25)
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CostModel, SimulatedDisk, generate_sale_1d, queries_1d
from repro.acetree import AceBuildParams, build_ace_tree
from repro.baselines import build_bplus_tree, build_permuted_file
from repro.bench import run_race


def main() -> None:
    selectivity = float(sys.argv[1]) if len(sys.argv) > 1 else 0.025

    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
    print("Building structures over 200,000 SALE records...")
    sale = generate_sale_1d(disk, num_records=200_000, seed=0)
    tree = build_ace_tree(sale, AceBuildParams(key_fields=("day",), height=11,
                                               seed=1))
    bplus = build_bplus_tree(sale, "day")
    permuted = build_permuted_file(sale, ("day",), seed=1)
    scan = sale.scan_seconds()
    query = queries_1d(selectivity, 1, seed=7)[0]
    window = 0.04 * scan
    print(f"selectivity {selectivity:.2%}; relation scan = {scan * 1000:.0f} ms "
          f"simulated; racing for the first 4% ({window * 1000:.1f} ms)\n")

    curves = {}
    start = disk.clock
    curves["ACE Tree"] = run_race("ace", tree.sample(query, seed=2), start,
                                  time_limit=window)
    bplus.reset_caches()
    start = disk.clock
    curves["B+ Tree"] = run_race("bplus", bplus.sample(query, seed=2), start,
                                 time_limit=window)
    start = disk.clock
    curves["Permuted file"] = run_race("perm", permuted.sample(query), start,
                                       time_limit=window)

    print(f"{'% scan time':>12} | {'ACE Tree':>10} | {'B+ Tree':>10} | "
          f"{'Permuted':>10}   (records returned)")
    steps = 10
    for i in range(1, steps + 1):
        t = window * i / steps
        row = [f"{100 * t / scan:>11.2f}%"]
        for name in ("ACE Tree", "B+ Tree", "Permuted file"):
            row.append(f"{curves[name].count_at(t):>10,}")
        print(" | ".join(row))

    leader = max(curves, key=lambda n: curves[n].count_at(window))
    print(f"\nleader at the 4% mark: {leader}")


if __name__ == "__main__":
    main()
