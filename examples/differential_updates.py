"""Keeping a sample view usable under inserts (paper Section IX).

The ACE Tree is not incrementally updatable, so the view keeps new records
in a differential file and interleaves them into sample streams with
hypergeometric probabilities (the Brown & Haas multi-partition trick the
paper cites).  This example inserts a visible batch of new sales, shows
that fresh records appear in samples at exactly their population share,
and then rebuilds (refreshes) the view.

Run:  python examples/differential_updates.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CostModel, SimulatedDisk, create_sample_view, generate_sale_1d


def fresh_fraction_of_sample(view, query, sample_size, seed):
    taken = fresh = 0
    for batch in view.sample(query, seed=seed):
        for record in batch.records:
            taken += 1
            fresh += record[1] == -1  # CUST == -1 marks inserted records
            if taken >= sample_size:
                return fresh / taken
    return fresh / max(taken, 1)


def main() -> None:
    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
    print("Building a sample view over 80,000 SALE records...")
    sale = generate_sale_1d(disk, num_records=80_000, seed=0)
    view = create_sample_view("mysam", sale, index_on=("day",), seed=1)

    query = view.query((400_000_000, 600_000_000))  # ~20% of the relation
    base_matching = view.estimate_count(query)
    print(f"query matches ~{base_matching:,.0f} records")

    print("\nInserting 4,000 new sales inside the query range "
          "(CUST = -1 marks them)...")
    fresh = [
        (400_000_000 + (i * 50_000) % 200_000_000, -1, i, i % 7, b"")
        for i in range(4000)
    ]
    view.insert(fresh)
    share = 4000 / (base_matching + 4000)
    print(f"fresh records are {share:.1%} of the matching population")

    measured = fresh_fraction_of_sample(view, query, sample_size=2000, seed=3)
    print(f"fresh records in a 2,000-record sample: {measured:.1%} "
          "(hypergeometric interleaving keeps the stream uniform)")

    print("\nRefreshing the view (rebuild over base + delta)...")
    view.refresh()
    print(f"delta size after refresh: {view.delta_size}")
    total = 0
    for batch in view.sample(query, seed=4):
        total += sum(1 for r in batch.records if r[1] == -1)
    print(f"all {total} fresh matching records are now served from the "
          "rebuilt ACE Tree")


if __name__ == "__main__":
    main()
