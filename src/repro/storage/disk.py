"""A simulated disk with a deterministic clock.

The disk stores fixed-size pages addressed by integer page ids and keeps a
simulated clock in seconds.  Accessing page ``p`` immediately after page
``p - 1`` is sequential (transfer cost only); any other access pays a seek.
This single rule is enough to reproduce the sequential-versus-random
asymmetry that the paper's evaluation is built on.

The disk also owns page allocation.  Contiguous extents keep files physically
sequential, so scans of bulk-loaded files run at transfer speed just like a
real system.

Every charge point reports to the cost accountant
(:data:`repro.obs.cost.COST`) when it is armed (i.e. during traced runs):
the page just charged is attributed to the ambient tenant/query context,
**after** the counters moved so the accountant's conservation check can
reconcile its ledger against :class:`DiskStats` exactly.  Disarmed (the
default), each charge pays one attribute load.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator
from zlib import crc32

from ..core.errors import PageCorruptionError, PageError
from ..obs.cost import COST
from .cost import CostModel

__all__ = ["DiskStats", "SimulatedDisk"]


@dataclass
class DiskStats:
    """Cumulative I/O counters since the last reset."""

    page_reads: int = 0
    page_writes: int = 0
    seeks: int = 0
    sequential_accesses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    io_time: float = 0.0
    cpu_time: float = 0.0

    def snapshot(self) -> "DiskStats":
        """An independent copy of the current counters."""
        return DiskStats(**vars(self))

    def __sub__(self, other: "DiskStats") -> "DiskStats":
        return DiskStats(
            **{name: getattr(self, name) - getattr(other, name) for name in vars(self)}
        )


@dataclass
class _Extent:
    """A contiguous run of free pages, for the allocator's free list."""

    start: int
    count: int = field(default=1)


class SimulatedDisk:  # repro: shared[owner=serve.scheduler] single-writer clock; concurrent traversals access it only inside a serve scheduler quantum
    """Fixed-page-size simulated disk with seek-aware timing.

    Args:
        page_size: bytes per page.  The paper used 64 KB pages on a 20 GB
            relation; the default 8 KB keeps the records-per-page ratio
            comparable at the scaled-down relation sizes used here.
        cost: the :class:`CostModel` used to charge the simulated clock.
        checksums: verify a per-page CRC on every read.  Models a checksum
            stored in the page header without perturbing page capacity or
            the simulated clock; a mismatch (possible only after injected
            corruption — see :mod:`repro.testkit.faults`) raises
            :class:`~repro.core.errors.PageCorruptionError`.
    """

    #: Whether page accesses can raise injected faults.  The plain
    #: simulated disk never faults, so resilient read paths may skip the
    #: retry wrapper; :class:`repro.testkit.faults.FaultyDisk` flips this.
    can_fault = False

    def __init__(
        self,
        page_size: int = 8192,
        cost: CostModel | None = None,
        checksums: bool = True,
    ) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self.cost = cost if cost is not None else CostModel()
        self.checksums = checksums
        self._pages: dict[int, bytes] = {}
        self._checksums: dict[int, int] = {}
        self._allocated: set[int] = set()
        self._high_water = 0
        self._free_extents: list[_Extent] = []
        self._head: int | None = None
        self.clock = 0.0
        self.stats = DiskStats()

    # -- allocation --------------------------------------------------------

    def allocate(self, count: int = 1) -> int:
        """Allocate ``count`` physically contiguous pages; returns the first id.

        Exact-fit free extents are reused; otherwise pages come from the end
        of the disk, which keeps bulk-loaded files contiguous.
        """
        if count <= 0:
            raise PageError(f"cannot allocate {count} pages")
        for i, extent in enumerate(self._free_extents):
            if extent.count == count:
                del self._free_extents[i]
                start = extent.start
                break
        else:
            start = self._high_water
            self._high_water += count
        self._allocated.update(range(start, start + count))
        return start

    def free(self, start: int, count: int = 1) -> None:
        """Release ``count`` pages beginning at ``start``."""
        for pid in range(start, start + count):
            if pid not in self._allocated:
                raise PageError(f"freeing unallocated page {pid}")
            self._allocated.discard(pid)
            self._pages.pop(pid, None)
            self._checksums.pop(pid, None)
        self._free_extents.append(_Extent(start, count))

    @property
    def allocated_pages(self) -> int:
        return len(self._allocated)

    # -- timed page I/O ----------------------------------------------------

    def read_page(self, pid: int) -> bytes:
        """Read one page, charging seek + transfer or just transfer.

        With ``checksums`` enabled (the default) the returned bytes are
        verified against the CRC recorded by the write; a mismatch raises
        :class:`PageCorruptionError` *after* the access has been charged —
        the seek and transfer happened, the data is just bad.
        """
        if pid not in self._allocated:
            raise PageError(f"reading unallocated page {pid}")
        self._charge_access(pid)
        self.stats.page_reads += 1
        self.stats.bytes_read += self.page_size
        if COST.enabled:
            # Attributed before the checksum verdict: the read was
            # charged whether or not the data turns out corrupt.
            COST.record_reads(self.stats)
        data = self._pages.get(pid, bytes(self.page_size))
        if self.checksums:
            stored = self._checksums.get(pid)
            if stored is not None and crc32(data) != stored:
                raise PageCorruptionError(
                    f"page {pid} failed checksum verification on read"
                )
        return data

    def touch_page(self, pid: int) -> None:
        """Charge one page read without returning (or verifying) the data.

        Clock, seek/transfer decision, and every counter move exactly as in
        :meth:`read_page`; only the payload lookup and checksum pass are
        skipped.  For callers that already hold the decoded content (the
        leaf-store memo) the access is pure accounting, so the simulated
        cost stays honest while the wall-clock cost drops to the charge
        itself.  Fault-injecting subclasses override this to route through
        :meth:`read_page`, keeping fault ordinals access-for-access
        identical to a data-bearing read.
        """
        if pid not in self._allocated:
            raise PageError(f"reading unallocated page {pid}")
        self._charge_access(pid)
        self.stats.page_reads += 1
        self.stats.bytes_read += self.page_size
        if COST.enabled:
            COST.record_reads(self.stats)

    def touch_pages(self, pids) -> None:
        """Charge a run of page reads (:meth:`touch_page` for each id).

        One call for a leaf's whole page span: the same accesses in the
        same order — seek/sequential decisions, clock arithmetic, and
        counters are identical to touching each page individually — minus
        the per-page call overhead.  Fault-injecting subclasses override
        this to route through :meth:`read_page` page by page.
        """
        allocated = self._allocated
        stats = self.stats
        cost = self.cost
        page_size = self.page_size
        head = self._head
        clock = self.clock
        io_time = stats.io_time
        seeks = sequential = 0
        for pid in pids:
            if pid not in allocated:
                # Restore the charges of the pages that did get touched
                # before re-raising, mirroring the incremental updates of
                # the per-page path.
                self._head, self.clock, stats.io_time = head, clock, io_time
                stats.seeks += seeks
                stats.sequential_accesses += sequential
                raise PageError(f"reading unallocated page {pid}")
            if head is not None and pid == head + 1:
                elapsed = cost.sequential_io_time(page_size)
                sequential += 1
            else:
                elapsed = cost.random_io_time(page_size)
                seeks += 1
            head = pid
            clock += elapsed
            io_time += elapsed
        self._head = head
        self.clock = clock
        stats.io_time = io_time
        stats.seeks += seeks
        stats.sequential_accesses += sequential
        count = len(pids)
        stats.page_reads += count
        stats.bytes_read += count * page_size
        if count and COST.enabled:
            COST.record_reads(stats, count)

    def write_page(self, pid: int, data: bytes) -> None:
        """Write one page (padded to the page size), charging like a read."""
        if pid not in self._allocated:
            raise PageError(f"writing unallocated page {pid}")
        if len(data) > self.page_size:
            raise PageError(
                f"page data of {len(data)} bytes exceeds page size {self.page_size}"
            )
        if len(data) < self.page_size:
            data = data + bytes(self.page_size - len(data))
        self._charge_access(pid)
        self.stats.page_writes += 1
        self.stats.bytes_written += self.page_size
        if COST.enabled:
            COST.record_writes(self.stats)
        self._pages[pid] = data
        # The checksum always covers the *intended* bytes: a torn write
        # injected underneath (repro.testkit.faults) leaves it stale, which
        # is exactly how the corruption is later detected.
        self._checksums[pid] = crc32(data)

    def _charge_access(self, pid: int) -> None:
        if self._head is not None and pid == self._head + 1:
            elapsed = self.cost.sequential_io_time(self.page_size)
            self.stats.sequential_accesses += 1
        else:
            elapsed = self.cost.random_io_time(self.page_size)
            self.stats.seeks += 1
        self._head = pid
        self.clock += elapsed
        self.stats.io_time += elapsed

    # -- CPU accounting ----------------------------------------------------

    def charge_cpu(self, seconds: float) -> None:
        """Advance the clock for in-memory work (sorting, filtering, ...)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds}")
        self.clock += seconds
        self.stats.cpu_time += seconds

    def charge_io(self, seconds: float) -> None:
        """Advance the clock for I/O-side delay outside a page transfer.

        Used for retry backoff (:mod:`repro.storage.recovery`) and injected
        latency spikes (:mod:`repro.testkit.faults`): the time is I/O time
        on the device, but no page moved, so the byte/page counters stay
        untouched.
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds}")
        self.clock += seconds
        self.stats.io_time += seconds

    def charge_records(self, count: int) -> None:
        """Charge the per-record CPU cost for ``count`` records."""
        self.charge_cpu(count * self.cost.cpu_per_record)

    def charge_page_hit(self) -> None:
        """Charge the CPU cost of touching one buffered page."""
        self.charge_cpu(self.cost.cpu_per_page)

    # -- clock management --------------------------------------------------

    def reset_clock(self) -> None:
        """Zero the clock and counters (used between build and query phases)."""
        self.clock = 0.0
        self.stats = DiskStats()
        self._head = None

    def advance_clock(self, to: float) -> None:
        """Advance the clock to ``to`` while the disk sits idle.

        The serve scheduler's discrete-event loop calls this when no query
        is runnable and the next arrival lies in the future: simulated time
        passes, but the device does nothing — no I/O or CPU time is
        charged, no counter moves (unlike :meth:`charge_io`, which models
        busy device time).  A ``to`` at or before the current clock is a
        no-op; time never runs backwards.
        """
        if to > self.clock:
            self.clock = to

    @contextmanager
    def unmetered(self) -> Iterator[None]:
        """Suspend cost accounting for the duration of the ``with`` body.

        Inside the block the disk serves reads against a fresh clock and a
        fresh :class:`DiskStats` (so the body can still *measure* its own
        I/O); on exit the clock, counters, and head position are restored
        exactly.  Used by the runtime sanitizers
        (:mod:`repro.analysis.invariants`), which must read the whole tree
        without disturbing the simulated time of the experiment they guard.
        """
        saved_clock, saved_stats, saved_head = self.clock, self.stats, self._head
        self.clock = 0.0
        self.stats = DiskStats()
        try:
            yield
        finally:
            self.clock, self.stats, self._head = saved_clock, saved_stats, saved_head

    def scan_time(self, pages: int) -> float:
        """Simulated seconds to scan ``pages`` sequentially (one seek)."""
        return self.cost.seek_time + pages * self.cost.transfer_time(self.page_size)
