"""Disk and CPU cost model for the simulated storage substrate.

The paper's experiments were run against two 15,000 RPM SCSI disks and all
results are reported as *rates*: percent of the relation returned versus
percent of the time needed to scan the relation.  Those curves are shaped by
three quantities, which this model makes explicit:

* the cost of a random page access (seek + rotational delay + transfer),
* the cost of a sequential page access (transfer only), and
* the CPU cost of touching buffered data (which bounds how fast an algorithm
  can run once its working set is cached).

Using a deterministic model instead of a wall clock makes every experiment
exactly reproducible and independent of the host machine, while preserving
the random-versus-sequential asymmetry that drives every figure in the
paper (see DESIGN.md section 2 for the substitution argument).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True, slots=True)
class CostModel:
    """Time charges for simulated I/O and CPU work.

    Attributes:
        seek_time: seconds charged for each non-sequential page access
            (head movement plus average rotational delay).  The default, 5 ms,
            matches a 15k RPM enterprise disk, the hardware used in the paper.
        transfer_rate: sustained sequential bandwidth in bytes/second.
        cpu_per_record: seconds of CPU charged per record materialized,
            compared, or filtered in memory.
        cpu_per_page: seconds of CPU charged per buffered page access
            (latch + lookup); this is what bounds sampling speed once a
            tree's relevant pages are fully cached.
    """

    seek_time: float = 5e-3
    transfer_rate: float = 100e6
    cpu_per_record: float = 2e-7
    cpu_per_page: float = 1e-5

    def __post_init__(self) -> None:
        if self.seek_time < 0:
            raise ValueError(f"seek_time must be >= 0, got {self.seek_time}")
        if self.transfer_rate <= 0:
            raise ValueError(f"transfer_rate must be > 0, got {self.transfer_rate}")
        if self.cpu_per_record < 0 or self.cpu_per_page < 0:
            raise ValueError("CPU costs must be >= 0")

    @classmethod
    def scaled(
        cls,
        page_size: int,
        seek_to_transfer: float = 10.0,
        transfer_rate: float = 100e6,
        cpu_per_record: float = 2e-7,
        cpu_per_page: float = 5e-5,
    ) -> "CostModel":
        """A model whose seek costs ``seek_to_transfer`` page transfers.

        The paper's hardware had a ~10:1 ratio between a random page access
        and a sequential one (10 ms seek+rotate versus ~1 ms to transfer a
        64 KB page).  When experiments are scaled down to smaller pages,
        keeping the *ratio* fixed — rather than the absolute seek time — is
        what preserves the shape of every figure; this constructor does
        that.

        ``cpu_per_page`` (the buffered-access charge) is calibrated against
        the paper's own measurements: its B+-Tree sampled ~5,700 records/s
        once the relevant pages were resident (Figure 11), i.e. ~175 us per
        ranked retrieval across 2-3 page touches — roughly 50 us per touch.
        This charge is what makes a rank-by-rank sampler CPU-bound after
        its working set is cached, and hence what places the B+-Tree's
        completion *after* the ACE Tree's in Figure 14, as the paper found.
        """
        if seek_to_transfer < 0:
            raise ValueError(f"seek_to_transfer must be >= 0, got {seek_to_transfer}")
        page_transfer = page_size / transfer_rate
        return cls(
            seek_time=seek_to_transfer * page_transfer,
            transfer_rate=transfer_rate,
            cpu_per_record=cpu_per_record,
            cpu_per_page=cpu_per_page,
        )

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` on a sequential access."""
        return nbytes / self.transfer_rate

    def sequential_io_time(self, nbytes: int) -> float:
        """Seconds for a page access that continues the previous one."""
        return self.transfer_time(nbytes)

    def random_io_time(self, nbytes: int) -> float:
        """Seconds for a page access requiring head repositioning."""
        return self.seek_time + self.transfer_time(nbytes)

    def scan_time(self, total_bytes: int) -> float:
        """Seconds to scan ``total_bytes`` sequentially after one seek.

        This is the normalizing constant for the paper's x-axes
        ("% of time required to scan the relation").
        """
        return self.seek_time + self.transfer_time(total_bytes)
