"""An LRU buffer pool over the simulated disk.

Tree-structured indexes (the ranked B+-Tree, the R-Tree, and the ACE Tree's
internal-node pages) read pages through a buffer pool.  The pool is what
gives the B+-Tree baseline its characteristic curve in the paper: sampling
is slow while leaf pages still have to be fetched with random I/Os, and
accelerates sharply once the relevant pages are all resident.

Reads through the pool charge the disk on a miss and a per-page CPU cost on
a hit.  Writes are write-through (the workloads here are read-mostly after
bulk construction).
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.errors import BufferPoolError
from ..obs.metrics import METRICS
from ..obs.tracer import TRACER
from .disk import SimulatedDisk
from .recovery import read_page_resilient

__all__ = ["BufferPool", "DecodeMemo", "RecordPageCache"]


class BufferPool:  # repro: shared[owner=serve.scheduler] one pool per index, shared by interleaved traversals only inside scheduler quanta
    """Fixed-capacity LRU page cache.

    Args:
        disk: the simulated disk to read from / write to.
        capacity: maximum number of resident pages; must be positive.
    """

    def __init__(self, disk: SimulatedDisk, capacity: int) -> None:
        if capacity <= 0:
            raise BufferPoolError(f"capacity must be positive, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self._frames: OrderedDict[int, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, pid: int) -> bool:
        return pid in self._frames

    def read(self, pid: int) -> bytes:
        """Return page ``pid``, from cache if resident.

        A hit charges only CPU; a miss performs a timed disk read and may
        evict the least recently used page.
        """
        if pid in self._frames:
            self._frames.move_to_end(pid)
            self.hits += 1
            if TRACER.enabled:
                METRICS.counter("buffer.hit").inc()
            self.disk.charge_page_hit()
            return self._frames[pid]
        self.misses += 1
        if TRACER.enabled:
            METRICS.counter("buffer.miss").inc()
        data = read_page_resilient(self.disk, pid)
        self._admit(pid, data)
        return data

    def write(self, pid: int, data: bytes) -> None:
        """Write-through: update the disk and keep the page resident."""
        self.disk.write_page(pid, data)
        if len(data) < self.disk.page_size:
            data = data + bytes(self.disk.page_size - len(data))
        self._admit(pid, data)

    def invalidate(self, pid: int) -> None:
        """Drop a page from the cache (e.g. after freeing it on disk)."""
        self._frames.pop(pid, None)

    def clear(self) -> None:
        """Drop every cached page and reset the hit/miss counters."""
        self._frames.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from cache (0.0 when no reads yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _admit(self, pid: int, data: bytes) -> None:
        if pid in self._frames:
            self._frames.move_to_end(pid)
            self._frames[pid] = data
            return
        while len(self._frames) >= self.capacity:
            self._frames.popitem(last=False)
            self.evictions += 1
        self._frames[pid] = data


class RecordPageCache:  # repro: shared[owner=serve.scheduler] one cache per index, shared by interleaved traversals only inside scheduler quanta
    """An LRU cache of *decoded* pages, with buffer-pool cost semantics.

    Real engines pin a page once and then read records out of the frame;
    re-decoding the bytes on every access would charge CPU the system does
    not spend.  This cache charges a miss like a buffer-pool miss (timed
    disk read + per-record decode CPU) and a hit like a buffer-pool hit
    (per-page CPU only), while handing back the already-decoded records.

    ``decode`` maps raw page bytes to the cached value (typically a list of
    records, via ``HeapFile.decode_page`` or an index node parser).
    """

    def __init__(self, disk: SimulatedDisk, capacity: int, decode) -> None:
        if capacity <= 0:
            raise BufferPoolError(f"capacity must be positive, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self._decode = decode
        self._frames: OrderedDict[int, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, pid: int) -> bool:
        return pid in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    def read(self, pid: int):
        """Decoded contents of page ``pid``; charges like a buffer pool."""
        if pid in self._frames:
            self._frames.move_to_end(pid)
            self.hits += 1
            if TRACER.enabled:
                METRICS.counter("buffer.hit").inc()
            self.disk.charge_page_hit()
            return self._frames[pid]
        self.misses += 1
        if TRACER.enabled:
            METRICS.counter("buffer.miss").inc()
        value = self._decode(read_page_resilient(self.disk, pid))
        while len(self._frames) >= self.capacity:
            self._frames.popitem(last=False)
            self.evictions += 1
        self._frames[pid] = value
        return value

    def clear(self) -> None:
        self._frames.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class DecodeMemo:  # repro: shared[owner=serve.scheduler] cost-transparent memo; sanitizer-checked, mutated only inside scheduler quanta
    """A *cost-transparent* LRU memo of decoded page contents.

    :class:`RecordPageCache` models a real buffer pool: a hit changes what
    the simulated disk is charged (page-hit CPU instead of an I/O).  This
    memo is the opposite: it never changes the charged cost.  The caller is
    expected to perform **exactly the same timed disk accesses and CPU
    charges** on a hit as on a miss — same ``read_page`` calls in the same
    order, same ``charge_records`` — and use the memo only to skip the
    Python-level struct decoding of bytes it has already decoded.  The
    simulated clock, head position, and stats are therefore bit-identical
    with the memo on or off; only real wall-clock time improves.

    Decoded values are shared between callers, so only memoize immutable
    objects (tuples, frozen dataclasses like ``LeafNode``).
    """

    __slots__ = ("capacity", "_frames", "hits", "misses", "evictions")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise BufferPoolError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._frames: OrderedDict[object, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, key: object) -> bool:
        return key in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    def get(self, key: object):
        """The memoized value for ``key``, or ``None``; charges nothing."""
        frames = self._frames
        value = frames.get(key)
        if value is None:
            self.misses += 1
            return None
        # Recency only matters once eviction is possible; below capacity
        # the hit path skips the order maintenance (no observable
        # difference — nothing is ever evicted before the memo fills).
        if len(frames) >= self.capacity:
            frames.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: object, value: object) -> None:
        """Memoize ``value``, evicting the least recently used entry if full."""
        frames = self._frames
        if key in frames:
            frames.move_to_end(key)
            frames[key] = value
            return
        while len(frames) >= self.capacity:
            frames.popitem(last=False)
            self.evictions += 1
        frames[key] = value

    def clear(self) -> None:
        self._frames.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
