"""Two-phase multiway merge sort (TPMMS) over heap files.

Both construction phases of the ACE Tree, the randomly permuted file, and
the B+-Tree bulk load all reduce to external sorting, exactly as in the
paper ("constructing an ACE-Tree from scratch requires two external sorts of
a large database table").  This implementation is the textbook TPMMS of
Garcia-Molina et al., the same algorithm the paper cites:

1. *Run generation*: read the input sequentially in memory-sized chunks,
   sort each chunk, write it back as a sorted run.
2. *Merge*: k-way merge the runs (multiple passes if there are more runs
   than the merge fan-in allows).

Two pipelining hooks keep pass counts equal to a real system's:

* ``transform`` rewrites records during run generation (the ACE Tree's
  Phase 2 uses it to attach leaf/section numbers without an extra pass);
* ``sink`` consumes the final merged stream instead of writing it to a heap
  file (Phase 2 uses it to build leaf nodes directly from the merge).

All I/O flows through the simulated disk, so the sort's cost — including the
seeks caused by interleaving reads from many runs with output writes — lands
on the simulated clock.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterator, TypeVar

from ..core.errors import SortError
from ..core.records import Record, Schema
from .heapfile import HeapFile

__all__ = ["external_sort", "external_sort_to_sink", "merge_runs"]

KeyFunc = Callable[[Record], object]
T = TypeVar("T")


def external_sort(
    source: HeapFile,
    key: KeyFunc,
    memory_pages: int = 64,
    name: str = "",
    free_source: bool = False,
    transform: Callable[[Record], Record] | None = None,
    output_schema: Schema | None = None,
) -> HeapFile:
    """Sort ``source`` by ``key`` into a new heap file on the same disk.

    Args:
        source: the heap file to sort (left intact unless ``free_source``).
        key: sort key extractor applied to the (transformed) records; must
            be a pure function of the record.
        memory_pages: pages of sort memory; also bounds the merge fan-in
            (``memory_pages - 1`` input runs per merge pass).
        name: name for the output heap file.
        free_source: release the source file's pages once consumed.
        transform: optional per-record rewrite applied while reading the
            input (decoration), pipelined into run generation.
        output_schema: schema of the transformed records (defaults to the
            source schema; required if ``transform`` changes the layout).

    Returns:
        A new :class:`HeapFile` with the records in key order.
    """
    runs, schema = _generate_runs(
        source, key, memory_pages, transform, output_schema, free_source
    )
    if not runs:
        return HeapFile.create(source.disk, schema, name)
    fan_in = memory_pages - 1
    while len(runs) > 1:
        runs = _merge_pass(runs, key, fan_in, name)
    result = runs[0]
    result.name = name
    return result


def external_sort_to_sink(
    source: HeapFile,
    key: KeyFunc,
    sink: Callable[[Iterator[Record]], T],
    memory_pages: int = 64,
    free_source: bool = False,
    transform: Callable[[Record], Record] | None = None,
    output_schema: Schema | None = None,
) -> T:
    """Like :func:`external_sort`, but stream the result into ``sink``.

    The final merge is pipelined into ``sink`` instead of being written back
    to disk, mirroring how a real bulk loader consumes its last merge pass.
    Returns whatever ``sink`` returns.  The intermediate runs are freed.
    """
    runs, _schema = _generate_runs(
        source, key, memory_pages, transform, output_schema, free_source
    )
    fan_in = memory_pages - 1
    while len(runs) > fan_in:
        runs = _merge_pass(runs, key, fan_in, "sink")
    if not runs:
        return sink(iter(()))
    if len(runs) == 1:
        stream: Iterator[Record] = runs[0].scan()
    else:
        total = sum(run.num_records for run in runs)
        source.disk.charge_records(int(total * math.log2(len(runs))))
        stream = heapq.merge(*(run.scan() for run in runs), key=key)
    try:
        return sink(stream)
    finally:
        for run in runs:
            run.free()


def merge_runs(runs: list[HeapFile], key: KeyFunc, name: str = "") -> HeapFile:
    """K-way merge sorted runs into one sorted heap file, freeing the inputs."""
    if not runs:
        raise SortError("merge_runs needs at least one run")
    disk = runs[0].disk
    schema = runs[0].schema
    if len(runs) == 1:
        # Nothing to merge; adopt the single run as the result.
        runs[0].name = name
        return runs[0]

    # Charge merge CPU: n records x log2(k) heap comparisons.
    total = sum(run.num_records for run in runs)
    disk.charge_records(int(total * math.log2(len(runs))))

    streams: list[Iterator[Record]] = [run.scan() for run in runs]
    merged = heapq.merge(*streams, key=key)
    result = HeapFile.bulk_load(disk, schema, merged, name=name)
    for run in runs:
        run.free()
    return result


def _generate_runs(
    source: HeapFile,
    key: KeyFunc,
    memory_pages: int,
    transform: Callable[[Record], Record] | None,
    output_schema: Schema | None,
    free_source: bool,
) -> tuple[list[HeapFile], Schema]:
    """Phase 1 of TPMMS: cut the input into sorted runs."""
    if memory_pages < 3:
        raise SortError(f"memory_pages must be >= 3, got {memory_pages}")
    schema = output_schema if output_schema is not None else source.schema
    if schema.record_size + 8 > source.disk.page_size:
        raise SortError("output records do not fit a disk page")
    per_page = (source.disk.page_size - 4) // schema.record_size
    batch_capacity = memory_pages * max(per_page, 1)

    runs: list[HeapFile] = []
    batch: list[Record] = []
    for record in source.scan():
        batch.append(record if transform is None else transform(record))
        if len(batch) == batch_capacity:
            runs.append(_write_run(batch, source, schema, key, len(runs)))
            batch = []
    if batch:
        runs.append(_write_run(batch, source, schema, key, len(runs)))
    if free_source:
        source.free()
    return runs, schema


def _write_run(
    batch: list[Record],
    source: HeapFile,
    schema: Schema,
    key: KeyFunc,
    run_no: int,
) -> HeapFile:
    """Sort one memory load and write it out as a run."""
    # Charge CPU for the in-memory sort: ~n log2 n comparisons.
    n = len(batch)
    source.disk.charge_records(int(n * math.log2(max(n, 2))))
    batch.sort(key=key)
    return HeapFile.bulk_load(
        source.disk, schema, batch, name=f"{source.name}.run{run_no}"
    )


def _merge_pass(
    runs: list[HeapFile], key: KeyFunc, fan_in: int, name: str
) -> list[HeapFile]:
    """Merge groups of up to ``fan_in`` runs into longer runs."""
    merged: list[HeapFile] = []
    for i in range(0, len(runs), fan_in):
        group = runs[i:i + fan_in]
        merged.append(merge_runs(group, key, name=f"{name}.merge{len(merged)}"))
    return merged
