"""Two-phase multiway merge sort (TPMMS) over heap files.

Both construction phases of the ACE Tree, the randomly permuted file, and
the B+-Tree bulk load all reduce to external sorting, exactly as in the
paper ("constructing an ACE-Tree from scratch requires two external sorts of
a large database table").  This implementation is the textbook TPMMS of
Garcia-Molina et al., the same algorithm the paper cites:

1. *Run generation*: read the input sequentially in memory-sized chunks,
   sort each chunk, write it back as a sorted run.
2. *Merge*: k-way merge the runs (multiple passes if there are more runs
   than the merge fan-in allows).

Two pipelining hooks keep pass counts equal to a real system's:

* ``transform`` rewrites records during run generation (the ACE Tree's
  Phase 2 uses it to attach leaf/section numbers without an extra pass);
* ``sink`` consumes the final merged stream instead of writing it to a heap
  file (Phase 2 uses it to build leaf nodes directly from the merge).

Wall-clock fast path — the *planned merge*.  Run generation keeps each
run's sorted keys (and, when no ``transform`` rewrites records, the packed
row bytes, shuffled with numpy and never decoded) in memory alongside the
on-disk run.  The merged order is then one stable sort over the
concatenated per-run keys: stability with runs concatenated in run order
reproduces exactly the tie order of ``heapq.merge``, and timsort's galloping
exploits the pre-sorted runs.  What remains of the merge is a *replay* of
the page accesses ``heapq.merge`` would have driven: the first page of every
run is read when the consumer's first pull primes the heap, each later run
page is read during the pull that follows the yield of the previous page's
last record, and output pages are written after every page-worth of pulls.
The simulated disk therefore sees the identical access sequence — same
reads, same writes, same interleaving, same seek/sequential classification,
same charge order — while the per-record Python heap machinery, record
decoding and re-encoding disappear from the real wall clock.

Runs too large to retain (``_RETAIN_LIMIT_BYTES``), and sorts where some
run lacks retained state, fall back to the streaming decorate-sort-
undecorate merge below, which is output- and cost-identical (pinned by
``tests/property``).  Setting ``USE_FAST_PATH = False`` forces the
streaming path everywhere, which the equivalence tests exercise.

All I/O flows through the simulated disk, so the sort's cost — including
the seeks caused by interleaving reads from many runs with output writes —
lands on the simulated clock.
"""

from __future__ import annotations

import heapq
import math
from itertools import repeat
from operator import itemgetter
from typing import Callable, Iterator, TypeVar

import numpy as np

from ..core.errors import SortError
from ..core.records import Record, Schema
from ..obs.tracer import TRACER
from .heapfile import PAGE_HEADER_SIZE, HeapFile, _packed_page_images
from .recovery import read_page_resilient

__all__ = ["external_sort", "external_sort_to_sink", "merge_runs"]

KeyFunc = Callable[[Record], object]
T = TypeVar("T")

_undecorate = itemgetter(2)

#: Master switch for the planned-merge fast path; the streaming merge is
#: used when False.  Exists so the property tests can pin the two paths
#: to identical outputs and identical simulated clocks.
USE_FAST_PATH = True

#: Retain per-run sort state (keys + payload) for the planned merge only
#: while the sorted payload fits this budget; larger sorts stream.
_RETAIN_LIMIT_BYTES = 256 << 20


class _FillSpan:
    """Manually managed ``external_sort.run_fill`` span over a read loop.

    Run generation pulls page views from a generator, so the simulated page
    reads happen at ``next()``; to attribute them, the fill span must be
    open *around* the pulls and closed before each run cut (so the write
    span is a sibling, not a child, and both stay leaf spans).  A context
    manager cannot straddle loop iterations like that, hence the explicit
    ensure/close pair; ``close`` is idempotent and exception-safe via the
    caller's ``finally``.
    """

    __slots__ = ("_disk", "_open")

    def __init__(self, disk) -> None:
        self._disk = disk
        self._open = None

    def ensure(self) -> None:
        if self._open is None:
            span = TRACER.span("external_sort.run_fill", disk=self._disk, detail=True)
            span.__enter__()
            self._open = span

    def close(self) -> None:
        span = self._open
        if span is not None:
            self._open = None
            span.__exit__(None, None, None)


class _RunMeta:
    """In-memory sort state of one on-disk run, for the planned merge.

    ``keys`` are the run's sort keys in run (sorted) order — a numpy array
    on the vectorized column path, else a Python list.  Exactly one of
    ``rows`` (packed record bytes, ``(n, record_size)`` uint8) and
    ``records`` (decoded tuples) is set, matching how the run was built.
    """

    __slots__ = ("keys", "rows", "records")

    def __init__(self, keys, rows, records) -> None:
        self.keys = keys
        self.rows = rows
        self.records = records


def external_sort(
    source: HeapFile,
    key: KeyFunc | None = None,
    memory_pages: int = 64,
    name: str = "",
    free_source: bool = False,
    transform: Callable[[Record], Record] | None = None,
    output_schema: Schema | None = None,
    key_field: str | None = None,
    view_transform=None,
) -> HeapFile:
    """Sort ``source`` by ``key`` into a new heap file on the same disk.

    Args:
        source: the heap file to sort (left intact unless ``free_source``).
        key: sort key extractor applied to the (transformed) records; must
            be a pure function of the record.
        memory_pages: pages of sort memory; also bounds the merge fan-in
            (``memory_pages - 1`` input runs per merge pass).
        name: name for the output heap file.
        free_source: release the source file's pages once consumed.
        transform: optional per-record rewrite applied while reading the
            input (decoration), pipelined into run generation.
        output_schema: schema of the transformed records (defaults to the
            source schema; required if ``transform`` changes the layout).
        key_field: name of the schema column to sort on.  Declaring the
            key as a column (instead of an opaque callable) lets run
            generation extract keys straight from page bytes — vectorized
            for ``i8`` columns — without decoding records.  When given,
            ``key`` may be omitted; if both are given they must agree.
        view_transform: optional page-batched accelerator for
            ``transform``: called with each input :class:`PageView`, it
            returns ``(payload, keys)`` — the transformed records as packed
            bytes plus their sort keys as a numpy array, in record order.
            Must be byte- and key-equivalent to applying ``transform`` and
            ``key`` per record (which remain the semantic definition and
            the fallback when the fast path is off).

    Returns:
        A new :class:`HeapFile` with the records in key order.
    """
    with TRACER.span("external_sort.total", disk=source.disk):
        runs, schema = _generate_runs(
            source, key, memory_pages, transform, output_schema, free_source,
            key_field, view_transform,
        )
        if not runs:
            return HeapFile.create(source.disk, schema, name)
        with TRACER.span("external_sort.merge", disk=source.disk):
            key = _resolve_key(schema, key, key_field)
            fan_in = memory_pages - 1
            while len(runs) > 1:
                runs = _merge_pass(
                    runs, key, fan_in, name, need_meta=len(runs) > fan_in
                )
        result = runs[0]
        result.name = name
        if hasattr(result, "_sort_meta"):
            del result._sort_meta
        return result


def external_sort_to_sink(
    source: HeapFile,
    key: KeyFunc,
    sink: Callable[[Iterator[Record]], T],
    memory_pages: int = 64,
    free_source: bool = False,
    transform: Callable[[Record], Record] | None = None,
    output_schema: Schema | None = None,
    key_field: str | None = None,
    view_transform=None,
) -> T:
    """Like :func:`external_sort`, but stream the result into ``sink``.

    The final merge is pipelined into ``sink`` instead of being written back
    to disk, mirroring how a real bulk loader consumes its last merge pass.
    Returns whatever ``sink`` returns.  The intermediate runs are freed.
    """
    with TRACER.span("external_sort.total", disk=source.disk):
        runs, schema = _generate_runs(
            source, key, memory_pages, transform, output_schema, free_source,
            key_field, view_transform,
        )
        with TRACER.span("external_sort.merge", disk=source.disk):
            key = _resolve_key(schema, key, key_field)
            fan_in = memory_pages - 1
            while len(runs) > fan_in:
                runs = _merge_pass(runs, key, fan_in, "sink", need_meta=True)
        if not runs:
            return sink(iter(()))
        if len(runs) == 1:
            stream: Iterator[Record] = runs[0].scan()
        else:
            total = sum(run.num_records for run in runs)
            source.disk.charge_records(int(total * math.log2(len(runs))))
            metas = [getattr(run, "_sort_meta", None) for run in runs]
            if all(meta is not None for meta in metas):
                stream = _planned_merge_stream(runs, metas, schema)
            else:
                stream = map(
                    _undecorate,
                    heapq.merge(
                        *(_decorated_scan(run, key, i) for i, run in enumerate(runs))
                    ),
                )
        try:
            # The final merge is lazy: its run-page reads happen while the
            # sink pulls the stream, so the span must enclose the sink.
            with TRACER.span(
                "external_sort.final_merge", disk=source.disk, runs=len(runs)
            ):
                return sink(stream)
        finally:
            for run in runs:
                run.free()


def merge_runs(
    runs: list[HeapFile],
    key: KeyFunc,
    name: str = "",
    _retain_meta: bool = False,
) -> HeapFile:
    """K-way merge sorted runs into one sorted heap file, freeing the inputs."""
    if not runs:
        raise SortError("merge_runs needs at least one run")
    disk = runs[0].disk
    schema = runs[0].schema
    if len(runs) == 1:
        # Nothing to merge; adopt the single run as the result.
        runs[0].name = name
        return runs[0]

    total = sum(run.num_records for run in runs)
    with TRACER.span(
        "external_sort.merge_runs", disk=disk, runs=len(runs), records=total
    ):
        # Charge merge CPU: n records x log2(k) heap comparisons.
        disk.charge_records(int(total * math.log2(len(runs))))

        metas = [getattr(run, "_sort_meta", None) for run in runs]
        if all(meta is not None for meta in metas):
            return _planned_merge_to_file(runs, metas, schema, name, _retain_meta)

        merged = heapq.merge(
            *(_decorated_scan(run, key, i) for i, run in enumerate(runs))
        )
        result = HeapFile.bulk_load(disk, schema, map(_undecorate, merged), name=name)
        for run in runs:
            run.free()
        return result


def _resolve_key(schema: Schema, key: KeyFunc | None, key_field: str | None):
    if key is not None:
        return key
    if key_field is None:
        raise SortError("external sort needs a key callable or a key_field")
    return schema.key_getter(key_field)


def _decorated_scan(
    run: HeapFile, key: KeyFunc, run_index: int
) -> Iterator[tuple]:
    """Scan a sorted run as ``(key, run_index, record)`` triples.

    ``heapq.merge`` over such streams needs no ``key=`` callable, and the
    run index breaks key ties by stream position — the same tie order the
    ``key=`` form guarantees.  Records themselves are never compared.
    """
    for page_records in run.scan_pages():
        yield from zip(map(key, page_records), repeat(run_index), page_records)


# ---------------------------------------------------------------------------
# Run generation
# ---------------------------------------------------------------------------


def _generate_runs(
    source: HeapFile,
    key: KeyFunc | None,
    memory_pages: int,
    transform: Callable[[Record], Record] | None,
    output_schema: Schema | None,
    free_source: bool,
    key_field: str | None = None,
    view_transform=None,
) -> tuple[list[HeapFile], Schema]:
    """Phase 1 of TPMMS: cut the input into sorted runs."""
    if memory_pages < 3:
        raise SortError(f"memory_pages must be >= 3, got {memory_pages}")
    schema = output_schema if output_schema is not None else source.schema
    if schema.record_size + PAGE_HEADER_SIZE > source.disk.page_size:
        raise SortError("output records do not fit a disk page")
    per_page = (source.disk.page_size - PAGE_HEADER_SIZE) // schema.record_size
    batch_capacity = memory_pages * max(per_page, 1)
    retain = (
        USE_FAST_PATH
        and source.num_records * schema.record_size <= _RETAIN_LIMIT_BYTES
    )

    with TRACER.span("external_sort.run_generation", disk=source.disk):
        raw_mode = (
            USE_FAST_PATH
            and transform is None
            and (output_schema is None or output_schema == source.schema)
        )
        if raw_mode:
            if key_field is None:
                key = _resolve_key(schema, key, key_field)
            runs = _generate_runs_raw(
                source, key, key_field, schema, batch_capacity, retain
            )
        elif USE_FAST_PATH and view_transform is not None:
            runs = _generate_runs_views(
                source, view_transform, schema, batch_capacity, retain
            )
        else:
            resolved = _resolve_key(schema, key, key_field)
            runs = _generate_runs_records(
                source, resolved, schema, batch_capacity, transform, retain
            )
        if free_source:
            source.free()
    TRACER.count("external_sort.runs", len(runs))
    return runs, schema


def _generate_runs_raw(
    source: HeapFile,
    key: KeyFunc | None,
    key_field: str | None,
    schema: Schema,
    batch_capacity: int,
    retain: bool,
) -> list[HeapFile]:
    """Run generation over raw page bytes (no ``transform``).

    Records are never decoded into tuples on this path unless the key is an
    opaque callable: keys come straight off the page payload (a zero-copy
    numpy column for ``i8`` key fields, a C-level single-column unpack
    otherwise) and rows move as byte blocks.  The serializer round-trip is
    the identity, so the written runs are byte-for-byte what the decoding
    path would produce, and page reads/writes and charges are unchanged.
    """
    disk = source.disk
    size = schema.record_size
    numeric = (
        key_field is not None
        and schema.fields[schema.field_index(key_field)].kind == "i8"
    )
    generic = key_field is None
    runs: list[HeapFile] = []
    payload_buf = bytearray()
    keys_py: list = []  # generic-callable keys, aligned with payload_buf
    buffered = 0

    def cut(count: int) -> None:
        nonlocal keys_py, buffered
        chunk = bytes(memoryview(payload_buf)[:count * size])
        del payload_buf[:count * size]
        buffered -= count
        if numeric:
            keys = np.frombuffer(chunk, dtype=schema.numpy_dtype(), count=count)[
                key_field
            ]
        elif generic:
            keys, keys_py = keys_py[:count], keys_py[count:]
        else:
            keys = schema.unpack_column(chunk, count, key_field)
        runs.append(
            _write_run_raw(
                disk, schema, keys, chunk, retain,
                f"{source.name}.run{len(runs)}",
            )
        )

    fill = _FillSpan(disk)
    views = iter(source.scan_page_views())
    try:
        while True:
            fill.ensure()
            view = next(views, None)
            if view is None:
                fill.close()
                break
            payload_buf += view.payload
            if generic:
                keys_py.extend(map(key, view.records))
            buffered += view.count
            # Cut runs at exactly batch_capacity records (possibly mid-page)
            # so run boundaries match record-at-a-time accumulation.
            while buffered >= batch_capacity:
                fill.close()
                cut(batch_capacity)
    finally:
        fill.close()
    if buffered:
        cut(buffered)
    return runs


def _write_run_raw(
    disk, schema: Schema, keys, payload: bytes, retain: bool, name: str
) -> HeapFile:
    """Sort one memory load of packed rows and write it out as a run."""
    size = schema.record_size
    n = len(payload) // size
    with TRACER.span("external_sort.write_run", disk=disk, records=n):
        # Charge CPU for the in-memory sort: ~n log2 n comparisons.
        disk.charge_records(int(n * math.log2(max(n, 2))))
        if isinstance(keys, np.ndarray):
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
        else:
            order_list = sorted(range(n), key=keys.__getitem__)
            sorted_keys = [keys[i] for i in order_list]
            order = np.asarray(order_list, dtype=np.intp)
        rows = np.frombuffer(payload, dtype=np.uint8).reshape(n, size)
        sorted_rows = rows[order]
        run = HeapFile.bulk_load_packed(disk, schema, sorted_rows, n, name=name)
    if retain:
        run._sort_meta = _RunMeta(sorted_keys, sorted_rows, None)
    return run


def _generate_runs_views(
    source: HeapFile,
    view_transform,
    schema: Schema,
    batch_capacity: int,
    retain: bool,
) -> list[HeapFile]:
    """Run generation through a page-batched ``view_transform``.

    Each input page is rewritten wholesale into transformed packed bytes
    plus a numpy key array; records never exist as tuples.  Run boundaries,
    charges and written bytes match the per-record ``transform`` path
    exactly (``view_transform``'s contract), so the two are interchangeable.
    """
    disk = source.disk
    size = schema.record_size
    runs: list[HeapFile] = []
    payload_buf = bytearray()
    key_parts: list[np.ndarray] = []  # aligned with payload_buf
    buffered = 0

    def cut(count: int) -> None:
        nonlocal buffered
        chunk = bytes(memoryview(payload_buf)[:count * size])
        del payload_buf[:count * size]
        allkeys = key_parts[0] if len(key_parts) == 1 else np.concatenate(key_parts)
        keys, rest = allkeys[:count], allkeys[count:]
        key_parts.clear()
        if len(rest):
            key_parts.append(rest)
        buffered -= count
        runs.append(
            _write_run_raw(
                disk, schema, keys, chunk, retain,
                f"{source.name}.run{len(runs)}",
            )
        )

    fill = _FillSpan(disk)
    views = iter(source.scan_page_views())
    try:
        while True:
            fill.ensure()
            view = next(views, None)
            if view is None:
                fill.close()
                break
            payload, keys = view_transform(view)
            payload_buf += payload
            key_parts.append(keys)
            buffered += view.count
            # Cut runs at exactly batch_capacity records (possibly mid-page)
            # so run boundaries match record-at-a-time accumulation.
            while buffered >= batch_capacity:
                fill.close()
                cut(batch_capacity)
    finally:
        fill.close()
    if buffered:
        cut(buffered)
    return runs


def _generate_runs_records(
    source: HeapFile,
    key: KeyFunc,
    schema: Schema,
    batch_capacity: int,
    transform: Callable[[Record], Record] | None,
    retain: bool,
) -> list[HeapFile]:
    """Run generation over decoded records (``transform`` present, or the
    fast path disabled)."""
    runs: list[HeapFile] = []
    batch: list[Record] = []
    fill = _FillSpan(source.disk)
    pages = iter(source.scan_pages())
    try:
        while True:
            fill.ensure()
            page_records = next(pages, None)
            if page_records is None:
                fill.close()
                break
            if transform is not None:
                page_records = [transform(record) for record in page_records]
            batch.extend(page_records)
            # Cut runs at exactly batch_capacity records (possibly mid-page)
            # so run boundaries match record-at-a-time accumulation.
            while len(batch) >= batch_capacity:
                fill.close()
                runs.append(
                    _write_run_records(
                        batch[:batch_capacity], source, schema, key, len(runs), retain
                    )
                )
                batch = batch[batch_capacity:]
    finally:
        fill.close()
    if batch:
        runs.append(
            _write_run_records(batch, source, schema, key, len(runs), retain)
        )
    return runs


def _write_run_records(
    batch: list[Record],
    source: HeapFile,
    schema: Schema,
    key: KeyFunc,
    run_no: int,
    retain: bool,
) -> HeapFile:
    """Sort one memory load of records and write it out as a run.

    Keys are computed once per record; an index sort on them reproduces the
    stable ``sort(key=...)`` permutation without comparing records.
    """
    n = len(batch)
    with TRACER.span("external_sort.write_run", disk=source.disk, records=n):
        # Charge CPU for the in-memory sort: ~n log2 n comparisons.
        source.disk.charge_records(int(n * math.log2(max(n, 2))))
        name = f"{source.name}.run{run_no}"
        if not retain:
            batch.sort(key=key)
            return HeapFile.bulk_load(source.disk, schema, batch, name=name)
        keys = list(map(key, batch))
        arr = _int64_keys(keys)
        if arr is not None:
            np_order = np.argsort(arr, kind="stable")
            sorted_records = [batch[i] for i in np_order.tolist()]
            run = HeapFile.bulk_load(source.disk, schema, sorted_records, name=name)
            run._sort_meta = _RunMeta(arr[np_order], None, sorted_records)
            return run
        order = sorted(range(n), key=keys.__getitem__)
        sorted_records = [batch[i] for i in order]
        run = HeapFile.bulk_load(source.disk, schema, sorted_records, name=name)
        run._sort_meta = _RunMeta([keys[i] for i in order], None, sorted_records)
        return run


def _int64_keys(keys: list) -> np.ndarray | None:
    """``keys`` as an int64 array when that preserves exact ordering.

    Only plain machine-word ints qualify: a stable numpy argsort over them
    is order-identical to the Python index sort.  Floats, tuples, bools and
    out-of-range ints return ``None`` (callers keep the Python sort).
    """
    if not keys or any(type(k) is not int for k in keys):
        return None
    try:
        return np.array(keys, dtype=np.int64)
    except OverflowError:
        # Expected for ints outside the 64-bit range (numpy refuses the
        # conversion); such keys keep the exact Python index sort.
        return None


def _merge_pass(
    runs: list[HeapFile],
    key: KeyFunc,
    fan_in: int,
    name: str,
    need_meta: bool = False,
) -> list[HeapFile]:
    """Merge groups of up to ``fan_in`` runs into longer runs."""
    merged: list[HeapFile] = []
    for i in range(0, len(runs), fan_in):
        group = runs[i:i + fan_in]
        merged.append(
            merge_runs(
                group, key, name=f"{name}.merge{len(merged)}",
                _retain_meta=need_meta,
            )
        )
    return merged


# ---------------------------------------------------------------------------
# Planned merge: precomputed order + exact page-access replay
# ---------------------------------------------------------------------------


def _merge_order(metas: list[_RunMeta]):
    """The merged order of runs concatenated in run order.

    Returns ``(morder, run_per_position, allkeys)``: a stable sort of the
    concatenated keys, whose tie behaviour — earlier run first, FIFO within
    a run — is exactly ``heapq.merge``'s.  Timsort/numpy's stable sort
    gallop over the pre-sorted runs, so this costs far less than n log k
    Python-level heap operations.
    """
    key_arrays = [meta.keys for meta in metas]
    if all(isinstance(keys, np.ndarray) for keys in key_arrays):
        allkeys = np.concatenate(key_arrays)
        morder = np.argsort(allkeys, kind="stable")
    else:
        allkeys = []
        for keys in key_arrays:
            # A mixed batch (rare: per-run int-key detection can differ)
            # compares as Python objects throughout.
            allkeys.extend(keys.tolist() if isinstance(keys, np.ndarray) else keys)
        morder = np.asarray(
            sorted(range(len(allkeys)), key=allkeys.__getitem__), dtype=np.intp
        )
    run_of = np.repeat(
        np.arange(len(metas), dtype=np.intp),
        [len(meta.keys) for meta in metas],
    )
    return morder, run_of[morder], allkeys


def _initial_reads(runs: list[HeapFile]) -> list[tuple[int, int]]:
    """(page id, record count) of every run's first page, in run order —
    the reads ``heapq.merge`` issues when its heap is primed."""
    per_page = runs[0].records_per_page
    return [
        (run.page_ids[0], min(per_page, run.num_records)) for run in runs
    ]


def _read_schedule(
    runs: list[HeapFile], run_per_position: np.ndarray
) -> list[tuple[int, int, int]]:
    """Later-page read events as ``(pull position, page id, record count)``.

    ``heapq.merge`` advances the stream that yielded record ``i-1`` while
    the consumer pulls record ``i``; a run's page ``p`` is therefore read
    during the pull that follows the yield of the run's record
    ``p*per_page - 1``.  (The formula also covers the single-stream
    ``yield from`` tail: once one run remains, every position belongs to
    it and the two read points coincide.)
    """
    events: list[tuple[int, int, int]] = []
    per_page = runs[0].records_per_page
    for r, run in enumerate(runs):
        positions = np.flatnonzero(run_per_position == r)
        page_ids = run.page_ids
        num_records = run.num_records
        for p in range(1, len(page_ids)):
            pull = int(positions[p * per_page - 1]) + 1
            events.append(
                (pull, page_ids[p], min(per_page, num_records - p * per_page))
            )
    events.sort()
    return events


def _planned_merge_to_file(
    runs: list[HeapFile],
    metas: list[_RunMeta],
    schema: Schema,
    name: str,
    retain_meta: bool,
) -> HeapFile:
    """Merge retained runs into a heap file, replaying the exact page
    access sequence of the streaming merge."""
    disk = runs[0].disk
    morder, run_per_position, allkeys = _merge_order(metas)
    total = len(morder)
    records: list[Record] | None = None
    rows: np.ndarray | None = None
    images = None
    if metas[0].rows is not None:
        rows = np.concatenate([meta.rows for meta in metas])[morder]
        images, _page_counts = _packed_page_images(
            memoryview(rows).cast("B"), total, runs[0].records_per_page,
            schema.record_size, disk.page_size,
        )
    else:
        pooled: list[Record] = []
        for meta in metas:
            pooled.extend(meta.records)
        records = [pooled[i] for i in morder.tolist()]
    events = _read_schedule(runs, run_per_position)
    per_page = runs[0].records_per_page
    result = HeapFile(disk, schema, name)
    for pid, count in _initial_reads(runs):
        read_page_resilient(disk, pid)
        disk.charge_records(count)
    e, num_events = 0, len(events)
    for page_no, lo in enumerate(range(0, total, per_page)):
        hi = min(lo + per_page, total)
        # Run-page reads triggered by pulls lo..hi-1 precede this write.
        while e < num_events and events[e][0] < hi:
            _, pid, count = events[e]
            read_page_resilient(disk, pid)
            disk.charge_records(count)
            e += 1
        if images is not None:
            pid = result._next_page_id()
            disk.write_page(pid, images[page_no].tobytes())
            disk.charge_records(hi - lo)
            result._page_ids.append(pid)
            result._num_records += hi - lo
        else:
            result._write_full_page(records[lo:hi])
    for run in runs:
        run.free()
    if retain_meta:
        if isinstance(allkeys, np.ndarray):
            sorted_keys = allkeys[morder]
        else:
            sorted_keys = [allkeys[i] for i in morder.tolist()]
        result._sort_meta = _RunMeta(sorted_keys, rows, records)
    return result


def _planned_merge_stream(
    runs: list[HeapFile], metas: list[_RunMeta], schema: Schema
) -> Iterator[Record]:
    """Merged record stream from retained runs, replaying the streaming
    merge's page reads at the exact pulls they would occur on."""
    disk = runs[0].disk
    morder, run_per_position, _allkeys = _merge_order(metas)
    total = len(morder)
    if metas[0].records is not None:
        pooled: list[Record] = []
        for meta in metas:
            pooled.extend(meta.records)
        items = [pooled[i] for i in morder.tolist()]
    else:
        rows = np.concatenate([meta.rows for meta in metas])[morder]
        items = schema.unpack_many(memoryview(rows).cast("B"), total)
    events = _read_schedule(runs, run_per_position)
    initial = _initial_reads(runs)

    def stream() -> Iterator[Record]:
        charge = disk.charge_records
        for pid, count in initial:
            read_page_resilient(disk, pid)
            charge(count)
        prev = 0
        for pull, pid, count in events:
            yield from items[prev:pull]
            # The pull of record `pull` advances the drained stream first.
            read_page_resilient(disk, pid)
            charge(count)
            prev = pull
        yield from items[prev:]

    return stream()
