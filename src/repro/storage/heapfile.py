"""Heap files: unordered sequences of fixed-size records on disk pages.

A heap file is the base file organization for every structure in the
library: the raw relation, sort runs, the randomly permuted file, and the
decorated intermediate files of the ACE Tree construction are all heap
files.  Pages hold a 4-byte record count followed by packed records, and
bulk loads allocate contiguous extents so that scans run at sequential
transfer speed.

Writes are page-batched: :meth:`HeapFile.extend` and
:meth:`HeapFile.bulk_load` pull a page's worth of records at a time and
encode each page with one batched ``pack`` into a reused page buffer, so
bulk ingest does no per-record Python work.  The simulated cost is the same
as appending record by record — pages are written in the same order and the
same per-record CPU is charged — only the real wall clock improves.
"""

from __future__ import annotations

import struct
from itertools import islice
from typing import Iterable, Iterator

import numpy as np

from ..core.errors import HeapFileError
from ..core.records import PageView, Record, Schema
from .disk import SimulatedDisk
from .recovery import read_page_resilient

__all__ = ["HeapFile", "PAGE_HEADER_SIZE"]

_COUNT_HEADER = struct.Struct("<I")

#: Bytes of per-page header (the record count).  Shared by every consumer
#: that reasons about page capacity — notably ``external_sort`` — so record
#: size checks cannot drift from the real layout.
PAGE_HEADER_SIZE = _COUNT_HEADER.size

#: Pages per allocation extent when the final size is unknown.
_EXTENT_PAGES = 256


def _packed_page_images(
    payload, count: int, per_page: int, record_size: int, page_size: int
) -> tuple[np.ndarray, list[int]]:
    """Assemble full page images (header + packed records) in one shot.

    Returns ``(images, counts)``: a ``(num_pages, page_size)`` uint8 array
    whose rows are byte-identical to the pages the record-at-a-time writer
    produces (the disk zero-pads short writes to the page size, so
    pre-padded images store the exact same bytes), and the record count of
    each page.  Building every image with three bulk copies replaces the
    per-page header packing and buffer slicing of the write loop.
    """
    num_pages = -(-count // per_page)
    images = np.zeros((num_pages, page_size), dtype=np.uint8)
    last = count - (num_pages - 1) * per_page
    # Page header: record count as little-endian uint32.
    for b in range(PAGE_HEADER_SIZE):
        images[:, b] = (per_page >> (8 * b)) & 0xFF
        images[-1, b] = (last >> (8 * b)) & 0xFF
    rows = np.frombuffer(payload, dtype=np.uint8).reshape(count, record_size)
    slots = num_pages * per_page
    if slots == count:
        block = rows
    else:
        block = np.zeros((slots, record_size), dtype=np.uint8)
        block[:count] = rows
    span = per_page * record_size
    images[:, PAGE_HEADER_SIZE:PAGE_HEADER_SIZE + span] = block.reshape(
        num_pages, span
    )
    counts = [per_page] * (num_pages - 1) + [last]
    return images, counts


class HeapFile:  # repro: shared[owner=serve.scheduler] append path is build-time; serve-time reads share it only inside scheduler quanta
    """A paged file of fixed-size records with sequential scan support.

    Construct with :meth:`create` (empty, append-friendly) or
    :meth:`bulk_load` (from an iterable of records).
    """

    def __init__(self, disk: SimulatedDisk, schema: Schema, name: str = "") -> None:
        if schema.record_size + PAGE_HEADER_SIZE > disk.page_size:
            raise HeapFileError(
                f"record size {schema.record_size} does not fit a "
                f"{disk.page_size}-byte page"
            )
        self.disk = disk
        self.schema = schema
        self.name = name
        self._page_ids: list[int] = []
        self._extents: list[tuple[int, int]] = []
        self._extent_used = 0
        self._tail: list[Record] = []
        self._num_records = 0
        self._freed = False
        self._page_buf = bytearray(disk.page_size)

    # -- constructors ------------------------------------------------------

    @classmethod
    def create(cls, disk: SimulatedDisk, schema: Schema, name: str = "") -> "HeapFile":
        """An empty heap file ready for :meth:`append`."""
        return cls(disk, schema, name)

    @classmethod
    def bulk_load(
        cls,
        disk: SimulatedDisk,
        schema: Schema,
        records: Iterable[Record],
        name: str = "",
    ) -> "HeapFile":
        """Create a heap file holding ``records`` in iteration order."""
        heap = cls(disk, schema, name)
        per_page = heap.records_per_page
        it = iter(records)
        while page := list(islice(it, per_page)):
            heap._write_full_page(page)
        return heap

    @classmethod
    def bulk_load_packed(
        cls,
        disk: SimulatedDisk,
        schema: Schema,
        payload,
        count: int,
        name: str = "",
    ) -> "HeapFile":
        """Create a heap file from ``count`` already-packed records.

        ``payload`` is any contiguous buffer of ``count * record_size``
        packed records (bytes, memoryview, or a C-contiguous uint8 array).
        Pages, charges and byte layout are identical to :meth:`bulk_load`
        of the decoded records — the serializer round-trip is the identity
        for every field kind — so the two constructions are interchangeable.
        """
        heap = cls(disk, schema, name)
        per_page = heap.records_per_page
        size = schema.record_size
        view = memoryview(payload).cast("B")
        if len(view) != count * size:
            raise HeapFileError(
                f"payload of {len(view)} bytes is not {count} x {size}-byte records"
            )
        if count == 0:
            return heap
        images, counts = _packed_page_images(
            view, count, per_page, size, disk.page_size
        )
        for i, page_count in enumerate(counts):
            pid = heap._next_page_id()
            disk.write_page(pid, images[i].tobytes())
            disk.charge_records(page_count)
            heap._page_ids.append(pid)
        heap._num_records = count
        return heap

    # -- geometry ----------------------------------------------------------

    @property
    def records_per_page(self) -> int:
        """Maximum records on one page."""
        return (self.disk.page_size - PAGE_HEADER_SIZE) // self.schema.record_size

    @property
    def num_pages(self) -> int:
        return len(self._page_ids) + (1 if self._tail else 0)

    @property
    def num_records(self) -> int:
        return self._num_records + len(self._tail)

    @property
    def page_ids(self) -> tuple[int, ...]:
        """On-disk page ids in file order (excludes any unflushed tail)."""
        return tuple(self._page_ids)

    @property
    def total_bytes(self) -> int:
        """Bytes of disk occupied by the file."""
        return self.num_pages * self.disk.page_size

    def scan_seconds(self) -> float:
        """Simulated seconds for a full sequential scan (I/O only)."""
        return self.disk.scan_time(self.num_pages)

    # -- writing -----------------------------------------------------------

    def append(self, record: Record) -> None:
        """Add one record; it is flushed when the tail page fills."""
        self._check_open()
        self._tail.append(record)
        if len(self._tail) == self.records_per_page:
            self.flush()

    def extend(self, records: Iterable[Record]) -> None:
        """Append many records, a page at a time.

        Equivalent to calling :meth:`append` per record, but the tail-full
        check runs once per page instead of once per record.
        """
        self._check_open()
        per_page = self.records_per_page
        it = iter(records)
        tail = self._tail
        if tail:
            tail.extend(islice(it, per_page - len(tail)))
            if len(tail) < per_page:
                return
            self.flush()
        while page := list(islice(it, per_page)):
            if len(page) < per_page:
                self._tail = page
                return
            self._write_full_page(page)

    def flush(self) -> None:
        """Write any buffered tail records to disk."""
        self._check_open()
        if self._tail:
            self._write_full_page(self._tail)
            self._tail = []

    def _write_full_page(self, page_records: list[Record]) -> None:
        buf = self._page_buf
        _COUNT_HEADER.pack_into(buf, 0, len(page_records))
        used = PAGE_HEADER_SIZE + self.schema.pack_many_into(
            buf, PAGE_HEADER_SIZE, page_records
        )
        pid = self._next_page_id()
        # bytes() copies, so the reused buffer never aliases a stored page.
        self.disk.write_page(pid, bytes(memoryview(buf)[:used]))
        self.disk.charge_records(len(page_records))
        self._page_ids.append(pid)
        self._num_records += len(page_records)

    def _next_page_id(self) -> int:
        if not self._extents or self._extent_used == self._extents[-1][1]:
            start = self.disk.allocate(_EXTENT_PAGES)
            self._extents.append((start, _EXTENT_PAGES))
            self._extent_used = 0
        start, _count = self._extents[-1]
        pid = start + self._extent_used
        self._extent_used += 1
        return pid

    # -- reading -----------------------------------------------------------

    def scan(self) -> Iterator[Record]:
        """Yield every record in file order, charging sequential I/O."""
        for page_records in self.scan_pages():
            yield from page_records

    def scan_pages(self) -> Iterator[list[Record]]:
        """Yield the records of each page in file order.

        The simulated clock advances page by page, so a consumer can observe
        ``disk.clock`` between pages to timestamp record arrival.
        """
        self._check_open()
        for index in range(len(self._page_ids)):
            yield self.read_page_records(index)
        if self._tail:
            self.disk.charge_records(len(self._tail))
            # Round-trip the unflushed tail through the serializer so byte
            # fields come back padded exactly as a disk read would pad them.
            yield self.schema.unpack_many(
                self.schema.pack_many(self._tail), len(self._tail)
            )

    def scan_page_views(self) -> Iterator[PageView]:
        """Yield a lazily-decoded :class:`PageView` per page in file order.

        Charges exactly like :meth:`scan_pages` (the per-record CPU cost is
        for examining the records, which the consumer is about to do), but
        defers struct decoding so consumers that filter on one column or
        keep few rows skip most of the decode work.
        """
        self._check_open()
        schema = self.schema
        per_page = self.records_per_page
        disk = self.disk
        for pid in self._page_ids:
            data = read_page_resilient(disk, pid)
            (count,) = _COUNT_HEADER.unpack_from(data)
            if count > per_page:
                raise HeapFileError(f"corrupt page header: count {count}")
            disk.charge_records(count)
            yield PageView(schema, memoryview(data)[PAGE_HEADER_SIZE:], count)
        if self._tail:
            disk.charge_records(len(self._tail))
            yield PageView(
                schema, schema.pack_many(self._tail), len(self._tail)
            )

    def read_page_records(self, index: int) -> list[Record]:
        """Read one on-disk page by position and decode its records."""
        self._check_open()
        if not 0 <= index < len(self._page_ids):
            raise HeapFileError(
                f"page index {index} out of range 0..{len(self._page_ids) - 1}"
            )
        data = read_page_resilient(self.disk, self._page_ids[index])
        return self.decode_page(data)

    def decode_page(self, data: bytes) -> list[Record]:
        """Decode a raw page image into records, charging per-record CPU."""
        (count,) = _COUNT_HEADER.unpack_from(data)
        if count > self.records_per_page:
            raise HeapFileError(f"corrupt page header: count {count}")
        view = memoryview(data)[PAGE_HEADER_SIZE:]
        records = self.schema.unpack_many(view, count)
        self.disk.charge_records(count)
        return records

    # -- lifecycle ---------------------------------------------------------

    def free(self) -> None:
        """Release every page back to the disk; the file becomes unusable."""
        if self._freed:
            return
        for start, count in self._extents:
            self.disk.free(start, count)
        self._page_ids = []
        self._extents = []
        self._tail = []
        self._num_records = 0
        self._freed = True

    def _check_open(self) -> None:
        if self._freed:
            raise HeapFileError(f"heap file {self.name!r} has been freed")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HeapFile({self.name!r}, records={self.num_records}, "
            f"pages={self.num_pages})"
        )
