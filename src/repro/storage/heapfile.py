"""Heap files: unordered sequences of fixed-size records on disk pages.

A heap file is the base file organization for every structure in the
library: the raw relation, sort runs, the randomly permuted file, and the
decorated intermediate files of the ACE Tree construction are all heap
files.  Pages hold a 4-byte record count followed by packed records, and
bulk loads allocate contiguous extents so that scans run at sequential
transfer speed.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

from ..core.errors import HeapFileError
from ..core.records import Record, Schema
from .disk import SimulatedDisk

__all__ = ["HeapFile"]

_COUNT_HEADER = struct.Struct("<I")

#: Pages per allocation extent when the final size is unknown.
_EXTENT_PAGES = 256


class HeapFile:
    """A paged file of fixed-size records with sequential scan support.

    Construct with :meth:`create` (empty, append-friendly) or
    :meth:`bulk_load` (from an iterable of records).
    """

    def __init__(self, disk: SimulatedDisk, schema: Schema, name: str = "") -> None:
        if schema.record_size + _COUNT_HEADER.size > disk.page_size:
            raise HeapFileError(
                f"record size {schema.record_size} does not fit a "
                f"{disk.page_size}-byte page"
            )
        self.disk = disk
        self.schema = schema
        self.name = name
        self._page_ids: list[int] = []
        self._extents: list[tuple[int, int]] = []
        self._extent_used = 0
        self._tail: list[Record] = []
        self._num_records = 0
        self._freed = False

    # -- constructors ------------------------------------------------------

    @classmethod
    def create(cls, disk: SimulatedDisk, schema: Schema, name: str = "") -> "HeapFile":
        """An empty heap file ready for :meth:`append`."""
        return cls(disk, schema, name)

    @classmethod
    def bulk_load(
        cls,
        disk: SimulatedDisk,
        schema: Schema,
        records: Iterable[Record],
        name: str = "",
    ) -> "HeapFile":
        """Create a heap file holding ``records`` in iteration order."""
        heap = cls(disk, schema, name)
        per_page = heap.records_per_page
        page: list[Record] = []
        for record in records:
            page.append(record)
            if len(page) == per_page:
                heap._write_full_page(page)
                page = []
        if page:
            heap._write_full_page(page)
        return heap

    # -- geometry ----------------------------------------------------------

    @property
    def records_per_page(self) -> int:
        """Maximum records on one page."""
        return (self.disk.page_size - _COUNT_HEADER.size) // self.schema.record_size

    @property
    def num_pages(self) -> int:
        return len(self._page_ids) + (1 if self._tail else 0)

    @property
    def num_records(self) -> int:
        return self._num_records + len(self._tail)

    @property
    def page_ids(self) -> tuple[int, ...]:
        """On-disk page ids in file order (excludes any unflushed tail)."""
        return tuple(self._page_ids)

    @property
    def total_bytes(self) -> int:
        """Bytes of disk occupied by the file."""
        return self.num_pages * self.disk.page_size

    def scan_seconds(self) -> float:
        """Simulated seconds for a full sequential scan (I/O only)."""
        return self.disk.scan_time(self.num_pages)

    # -- writing -----------------------------------------------------------

    def append(self, record: Record) -> None:
        """Add one record; it is flushed when the tail page fills."""
        self._check_open()
        self._tail.append(record)
        if len(self._tail) == self.records_per_page:
            self.flush()

    def extend(self, records: Iterable[Record]) -> None:
        """Append many records."""
        for record in records:
            self.append(record)

    def flush(self) -> None:
        """Write any buffered tail records to disk."""
        self._check_open()
        if self._tail:
            self._write_full_page(self._tail)
            self._tail = []

    def _write_full_page(self, page_records: list[Record]) -> None:
        data = _COUNT_HEADER.pack(len(page_records)) + self.schema.pack_many(
            page_records
        )
        pid = self._next_page_id()
        self.disk.write_page(pid, data)
        self.disk.charge_records(len(page_records))
        self._page_ids.append(pid)
        self._num_records += len(page_records)

    def _next_page_id(self) -> int:
        if not self._extents or self._extent_used == self._extents[-1][1]:
            start = self.disk.allocate(_EXTENT_PAGES)
            self._extents.append((start, _EXTENT_PAGES))
            self._extent_used = 0
        start, _count = self._extents[-1]
        pid = start + self._extent_used
        self._extent_used += 1
        return pid

    # -- reading -----------------------------------------------------------

    def scan(self) -> Iterator[Record]:
        """Yield every record in file order, charging sequential I/O."""
        for page_records in self.scan_pages():
            yield from page_records

    def scan_pages(self) -> Iterator[list[Record]]:
        """Yield the records of each page in file order.

        The simulated clock advances page by page, so a consumer can observe
        ``disk.clock`` between pages to timestamp record arrival.
        """
        self._check_open()
        for index in range(len(self._page_ids)):
            yield self.read_page_records(index)
        if self._tail:
            self.disk.charge_records(len(self._tail))
            # Round-trip the unflushed tail through the serializer so byte
            # fields come back padded exactly as a disk read would pad them.
            yield self.schema.unpack_many(
                self.schema.pack_many(self._tail), len(self._tail)
            )

    def read_page_records(self, index: int) -> list[Record]:
        """Read one on-disk page by position and decode its records."""
        self._check_open()
        if not 0 <= index < len(self._page_ids):
            raise HeapFileError(
                f"page index {index} out of range 0..{len(self._page_ids) - 1}"
            )
        data = self.disk.read_page(self._page_ids[index])
        return self.decode_page(data)

    def decode_page(self, data: bytes) -> list[Record]:
        """Decode a raw page image into records, charging per-record CPU."""
        (count,) = _COUNT_HEADER.unpack_from(data)
        if count > self.records_per_page:
            raise HeapFileError(f"corrupt page header: count {count}")
        view = memoryview(data)[_COUNT_HEADER.size:]
        records = self.schema.unpack_many(view, count)
        self.disk.charge_records(count)
        return records

    # -- lifecycle ---------------------------------------------------------

    def free(self) -> None:
        """Release every page back to the disk; the file becomes unusable."""
        if self._freed:
            return
        for start, count in self._extents:
            self.disk.free(start, count)
        self._page_ids = []
        self._extents = []
        self._tail = []
        self._num_records = 0
        self._freed = True

    def _check_open(self) -> None:
        if self._freed:
            raise HeapFileError(f"heap file {self.name!r} has been freed")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HeapFile({self.name!r}, records={self.num_records}, "
            f"pages={self.num_pages})"
        )
