"""Simulated storage substrate: disk, buffer pool, heap files, external sort."""

from .buffer import BufferPool, RecordPageCache
from .cost import CostModel
from .disk import DiskStats, SimulatedDisk
from .external_sort import external_sort, external_sort_to_sink, merge_runs
from .heapfile import HeapFile

__all__ = [
    "BufferPool",
    "CostModel",
    "DiskStats",
    "HeapFile",
    "RecordPageCache",
    "SimulatedDisk",
    "external_sort",
    "external_sort_to_sink",
    "merge_runs",
]
