"""Simulated storage substrate: disk, buffer pool, heap files, external sort."""

from .buffer import BufferPool, DecodeMemo, RecordPageCache
from .cost import CostModel
from .disk import DiskStats, SimulatedDisk
from .external_sort import external_sort, external_sort_to_sink, merge_runs
from .heapfile import PAGE_HEADER_SIZE, HeapFile
from .recovery import DEFAULT_RETRY, RetryPolicy, read_page_resilient
from .sample_cache import DEFAULT_BUDGET_BYTES, CacheStats, SampleCache

__all__ = [
    "BufferPool",
    "CacheStats",
    "CostModel",
    "DEFAULT_BUDGET_BYTES",
    "DEFAULT_RETRY",
    "DecodeMemo",
    "DiskStats",
    "HeapFile",
    "PAGE_HEADER_SIZE",
    "RecordPageCache",
    "RetryPolicy",
    "SampleCache",
    "SimulatedDisk",
    "external_sort",
    "external_sort_to_sink",
    "merge_runs",
    "read_page_resilient",
]
