"""Bounded-retry recovery for transient page faults.

Transient media errors (modeled by :class:`~repro.core.errors.
TransientPageError`, injected by :mod:`repro.testkit.faults`) are the one
storage failure a reader can fix by itself: re-issue the access.  This
module centralizes how the library retries so that every read path —
heap-file scans, leaf fetches — recovers identically:

* retries are **bounded** (a persistent fault re-raises after the budget);
* each retry **charges the simulated clock** with exponential backoff via
  :meth:`~repro.storage.disk.SimulatedDisk.charge_io`, so recovery is not
  free time — the paper's time-resolved curves degrade honestly under
  faults;
* every retry is counted on the ``storage.read_retries`` tracer counter,
  so a fault-injected run's recovery work is visible in traces.

Corruption (:class:`~repro.core.errors.PageCorruptionError`) is *not*
retried here: the checksum mismatch is persistent, and the caller must
decide whether to fail or degrade (the Shuttle skips the lost leaf — see
:mod:`repro.acetree.query`).

On a clean disk no exception is ever raised, so this layer is exactly one
extra ``try`` per page read: clean runs are bit-identical on the simulated
clock with or without it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import TransientPageError
from ..obs.context import CONTEXT
from ..obs.cost import COST
from ..obs.flight import FLIGHT
from ..obs.metrics import METRICS
from ..obs.tracer import TRACER
from .disk import SimulatedDisk


def _count_retry() -> None:
    """One retry tick: profile counter always, labeled metric when tracing."""
    TRACER.count("storage.read_retries")
    if TRACER.enabled:
        METRICS.counter("storage.read_retries").labels(**CONTEXT.labels()).inc()

__all__ = [
    "DEFAULT_RETRY",
    "RetryPolicy",
    "read_page_resilient",
    "touch_page_resilient",
]


@dataclass(frozen=True)
class RetryPolicy:
    """How a transient page fault is retried.

    Attributes:
        max_attempts: total read attempts (first try included).
        backoff: simulated seconds charged before the first retry.
        multiplier: backoff growth factor per further retry.
    """

    max_attempts: int = 4
    backoff: float = 0.002
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.multiplier < 1:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )


DEFAULT_RETRY = RetryPolicy()


def read_page_resilient(
    disk: SimulatedDisk, pid: int, policy: RetryPolicy = DEFAULT_RETRY
) -> bytes:
    """Read a page, absorbing transient faults with backed-off retries.

    Each failed attempt has already been charged its access time by the
    disk; the backoff delay between attempts is charged on top.  When the
    attempt budget runs out the final :class:`TransientPageError`
    propagates — by then the fault is persistent as far as this reader is
    concerned.
    """
    delay = policy.backoff
    last_error: TransientPageError | None = None
    for attempt in range(policy.max_attempts):
        try:
            return disk.read_page(pid)
        except TransientPageError as exc:
            last_error = exc
            _count_retry()
            if attempt + 1 >= policy.max_attempts:
                break
            disk.charge_io(delay)
            if COST.enabled:
                COST.record_io(delay)
            delay *= policy.multiplier
    assert last_error is not None
    FLIGHT.trip("recovery-exhausted")
    raise last_error


def touch_page_resilient(
    disk: SimulatedDisk, pid: int, policy: RetryPolicy = DEFAULT_RETRY
) -> None:
    """Charge a page access (no data) with the same retry discipline.

    The accounting twin of :func:`read_page_resilient` for re-reads whose
    bytes are already decoded and memoized: on a plain
    :class:`SimulatedDisk` the touch never faults and costs one charge; on
    a fault-injecting disk :meth:`~SimulatedDisk.touch_page` routes through
    the real read, so transient faults fire at the same ordinals and are
    retried (and backoff-charged) exactly as a data-bearing read would be.
    """
    delay = policy.backoff
    last_error: TransientPageError | None = None
    for attempt in range(policy.max_attempts):
        try:
            disk.touch_page(pid)
            return
        except TransientPageError as exc:
            last_error = exc
            _count_retry()
            if attempt + 1 >= policy.max_attempts:
                break
            disk.charge_io(delay)
            if COST.enabled:
                COST.record_io(delay)
            delay *= policy.multiplier
    assert last_error is not None
    FLIGHT.trip("recovery-exhausted")
    raise last_error
