"""Combinable sample-reuse cache: a cache-aside, byte-budgeted LRU of cells.

The "C" in ACE — combinability (paper Section V) — means a section-``s``
cell retrieved for one query is a Bernoulli sample of its level-``s``
node's interval, *independent of the query that fetched it*.  Any later
query overlapping that interval may therefore reuse the cell as a uniform
building block instead of re-reading its leaf: exactly the sample-reuse
lever BlinkDB applies across overlapping workloads, with the uniformity of
the composed result guaranteed by the sampling-algebra composition rules
(see PAPERS.md and docs/PERFORMANCE.md).

This module is deliberately *mechanism only* (it lives in the storage
layer and must not know about trees or queries — LAY001):

* keys are caller-supplied tuples.  The ACE query layer keys cells by
  ``(store cache token, section index s, level-s ancestor node, leaf)`` —
  i.e. by the node interval the cell samples plus the leaf that physically
  holds it, so a cell is only ever served back for the exact population it
  was drawn from;
* values are opaque (the query layer stores decoded leaf views);
* eviction is LRU over a byte budget, with per-entry byte charges supplied
  at insert time.

Unlike :class:`~repro.storage.buffer.DecodeMemo` this cache is
**cost-changing** by design: the caller skips the timed page reads
entirely on a hit.  Lookups and insertions themselves charge nothing; the
caller decides what simulated CPU a hit costs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..core.errors import BufferPoolError
from ..obs.context import CONTEXT
from ..obs.metrics import METRICS
from ..obs.tracer import TRACER

__all__ = ["CacheStats", "SampleCache", "DEFAULT_BUDGET_BYTES"]

#: Default byte budget: generous for the micro-bench scale trees, small
#: enough that eviction is exercised on serve-scale workloads.
DEFAULT_BUDGET_BYTES = 8 * 1024 * 1024


@dataclass
class CacheStats:
    """Running counters of one :class:`SampleCache`."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    bytes_cached: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when no lookups)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits, "misses": self.misses,
            "insertions": self.insertions, "evictions": self.evictions,
            "bytes_cached": self.bytes_cached,
        }


class SampleCache:  # repro: shared[owner=serve.scheduler] single-writer LRU; sanitizer-checked, mutated only inside the owner's quanta
    """Byte-budgeted LRU of decoded sample cells (cache-aside).

    Args:
        budget_bytes: maximum total bytes of cached entries; must be
            positive.  An entry larger than the whole budget is simply
            not admitted.
    """

    __slots__ = ("budget_bytes", "_entries", "stats")

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES) -> None:
        if budget_bytes <= 0:
            raise BufferPoolError(
                f"budget_bytes must be positive, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        #: key -> (value, charged bytes), in LRU order (MRU at the end).
        self._entries: OrderedDict[tuple, tuple[object, int]] = OrderedDict()
        self.stats = CacheStats()

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple):
        """The cached value for ``key``, or ``None``; refreshes recency."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            if TRACER.enabled:
                METRICS.counter("sample_cache.misses").labels(**CONTEXT.labels()).inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if TRACER.enabled:
            METRICS.counter("sample_cache.hits").labels(**CONTEXT.labels()).inc()
        return entry[0]

    def peek(self, key: tuple):
        """Like :meth:`get` but touches neither recency nor counters."""
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def put(self, key: tuple, value: object, nbytes: int) -> None:
        """Insert ``value`` charged at ``nbytes``, evicting LRU entries.

        Re-inserting an existing key replaces its value and byte charge.
        Entries that alone exceed the budget are not admitted (inserting
        then immediately evicting them would just churn the LRU chain).
        """
        if nbytes < 0:
            raise BufferPoolError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes > self.budget_bytes:
            return
        entries = self._entries
        old = entries.pop(key, None)
        if old is not None:
            self.stats.bytes_cached -= old[1]
        while self.stats.bytes_cached + nbytes > self.budget_bytes and entries:
            _, (_, dropped) = entries.popitem(last=False)
            self.stats.bytes_cached -= dropped
            self.stats.evictions += 1
            if TRACER.enabled:
                METRICS.counter("sample_cache.evictions").labels(**CONTEXT.labels()).inc()
        entries[key] = (value, nbytes)
        self.stats.bytes_cached += nbytes
        self.stats.insertions += 1
        if TRACER.enabled:
            METRICS.gauge("sample_cache.bytes").set(self.stats.bytes_cached)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.stats = CacheStats()
