"""Skewed workloads — an extension beyond the paper's uniform evaluation.

The paper evaluates on uniform keys only, but the ACE Tree's Phase-1 split
keys are *medians of the data*, not midpoints of the domain, so the
structure is equi-depth by construction and its guarantees are distribution
free.  These generators produce heavily skewed SALE variants (Zipf-like
ranks and log-normal timestamps) plus query helpers that hit a target
*record* selectivity under skew (a fixed value-range no longer does), so
the uniform experiments can be re-run under skew
(``benchmarks/test_ext_skew.py``).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..core.intervals import Box, Interval
from ..core.records import Record
from ..core.rng import derive
from ..storage.disk import SimulatedDisk
from ..storage.heapfile import HeapFile
from .sale import sale_schema_1d

__all__ = ["generate_sale_zipf", "generate_sale_lognormal", "equi_depth_queries"]

_GEN_BATCH = 65536


def generate_sale_zipf(
    disk: SimulatedDisk,
    num_records: int,
    alpha: float = 1.3,
    num_values: int = 1_000_000,
    seed: int = 0,
    record_size: int = 100,
    name: str = "sale_zipf",
) -> HeapFile:
    """SALE with Zipf(alpha)-distributed DAY keys over ``num_values`` ranks.

    Low ranks are enormously popular: with alpha=1.3 the hottest key alone
    carries a few percent of the relation — the adversarial case for
    midpoint-split structures.
    """
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1 for a proper Zipf, got {alpha}")
    schema = sale_schema_1d(record_size)
    has_pad = len(schema.fields) == 5

    def records() -> Iterator[Record]:
        rng = derive(seed, "sale-zipf")
        remaining = num_records
        while remaining > 0:
            batch = min(remaining, _GEN_BATCH)
            # numpy's zipf is unbounded; clamp to the value universe.
            days = np.minimum(rng.zipf(alpha, size=batch), num_values) - 1
            others = rng.integers(0, 1_000_000, size=(batch, 3))
            for i in range(batch):
                base = (int(days[i]), int(others[i, 0]), int(others[i, 1]),
                        int(others[i, 2]))
                yield base + (b"",) if has_pad else base
            remaining -= batch

    return HeapFile.bulk_load(disk, schema, records(), name=name)


def generate_sale_lognormal(
    disk: SimulatedDisk,
    num_records: int,
    sigma: float = 1.0,
    seed: int = 0,
    record_size: int = 100,
    name: str = "sale_logn",
) -> HeapFile:
    """SALE with log-normal DAY keys (smooth but heavily right-skewed)."""
    schema = sale_schema_1d(record_size)
    has_pad = len(schema.fields) == 5

    def records() -> Iterator[Record]:
        rng = derive(seed, "sale-lognormal")
        remaining = num_records
        while remaining > 0:
            batch = min(remaining, _GEN_BATCH)
            days = np.floor(rng.lognormal(10.0, sigma, size=batch)).astype(np.int64)
            others = rng.integers(0, 1_000_000, size=(batch, 3))
            for i in range(batch):
                base = (int(days[i]), int(others[i, 0]), int(others[i, 1]),
                        int(others[i, 2]))
                yield base + (b"",) if has_pad else base
            remaining -= batch

    return HeapFile.bulk_load(disk, schema, records(), name=name)


def equi_depth_queries(
    keys: Sequence[int],
    selectivity: float,
    count: int,
    seed: int = 0,
) -> list[Box]:
    """Range predicates hitting ~``selectivity`` of the *records* under skew.

    A fixed value-width no longer yields a fixed record fraction when keys
    are skewed, so queries are placed in rank space: pick a random start
    rank, take the value range spanned by the next ``selectivity * n``
    ranks.  ``keys`` can be a sample of the relation's keys (it is sorted
    internally).
    """
    if not 0 < selectivity <= 1:
        raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
    if not keys:
        raise ValueError("need a non-empty key sample")
    ordered = sorted(keys)
    n = len(ordered)
    width = max(1, round(selectivity * n))
    rng = derive(seed, "equi-depth-queries")
    boxes = []
    for _ in range(count):
        start = int(rng.integers(0, max(n - width, 1)))
        lo = ordered[start]
        hi = ordered[min(start + width - 1, n - 1)]
        boxes.append(Box.of(Interval.closed(lo, hi)))
    return boxes
