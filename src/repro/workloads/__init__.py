"""Synthetic workloads: the paper's SALE relation and its range queries."""

from .queries import queries_1d, queries_2d
from .skew import equi_depth_queries, generate_sale_lognormal, generate_sale_zipf
from .sale import (
    DAY_DOMAIN,
    generate_sale_1d,
    generate_sale_2d,
    sale_schema_1d,
    sale_schema_2d,
)

__all__ = [
    "DAY_DOMAIN",
    "equi_depth_queries",
    "generate_sale_1d",
    "generate_sale_2d",
    "generate_sale_lognormal",
    "generate_sale_zipf",
    "queries_1d",
    "queries_2d",
    "sale_schema_1d",
    "sale_schema_2d",
]
