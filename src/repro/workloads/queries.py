"""Selectivity-targeted range-query generators.

The paper's experiments sample from "10 different range selection
predicates" per selectivity level (0.25%, 2.5%, 25%).  The workload keys
are uniform, so a predicate accepting a target fraction of the records is a
randomly-placed interval covering that fraction of the key domain (a
randomly-placed square-root box per dimension in 2-D).
"""

from __future__ import annotations

from ..core.intervals import Box, Interval
from ..core.rng import derive
from .sale import DAY_DOMAIN

__all__ = ["queries_1d", "queries_2d"]


def queries_1d(
    selectivity: float,
    count: int,
    seed: int = 0,
    domain_lo: float = 0.0,
    domain_hi: float = float(DAY_DOMAIN),
) -> list[Box]:
    """Random 1-D range predicates each accepting ~``selectivity`` records."""
    _check_selectivity(selectivity)
    rng = derive(seed, "queries-1d")
    span = domain_hi - domain_lo
    width = selectivity * span
    boxes = []
    for _ in range(count):
        lo = domain_lo + float(rng.random()) * (span - width)
        boxes.append(Box.of(Interval(lo, lo + width)))
    return boxes


def queries_2d(
    selectivity: float,
    count: int,
    seed: int = 0,
    domain_lo: float = 0.0,
    domain_hi: float = 1.0,
) -> list[Box]:
    """Random 2-D square predicates each accepting ~``selectivity`` records.

    With (DAY, AMOUNT) bivariate uniform, a square of side ``sqrt(s)``
    (relative to the domain span) accepts fraction ``s`` of the records.
    """
    _check_selectivity(selectivity)
    rng = derive(seed, "queries-2d")
    span = domain_hi - domain_lo
    side = selectivity ** 0.5 * span
    boxes = []
    for _ in range(count):
        x = domain_lo + float(rng.random()) * (span - side)
        y = domain_lo + float(rng.random()) * (span - side)
        boxes.append(Box.of(Interval(x, x + side), Interval(y, y + side)))
    return boxes


def _check_selectivity(selectivity: float) -> None:
    if not 0 < selectivity <= 1:
        raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
