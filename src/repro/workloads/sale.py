"""Synthetic ``SALE`` relation generators (paper Section VIII).

Experiment 1 uses a ``SALE(DAY, CUST, PART, SUPP)`` relation of 100-byte
records with range predicates on ``DAY``; Experiment 2 adds an ``AMOUNT``
attribute and draws ``(DAY, AMOUNT)`` from a bivariate uniform distribution.
These generators reproduce both at configurable scale: the figures are
normalized (% of relation vs % of scan time), so the relation size is a
fidelity/runtime knob, not part of the result.
"""

from __future__ import annotations

from typing import Iterator

from ..core.records import Field, Record, Schema
from ..core.rng import derive
from ..storage.heapfile import HeapFile
from ..storage.disk import SimulatedDisk

__all__ = [
    "DAY_DOMAIN",
    "sale_schema_1d",
    "sale_schema_2d",
    "generate_sale_1d",
    "generate_sale_2d",
]

#: 1-D DAY keys are uniform integers in [0, DAY_DOMAIN).
DAY_DOMAIN = 1_000_000_000

_GEN_BATCH = 65536


def sale_schema_1d(record_size: int = 100) -> Schema:
    """SALE(DAY, CUST, PART, SUPP) padded to ``record_size`` bytes."""
    pad = record_size - 4 * 8
    if pad < 0:
        raise ValueError(f"record_size must be >= 32, got {record_size}")
    fields = [
        Field("day", "i8"),
        Field("cust", "i8"),
        Field("part", "i8"),
        Field("supp", "i8"),
    ]
    if pad:
        fields.append(Field("pad", "bytes", pad))
    return Schema(fields)


def sale_schema_2d(record_size: int = 100) -> Schema:
    """SALE(DAY, AMOUNT, CUST, SUPP) padded to ``record_size`` bytes."""
    pad = record_size - 4 * 8
    if pad < 0:
        raise ValueError(f"record_size must be >= 32, got {record_size}")
    fields = [
        Field("day", "f8"),
        Field("amount", "f8"),
        Field("cust", "i8"),
        Field("supp", "i8"),
    ]
    if pad:
        fields.append(Field("pad", "bytes", pad))
    return Schema(fields)


def generate_sale_1d(
    disk: SimulatedDisk,
    num_records: int,
    seed: int = 0,
    record_size: int = 100,
    name: str = "sale",
) -> HeapFile:
    """A 1-D SALE relation with uniform integer DAY keys."""
    schema = sale_schema_1d(record_size)
    has_pad = len(schema.fields) == 5

    def records() -> Iterator[Record]:
        rng = derive(seed, "sale-1d")
        remaining = num_records
        while remaining > 0:
            batch = min(remaining, _GEN_BATCH)
            days = rng.integers(0, DAY_DOMAIN, size=batch)
            others = rng.integers(0, 1_000_000, size=(batch, 3))
            for i in range(batch):
                base = (int(days[i]), int(others[i, 0]), int(others[i, 1]),
                        int(others[i, 2]))
                yield base + (b"",) if has_pad else base
            remaining -= batch

    return HeapFile.bulk_load(disk, schema, records(), name=name)


def generate_sale_2d(
    disk: SimulatedDisk,
    num_records: int,
    seed: int = 0,
    record_size: int = 100,
    name: str = "sale2d",
) -> HeapFile:
    """A 2-D SALE relation with (DAY, AMOUNT) ~ bivariate uniform on [0,1)^2."""
    schema = sale_schema_2d(record_size)
    has_pad = len(schema.fields) == 5

    def records() -> Iterator[Record]:
        rng = derive(seed, "sale-2d")
        remaining = num_records
        while remaining > 0:
            batch = min(remaining, _GEN_BATCH)
            points = rng.random(size=(batch, 2))
            others = rng.integers(0, 1_000_000, size=(batch, 2))
            for i in range(batch):
                base = (float(points[i, 0]), float(points[i, 1]),
                        int(others[i, 0]), int(others[i, 1]))
                yield base + (b"",) if has_pad else base
            remaining -= batch

    return HeapFile.bulk_load(disk, schema, records(), name=name)
