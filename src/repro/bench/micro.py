"""Wall-clock micro-benchmarks of the implementation itself.

Unlike the figure experiments, which report *simulated* I/O seconds, this
suite measures what the Python implementation costs in real seconds: codec
throughput (pack/unpack MB/s), external-sort and index-construction record
throughput, and a sampling path.  ``python -m repro bench --json`` emits the
results as JSON so optimization PRs can commit before/after baselines (see
``BENCH_PR1.json``); ``benchmarks/test_micro_components.py`` runs the same
workloads under pytest-benchmark.

Every timing is the best of ``repeat`` runs — on a shared machine the
minimum is the observation least polluted by scheduler noise — and each run
rebuilds its inputs so caches and allocator state are comparable across
runs.
"""

from __future__ import annotations

import sys
import time  # repro: allow[CLK001] micro-benchmarks measure real wall-clock seconds
from typing import Callable

from ..acetree import AceBuildParams, build_ace_tree
from ..core import Field, Schema
from ..core.intervals import Box, Interval
from ..core.profile import PROFILE
from ..core.rng import derive_random
from ..obs.metrics import METRICS
from ..obs.tracer import TRACER
from ..storage import CostModel, HeapFile, SimulatedDisk, external_sort

__all__ = ["MICRO_SCHEMA", "run_micro"]

#: The relation layout every micro-benchmark uses: an indexed int key, a
#: float payload, and padding up to a 100-byte record (the paper's scale
#: experiments use records of roughly this size).
MICRO_SCHEMA = Schema(  # repro: shared[confined] schema struct memos are engine-thread idempotent caches
    [Field("k", "i8"), Field("v", "f8"), Field("pad", "bytes", 84)]
)


def _fresh_relation(n: int) -> HeapFile:
    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
    rng = derive_random(0, "micro-relation")
    records = ((rng.randrange(10**9), rng.random(), b"") for _ in range(n))
    return HeapFile.bulk_load(disk, MICRO_SCHEMA, records, name="bench")


def _best_of(repeat: int, setup: Callable, run: Callable) -> float:
    best = float("inf")
    for _ in range(repeat):
        state = setup()
        started = time.perf_counter()
        run(state)
        best = min(best, time.perf_counter() - started)
    return best


def _codec_benchmarks(n: int, repeat: int) -> dict:
    """pack_many / unpack_many / single-column throughput."""
    rng = derive_random(1, "micro-codec")
    records = [
        (rng.randrange(10**9), rng.random(), b"x" * 84) for _ in range(n)
    ]
    payload = MICRO_SCHEMA.pack_many(records)
    size = MICRO_SCHEMA.record_size
    mb = n * size / 1e6

    pack_s = _best_of(
        repeat, lambda: None, lambda _: MICRO_SCHEMA.pack_many(records)
    )
    unpack_s = _best_of(
        repeat, lambda: None, lambda _: MICRO_SCHEMA.unpack_many(payload, n)
    )
    column_s = _best_of(
        repeat, lambda: None, lambda _: MICRO_SCHEMA.unpack_column(payload, n, "k")
    )
    return {
        "record_size_bytes": size,
        "pack_many_mb_per_s": mb / pack_s,
        "unpack_many_mb_per_s": mb / unpack_s,
        "unpack_column_keys_per_s": n / column_s,
    }


def _sort_benchmarks(n: int, repeat: int) -> dict:
    """External sort throughput: declared key column vs opaque callable."""
    key_field_s = _best_of(
        repeat,
        lambda: _fresh_relation(n),
        lambda rel: external_sort(rel, memory_pages=64, key_field="k").free(),
    )
    callable_s = _best_of(
        repeat,
        lambda: _fresh_relation(n),
        lambda rel: external_sort(
            rel, key=lambda r: r[0], memory_pages=64
        ).free(),
    )
    # One untimed run for the *simulated* cost — a pure function of the
    # code and the seed, so bench regression tracking compares it exactly.
    rel = _fresh_relation(n)
    disk = rel.disk
    clock0, stats0 = disk.clock, disk.stats.snapshot()
    external_sort(rel, memory_pages=64, key_field="k").free()
    delta = disk.stats - stats0
    return {
        "key_field_records_per_s": n / key_field_s,
        "key_field_seconds": key_field_s,
        "callable_records_per_s": n / callable_s,
        "callable_seconds": callable_s,
        "sim_seconds": disk.clock - clock0,
        "page_reads": delta.page_reads,
        "page_writes": delta.page_writes,
    }


def _build_benchmarks(n: int, repeat: int) -> dict:
    """ACE-Tree bulk construction throughput, with a phase breakdown."""
    params = AceBuildParams(key_fields=("k",), height=8, seed=3)
    best = float("inf")
    breakdown: dict = {}
    for _ in range(repeat):
        rel = _fresh_relation(n)
        PROFILE.reset()
        started = time.perf_counter()
        build_ace_tree(rel, params)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            breakdown = {
                name: PROFILE.seconds(name)
                for name in (
                    "ace_build.phase1",
                    "ace_build.phase2",
                    "external_sort.run_generation",
                    "external_sort.merge",
                )
            }
    rel = _fresh_relation(n)
    disk = rel.disk
    clock0, stats0 = disk.clock, disk.stats.snapshot()
    build_ace_tree(rel, params)
    delta = disk.stats - stats0
    return {
        "records_per_s": n / best,
        "seconds": best,
        "best_run_profile_seconds": breakdown,
        "sim_seconds": disk.clock - clock0,
        "page_reads": delta.page_reads,
        "page_writes": delta.page_writes,
    }


def _query_benchmarks(n: int, repeat: int) -> dict:
    """Sampling-path throughput: first-k records of an ACE-Tree stream.

    The tree is built once outside the timed region; each run opens a fresh
    stream (fresh RNG + Shuttle state) over a ~10%-selectivity range.  This
    is the workload the tracing subsystem must not slow down when disabled
    (the ``span_overhead`` suite quantifies the per-span cost directly).
    """
    relation = _fresh_relation(n)
    tree = build_ace_tree(
        relation, AceBuildParams(key_fields=("k",), height=8, seed=3)
    )
    query = Box.of(Interval(0.0, 1e8))  # keys ~ U[0, 1e9) => ~10% match
    first_k = min(1_000, max(1, n // 10))
    seconds = _best_of(
        repeat,
        lambda: None,
        lambda _: tree.sample(query, seed=7).take(first_k),
    )
    # Simulated cost to the first k samples: iterate batches exactly as
    # ``take`` does so the clocks are identical to the timed runs.
    disk = relation.disk
    clock0 = disk.clock
    emitted = 0
    leaves_read = 0
    for batch in tree.sample(query, seed=7):
        emitted += len(batch.records)
        leaves_read = batch.leaves_read
        if emitted >= first_k:
            break
    return {
        "first_k": first_k,
        "seconds": seconds,
        "samples_per_s": first_k / seconds,
        "sim_seconds_to_first_k": disk.clock - clock0,
        "leaves_read": leaves_read,
    }


def _combine_batch_benchmarks(n: int, repeat: int) -> dict:
    """Batch Combine throughput: drain a whole stream as cell batches.

    Iterates every :class:`~repro.acetree.query.SampleBatch` of a full
    stream *without* touching ``batch.records`` — pure Shuttle + Combine
    cell movement on the columnar hot path, no record materialization.
    The stab and emission counts are pure functions of the seed, so they
    gate exactly.
    """
    relation = _fresh_relation(n)
    tree = build_ace_tree(
        relation, AceBuildParams(key_fields=("k",), height=8, seed=3)
    )
    query = Box.of(Interval(0.0, 1e8))

    def drain(_state) -> None:
        for _batch in tree.sample(query, seed=11):
            pass

    seconds = _best_of(repeat, lambda: None, drain)
    stream = tree.sample(query, seed=11)
    total = 0
    for batch in stream:
        total += batch.count
    return {
        "seconds": seconds,
        "cells_per_s": total / seconds,
        "stabs": stream.stats.stabs,
        "leaves_read": stream.stats.leaves_read,
        "samples": total,
    }


def _lazy_materialization_benchmarks(n: int, repeat: int) -> dict:
    """Lazy batch handles vs. materialized records, first-k workload.

    ``handles_seconds`` stops as soon as the batch *counts* reach k — the
    consumer never decodes a record tuple (an online aggregator reading
    pre-aggregated columns would behave like this).  ``materialized_seconds``
    is the same workload through ``take`` (decode + shuffle).  The gap is
    what lazy materialization saves.
    """
    relation = _fresh_relation(n)
    tree = build_ace_tree(
        relation, AceBuildParams(key_fields=("k",), height=8, seed=3)
    )
    query = Box.of(Interval(0.0, 1e8))
    first_k = min(1_000, max(1, n // 10))

    def handles(_state) -> None:
        got = 0
        for batch in tree.sample(query, seed=7):
            got += batch.count
            if got >= first_k:
                break

    handles_seconds = _best_of(repeat, lambda: None, handles)
    materialized_seconds = _best_of(
        repeat, lambda: None, lambda _: tree.sample(query, seed=7).take(first_k)
    )
    return {
        "first_k": first_k,
        "handles_seconds": handles_seconds,
        "materialized_seconds": materialized_seconds,
    }


def _sample_cache_benchmarks(n: int, repeat: int) -> tuple[dict, dict]:
    """Sample-reuse cache: miss-path vs. hit-path, wall and simulated.

    Returns ``(wall, deterministic)``: the wall section times a cold
    (empty-cache, populating) run against a warm (all-hits) run of the
    same query; the deterministic section records the cache counters and
    simulated clocks of one scripted cold-then-warm pass — pure functions
    of the seed, gated exactly under the ``sample_cache.*`` rule.
    """
    relation = _fresh_relation(n)
    tree = build_ace_tree(
        relation, AceBuildParams(key_fields=("k",), height=8, seed=3)
    )
    query = Box.of(Interval(0.0, 1e8))
    first_k = min(1_000, max(1, n // 10))

    def fresh_cache() -> None:
        tree.detach_sample_cache()
        tree.attach_sample_cache()

    def populated_cache() -> None:
        fresh_cache()
        tree.sample(query, seed=7).take(first_k)

    run = lambda _state: tree.sample(query, seed=7).take(first_k)
    cold_seconds = _best_of(repeat, fresh_cache, run)
    warm_seconds = _best_of(repeat, populated_cache, run)

    # One scripted cold-then-warm pass for the deterministic counters.
    tree.detach_sample_cache()
    cache = tree.attach_sample_cache()
    disk = tree.disk
    clock0, reads0 = disk.clock, disk.stats.page_reads
    tree.sample(query, seed=7).take(first_k)
    cold_sim = disk.clock - clock0
    cold_reads = disk.stats.page_reads - reads0
    clock1, reads1 = disk.clock, disk.stats.page_reads
    warm_stream = tree.sample(query, seed=7)
    warm_stream.take(first_k)
    warm_sim = disk.clock - clock1
    warm_reads = disk.stats.page_reads - reads1
    deterministic = dict(cache.stats.as_dict())
    deterministic.update(
        cold_sim_s=cold_sim,
        warm_sim_s=warm_sim,
        cold_reads=cold_reads,
        warm_reads=warm_reads,
        warm_leaf_hits=warm_stream.stats.cache_hits,
    )
    tree.detach_sample_cache()
    wall = {
        "first_k": first_k,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
    }
    return wall, deterministic


def _serve_benchmarks(n: int, repeat: int) -> tuple[dict, dict]:
    """Multi-tenant serve scheduler: wall throughput + deterministic totals.

    Returns ``(wall, deterministic)`` like the cache section: the wall side
    times one full bursty 16-tenant run (arrivals, DRR quanta, quality
    monitors); the deterministic side records the run's simulated clock,
    step/turn counts, and page totals — pure functions of the seed, gated
    exactly under the ``serve.*`` rule so a scheduling-order change cannot
    land silently.
    """
    from ..serve.scheduler import ServeConfig, ServeScheduler
    from ..serve.workload import Workload, WorkloadSpec

    relation = _fresh_relation(n)
    tree = build_ace_tree(
        relation, AceBuildParams(key_fields=("k",), height=8, seed=3)
    )
    domain = tree.geometry.domain.sides[0]
    spec = WorkloadSpec(
        shape="bursty", tenants=16, queries_per_tenant=3, mean_gap=0.001,
        selectivity=0.2, key_lo=domain.lo, key_hi=domain.hi,
    )
    config = ServeConfig(target_epsilon=0.05, max_samples=2_000)

    def serve_once():
        tree.disk.reset_clock()
        return ServeScheduler(tree, Workload(spec, seed=7), config).run()

    wall_seconds = _best_of(repeat, lambda: None, lambda _state: serve_once())
    report = serve_once()
    totals = report.totals()
    as_dict = report.as_dict()
    wall = {
        "tenants": spec.tenants,
        "queries": spec.tenants * spec.queries_per_tenant,
        "wall_seconds": wall_seconds,
    }
    deterministic = {
        "clock_sim_s": report.clock,
        "steps": report.steps,
        "turns": report.turns,
        "pages": totals["pages"],
        "completed": totals["completed"],
        "target_hits": totals["target_hits"],
        "max_waiting": totals["max_waiting"],
        "tta_p50_sim_s": as_dict["tta_p50_sim_s"],
        "tta_p99_sim_s": as_dict["tta_p99_sim_s"],
    }
    return wall, deterministic


def _span_overhead_benchmarks(repeat: int) -> dict:
    """Per-span cost of ``TRACER.span`` on its cheap paths, in ns.

    ``noop``: tracing *and* profiling disabled — returns the shared no-op
    singleton without touching any clock.  ``detail``: tracing disabled,
    ``detail=True`` — the hot-loop path production query runs take (one
    call + branch, no clock reads, regardless of the profiler).  ``timer``:
    tracing disabled, profiler enabled, phase-level span — one
    ``perf_counter`` pair plus a locked dictionary update.
    """
    spans = 50_000

    def loop(_state) -> None:
        span = TRACER.span
        for _ in range(spans):
            with span("micro.noop"):
                pass

    def loop_detail(_state) -> None:
        span = TRACER.span
        for _ in range(spans):
            with span("micro.noop", detail=True):
                pass

    tracer_was = TRACER.enabled
    profile_was = PROFILE.enabled
    TRACER.disable()
    try:
        detail_s = _best_of(repeat, lambda: None, loop_detail)
        PROFILE.disable()
        try:
            noop_s = _best_of(repeat, lambda: None, loop)
        finally:
            if profile_was:
                PROFILE.enable()
        timer_s = _best_of(repeat, lambda: None, loop) if profile_was else None
    finally:
        if tracer_was:
            TRACER.enable()
    result = {
        "spans_per_run": spans,
        "noop_ns_per_span": noop_s / spans * 1e9,
        "detail_ns_per_span": detail_s / spans * 1e9,
    }
    if timer_s is not None:
        result["timer_ns_per_span"] = timer_s / spans * 1e9
    return result


def _label_overhead_benchmarks(repeat: int) -> dict:
    """Per-update cost of labeled vs. unlabeled counter increments, in ns.

    Both loops go through ``family.labels(**labels).inc()`` — exactly what
    instrumented call sites do with ``**CONTEXT.labels()`` — so the ratio
    isolates what a pushed telemetry context adds: child resolution (memo
    hit) plus the double value update.  A private registry keeps the
    global ``METRICS`` clean; the cardinality cap is exercised here too,
    and ``dropped_label_sets`` reports the *global* registry's overflow
    counter, which the regression rules gate at exactly zero.
    """
    from ..obs.metrics import DROPPED_LABEL_SETS, METRICS, MetricsRegistry

    incs = 50_000
    registry = MetricsRegistry()
    family = registry.counter("micro.label_overhead")

    def loop_unlabeled(_state) -> None:
        labels: dict = {}
        for _ in range(incs):
            family.labels(**labels).inc()

    def loop_labeled(_state) -> None:
        labels = {"tenant": "t0", "query": "q0"}
        for _ in range(incs):
            family.labels(**labels).inc()

    unlabeled_s = _best_of(repeat, lambda: None, loop_unlabeled)
    labeled_s = _best_of(repeat, lambda: None, loop_labeled)

    # Deterministic cap check on a throwaway registry: two admitted label
    # sets, the third falls back to the family and counts one drop.
    capped = MetricsRegistry(max_label_sets=2)
    counter = capped.counter("micro.capped")
    for tenant in ("t0", "t1", "t2"):
        counter.labels(tenant=tenant).inc()
    cap_ok = (
        counter.value == 3
        and capped.snapshot()["counters"].get(DROPPED_LABEL_SETS, 0) == 1
    )

    return {
        "incs_per_run": incs,
        "unlabeled_ns_per_inc": unlabeled_s / incs * 1e9,
        "labeled_ns_per_inc": labeled_s / incs * 1e9,
        "labeled_overhead_ratio": labeled_s / unlabeled_s,
        "cap_fallback_ok": int(cap_ok),
        "dropped_label_sets": METRICS.snapshot()["counters"].get(
            DROPPED_LABEL_SETS, 0
        ),
    }


def _obs_analyze_benchmarks(repeat: int) -> dict:
    """Trace-analytics invariants plus the analyzer's own wall cost.

    Three small traced sampling runs over one tree: two clean same-seed
    runs (their diff must be empty — ``diff_identical`` gates exact) and
    one through the testkit's deliberately broken Shuttle (the diff must
    flag it — ``diff_detects_sabotage``).  The first run's cost ledger
    must conserve (attributed == charged page reads), its exemplar
    retention, critical-path length and flame-stack count are pure
    functions of the seed, and the diff/flame wall timings stay advisory
    under the generic rules.  A private registry and a final
    ``COST.reset()`` keep the process-global telemetry clean.
    """
    from ..obs.analyze import critical_path, diff_traces, exemplar_records, flamegraph_lines
    from ..obs.context import CONTEXT
    from ..obs.cost import COST
    from ..obs.metrics import MetricsRegistry
    from ..obs.recorder import TraceRecorder
    from ..testkit.harness import BrokenCombineStream

    relation = _fresh_relation(4000)
    tree = build_ace_tree(
        relation, AceBuildParams(key_fields=("k",), height=6, seed=3)
    )
    query = Box.of(Interval(0.0, 1e8))

    def traced_run(broken: bool = False):
        registry = MetricsRegistry()
        recorder = TraceRecorder(metrics=registry)
        # Same-seed runs must align on *absolute* simulated timestamps
        # (the diff's comparison basis), so each run starts from a zeroed
        # clock just like a fresh ``trace query`` process.
        relation.disk.reset_clock()
        with recorder:
            with CONTEXT.push(tenant="t0", query="q0"):
                stream = (
                    BrokenCombineStream(tree, query, seed=7) if broken
                    else tree.sample(query, seed=7)
                )
                stream.take(500)
        return recorder.spans, registry.snapshot(), COST.snapshot()

    spans_a, snapshot_a, cost_a = traced_run()
    spans_b, _, _ = traced_run()
    spans_c, _, _ = traced_run(broken=True)
    COST.reset()

    diff_same = diff_traces(spans_a, spans_b)
    diff_other = diff_traces(spans_a, spans_c)
    diff_wall = _best_of(
        repeat, lambda: None, lambda _: diff_traces(spans_a, spans_b)
    )
    flame_wall = _best_of(
        repeat, lambda: None, lambda _: flamegraph_lines(spans_a)
    )
    return {
        "diff_identical": int(diff_same.identical),
        "diff_detects_sabotage": int(not diff_other.identical),
        "cost_conserved": int(cost_a["conserved"]),
        "cost_attributed_reads": cost_a["attributed_reads"],
        "cost_charged_reads": cost_a["charged_reads"],
        "exemplar_count": len(exemplar_records(snapshot_a)),
        "critical_path_steps": len(critical_path(spans_a)),
        "flame_lines": len(flamegraph_lines(spans_a)),
        "diff_wall_seconds": diff_wall,
        "flame_wall_seconds": flame_wall,
    }


def _program_lint_benchmarks(repeat: int) -> dict:
    """Wall time of the whole-program analyzer over the live tree.

    ``python -m repro lint --program`` is a blocking CI job; this section
    keeps its cost visible so the pass stays inside its 5-second budget
    as the call graph grows.  The structural counts are recorded for
    context only (they move with every code change, so the regression
    rules ignore them); the timing gates under the generic wall rules.
    """
    from pathlib import Path

    from ..analysis.program import analyze_program

    root = Path(__file__).resolve().parents[1]
    report = analyze_program(root)
    wall_s = _best_of(repeat, lambda: None, lambda _: analyze_program(root))
    return {
        "wall_seconds": wall_s,
        "files": report.stats["files"],
        "functions": report.stats["functions"],
        "call_edges": report.stats["call_edges"],
        "findings": report.stats["findings"],
    }


def _slug(name: str) -> str:
    """Sampler display name -> JSON key (``"B+ Tree"`` -> ``"b_tree"``)."""
    import re

    return re.sub(r"[^a-z0-9]+", "_", name.lower()).strip("_")


def _figure_benchmarks() -> dict:
    """Deterministic figure-curve points (``fig12`` at small scale).

    Everything here is on the *simulated* clock — a pure function of the
    code and the seed — so ``bench --compare`` gates on it exactly: any
    drift in these numbers is a behavioural change in the sampling engine,
    not machine noise.
    """
    from .figures import clear_context_cache, run_figure

    clear_context_cache()
    try:
        result = run_figure("fig12", scale="small", num_queries=1, seed=0)
        section: dict = {
            "fig12": {
                "scan_seconds_sim_s": result.scan_seconds,
                "samples_emitted": {
                    _slug(name): curves[0].total
                    for name, curves in result.raw.items()
                },
                "pct_at_2": {
                    _slug(name): result.percent_at(name, 2.0)
                    for name in result.curves
                },
                "pct_at_4": {
                    _slug(name): result.percent_at(name, 4.0)
                    for name in result.curves
                },
            }
        }
    finally:
        clear_context_cache()
    return section


def run_micro(n: int = 20_000, repeat: int = 5, figures: bool = False) -> dict:
    """Run the whole micro suite; returns a JSON-ready dictionary."""
    results = {
        "meta": {
            "n_records": n,
            "repeat": repeat,
            "timing": "best of repeat, perf_counter",
            "python": sys.version.split()[0],
        },
        "codec": _codec_benchmarks(n, repeat),
        "external_sort": _sort_benchmarks(n, repeat),
        "ace_build": _build_benchmarks(n, repeat),
        "ace_query": _query_benchmarks(n, repeat),
        "combine_batch": _combine_batch_benchmarks(n, repeat),
        "ace_query_lazy": _lazy_materialization_benchmarks(n, repeat),
        "span_overhead": _span_overhead_benchmarks(repeat),
        "obs_label_overhead": _label_overhead_benchmarks(repeat),
        "obs_analyze": _obs_analyze_benchmarks(repeat),
        "program_lint": _program_lint_benchmarks(repeat),
    }
    cache_wall, cache_det = _sample_cache_benchmarks(n, repeat)
    results["ace_query_cache"] = cache_wall
    results["sample_cache"] = cache_det
    serve_wall, serve_det = _serve_benchmarks(n, repeat)
    results["serve_wall"] = serve_wall
    results["serve"] = serve_det
    if figures:
        results["figure_sim"] = _figure_benchmarks()
    # The aggregate profile over the whole suite (the last reset happens in
    # _build_benchmarks, so timers cover the build/query/span sections).
    results["profile"] = PROFILE.snapshot()
    if TRACER.enabled:
        results["metrics"] = METRICS.snapshot()
    return results
