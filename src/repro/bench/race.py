"""The sampling race: the measurement behind every figure in the paper.

A *race* runs one sampler against one range query and records the cumulative
number of sample records returned as a function of simulated time.  The
paper plots these curves averaged over 10 queries, with both axes
normalized: time as a percentage of the time to scan the relation, records
as a percentage of the relation size.

Samplers share one simulated disk, so each curve is measured as a *delta*
from the sampler's start time, and any page caches are reset before each
query (the paper's runs start cold).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

__all__ = ["RaceCurve", "AveragedCurve", "run_race", "average_curves", "make_grid"]


@dataclass
class RaceCurve:
    """Cumulative records returned vs elapsed simulated seconds (one query)."""

    name: str
    times: list[float] = field(default_factory=list)
    counts: list[int] = field(default_factory=list)
    buffered: list[int] = field(default_factory=list)
    completed: bool = False

    @property
    def total(self) -> int:
        return self.counts[-1] if self.counts else 0

    @property
    def end_time(self) -> float:
        return self.times[-1] if self.times else 0.0

    def count_at(self, t: float) -> int:
        """Cumulative records at elapsed time ``t`` (step interpolation)."""
        i = bisect_right(self.times, t)
        return self.counts[i - 1] if i else 0

    def buffered_at(self, t: float) -> int:
        """Buffered (not yet emittable) records at elapsed time ``t``."""
        if not self.buffered:
            return 0
        i = bisect_right(self.times, t)
        return self.buffered[i - 1] if i else 0


def run_race(
    name: str,
    batches: Iterator,
    start_clock: float,
    time_limit: float | None = None,
    count_limit: int | None = None,
) -> RaceCurve:
    """Consume a sampler's batch stream, recording its emission curve.

    Args:
        name: label for the curve.
        batches: the sampler's batch iterator (``.records`` / ``.clock``;
            ACE batches additionally carry ``.buffered_records``).
        start_clock: the simulated clock value when the sampler started
            (batch clocks are absolute; the curve stores deltas).
        time_limit: stop once a batch lands past this many elapsed seconds.
        count_limit: stop once this many records have been returned.
    """
    curve = RaceCurve(name=name)
    cumulative = 0
    for batch in batches:
        elapsed = batch.clock - start_clock
        cumulative += len(batch.records)
        curve.times.append(elapsed)
        curve.counts.append(cumulative)
        curve.buffered.append(getattr(batch, "buffered_records", 0))
        if time_limit is not None and elapsed >= time_limit:
            return curve
        if count_limit is not None and cumulative >= count_limit:
            return curve
    curve.completed = True
    return curve


@dataclass
class AveragedCurve:
    """A curve averaged across queries, on a normalized time grid."""

    name: str
    grid: list[float]  # elapsed seconds
    mean_counts: list[float]
    min_counts: list[float]
    max_counts: list[float]
    mean_buffered: list[float]
    min_buffered: list[float]
    max_buffered: list[float]
    num_queries: int

    def normalized(
        self, scan_seconds: float, relation_records: int
    ) -> list[tuple[float, float]]:
        """(time as % of scan, mean records as % of relation) pairs."""
        return [
            (100.0 * t / scan_seconds, 100.0 * c / relation_records)
            for t, c in zip(self.grid, self.mean_counts)
        ]


def average_curves(
    name: str, curves: Sequence[RaceCurve], grid: Sequence[float]
) -> AveragedCurve:
    """Average per-query race curves onto a shared time grid."""
    if not curves:
        raise ValueError("need at least one curve to average")
    counts = np.array(
        [[curve.count_at(t) for t in grid] for curve in curves], dtype=float
    )
    buffered = np.array(
        [[curve.buffered_at(t) for t in grid] for curve in curves], dtype=float
    )
    return AveragedCurve(
        name=name,
        grid=list(grid),
        mean_counts=counts.mean(axis=0).tolist(),
        min_counts=counts.min(axis=0).tolist(),
        max_counts=counts.max(axis=0).tolist(),
        mean_buffered=buffered.mean(axis=0).tolist(),
        min_buffered=buffered.min(axis=0).tolist(),
        max_buffered=buffered.max(axis=0).tolist(),
        num_queries=len(curves),
    )


def make_grid(limit: float, points: int = 20) -> list[float]:
    """An evenly spaced time grid over ``(0, limit]``."""
    if points < 1:
        raise ValueError(f"need at least one grid point, got {points}")
    return [limit * (i + 1) / points for i in range(points)]
