"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro figures                 # all figures at medium scale
    python -m repro figures fig12 fig13     # a subset
    python -m repro figures --scale small   # quick smoke run
    python -m repro figures --sanitize ...  # invariant checks first
    python -m repro list                    # show the figure inventory
    python -m repro bench --json            # wall-clock micro-benchmarks
    python -m repro bench --json --baseline BENCH_PR1.json --compare
    python -m repro lint [--json] [PATH...] # static analysis pass
    python -m repro lint --select TST001 tests  # one rule over the tests
    python -m repro trace query             # dual-clock trace + report
    python -m repro trace validate FILE     # schema-check a JSONL trace
    python -m repro obs expose --text       # Prometheus text snapshot
    python -m repro obs expose --from trace.jsonl --watch  # live dashboard
    python -m repro testkit fuzz --seed 7   # fault-injection differential fuzz
    python -m repro testkit replay FILE     # re-run a recorded failing case

Each figure's series is printed and, with ``--out DIR``, written to
``DIR/<fig>.txt`` (the same format EXPERIMENTS.md quotes).  ``bench`` runs
the :mod:`repro.bench.micro` suite and emits throughput numbers — as JSON
with ``--json`` (the format committed as ``BENCH_PR1.json`` /
``BENCH_PR4.json``), else as a short table; ``--baseline FILE --compare``
diffs the results against a committed baseline with
:mod:`repro.obs.regress` (deterministic simulated-clock metrics compared
exactly and gating the exit code, wall-clock metrics advisory within a
relative tolerance).  ``trace`` runs one operation (a small build, a small
query workload, or full figure experiments) under the :mod:`repro.obs`
tracer and writes a JSONL span file plus a Chrome ``trace_event`` file,
then prints the text report (see docs/OBSERVABILITY.md); the ``query`` and
``figure`` operations additionally attach :mod:`repro.obs.quality`
monitors to every sample stream, so the report and the JSONL carry
uniformity/coverage/time-to-accuracy sections.  ``figures --trace FILE``
does the same around a normal figure run.  ``trace validate FILE``
re-checks an existing JSONL trace against the schemas and exits non-zero
on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
import time  # repro: allow[CLK001] reports real wall seconds per figure run
from pathlib import Path

from .figures import FIGURES, SCALES, run_figure
from .report import format_figure

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the evaluation figures of the ACE Tree paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="run figure experiments")
    figures.add_argument(
        "names",
        nargs="*",
        metavar="FIG",
        help=f"figures to run (default: all of {', '.join(FIGURES)})",
    )
    figures.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="medium",
        help="relation size preset (default: medium)",
    )
    figures.add_argument(
        "--queries",
        type=int,
        default=None,
        help="override the number of queries averaged per figure",
    )
    figures.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write per-figure text files into",
    )
    figures.add_argument(
        "--seed", type=int, default=0, help="experiment seed (default 0)"
    )
    figures.add_argument(
        "--sanitize",
        action="store_true",
        help="run the ACE-Tree invariant sanitizers (check_tree/check_sample "
        "on a small SALE build) before the figures; fail fast on violation",
    )
    figures.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="record a dual-clock trace of the whole run to FILE (JSONL; a "
        "Chrome trace_event file is written next to it) and print the report",
    )

    sub.add_parser("list", help="list the figure inventory")

    trace = sub.add_parser(
        "trace",
        help="run one operation under the dual-clock tracer and report on it",
    )
    trace.add_argument(
        "operation",
        choices=("build", "query", "figure", "validate"),
        help="what to trace: a small ACE-Tree build, a query workload over a "
        "pre-built (untraced) tree, or figure experiments; 'validate' "
        "instead schema-checks existing JSONL trace file(s) and exits "
        "non-zero on any violation",
    )
    trace.add_argument(
        "names",
        nargs="*",
        metavar="FIG|FILE",
        help="figure names for the 'figure' operation (default: fig12); "
        "JSONL file paths for 'validate'",
    )
    trace.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="relation size preset for the 'figure' operation (default: small)",
    )
    trace.add_argument(
        "--seed", type=int, default=0, help="experiment seed (default 0)"
    )
    trace.add_argument(
        "--out",
        type=Path,
        default=Path("trace.jsonl"),
        help="JSONL span file to write (default: trace.jsonl); the Chrome "
        "trace goes to the same name with a .chrome.json suffix",
    )
    trace.add_argument(
        "--top",
        type=int,
        default=12,
        help="rows per 'top spans' report table (default 12)",
    )

    lint = sub.add_parser(
        "lint", help="run the repro static analysis pass (see docs/ANALYSIS.md)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files/directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array instead of text",
    )
    lint.add_argument(
        "--select",
        metavar="RULE",
        action="append",
        default=None,
        help="run only this rule ID (repeatable), e.g. --select TST001 "
        "to apply the test-hygiene rule to tests/",
    )
    lint.add_argument(
        "--program",
        action="store_true",
        help="run the whole-program pass (call graph, SEED/RACE rules, "
        "call-level layering) over one package root",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="program mode: baseline file of accepted findings "
        "(default: analysis/baseline.json when it exists)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="program mode: accept the current findings as the new "
        "baseline and exit 0",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="program mode: report every finding, ignoring any baseline",
    )
    lint.add_argument(
        "--sarif",
        metavar="FILE",
        default=None,
        help="program mode: also write findings as SARIF 2.1.0 to FILE",
    )
    lint.add_argument(
        "--fix",
        action="store_true",
        help="rewrite fixable findings in place (MUT001 None-sentinel); "
        "opt-in, edits files under PATH",
    )

    bench = sub.add_parser(
        "bench", help="run wall-clock micro-benchmarks of the implementation"
    )
    bench.add_argument(
        "--json",
        action="store_true",
        help="emit results as JSON on stdout (else a short table)",
    )
    bench.add_argument(
        "--out", type=Path, default=None, help="also write the JSON to a file"
    )
    bench.add_argument(
        "--n", type=int, default=20_000, help="relation size (default 20000)"
    )
    bench.add_argument(
        "--repeat",
        type=int,
        default=5,
        help="timing runs per benchmark; the best is reported (default 5)",
    )
    bench.add_argument(
        "--figures",
        action="store_true",
        help="also run the deterministic figure-curve section (fig12 at "
        "small scale on the simulated clock; exact-compared by --compare)",
    )
    bench.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="a committed bench --json result to compare against",
    )
    bench.add_argument(
        "--compare",
        action="store_true",
        help="with --baseline: print the regression diff and gate the exit "
        "code on it (non-zero only for deterministic simulated-clock "
        "regressions; wall-clock drift is advisory)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="relative tolerance for wall-clock metrics in --compare "
        "(default 0.25)",
    )
    bench.add_argument(
        "--verdict",
        type=Path,
        default=None,
        metavar="FILE",
        help="with --compare: also write the machine-readable verdict JSON",
    )

    obs = sub.add_parser(
        "obs",
        help="telemetry exposition: Prometheus text or a live terminal "
        "dashboard (see docs/OBSERVABILITY.md)",
    )
    obs_mode = obs.add_subparsers(dest="obs_command", required=True)
    expose = obs_mode.add_parser(
        "expose",
        help="render a metrics snapshot from the live registry or a "
        "JSONL trace/flight file",
    )
    expose.add_argument(
        "--text",
        action="store_true",
        help="emit the Prometheus text exposition format (default: the "
        "terminal dashboard)",
    )
    expose.add_argument(
        "--watch",
        action="store_true",
        help="redraw the dashboard every --interval seconds for --frames "
        "frames",
    )
    expose.add_argument(
        "--from",
        dest="source",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSONL file to read the metrics snapshot, quality records, "
        "and event tail from (default: this process's registry)",
    )
    expose.add_argument(
        "--check",
        action="store_true",
        help="with --text: re-parse the emitted text with the strict "
        "Prometheus parser and fail on any malformed line",
    )
    expose.add_argument(
        "--frames", type=int, default=5,
        help="dashboard frames to render with --watch (default 5)",
    )
    expose.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between --watch frames (default 2.0)",
    )
    expose.add_argument(
        "--top", type=int, default=8,
        help="rows per dashboard table (default 8)",
    )

    from ..testkit.cli import add_testkit_parser

    add_testkit_parser(sub)
    return parser


def _run_compare(args, results: dict) -> int:
    """``bench --baseline FILE --compare``: diff current results vs FILE."""
    from ..obs.regress import DEFAULT_TOLERANCE, compare_benchmarks, render_diff

    try:
        baseline = json.loads(args.baseline.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench: cannot read baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2
    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    report = compare_benchmarks(baseline, results, tolerance=tolerance)
    print(render_diff(report))
    if args.verdict is not None:
        args.verdict.write_text(
            json.dumps(report.verdict(), indent=2, sort_keys=True) + "\n"
        )
    code = report.exit_code()
    if code != 0:
        from ..obs.flight import FLIGHT

        # Deterministic regression: snapshot the run's last moments when a
        # recorder is armed (no-op otherwise).
        FLIGHT.trip("regress-gate")
    return code


def _run_bench(args) -> int:
    from .micro import run_micro

    if args.n <= 0 or args.repeat <= 0:
        print("bench: --n and --repeat must be positive", file=sys.stderr)
        return 2
    if args.compare and args.baseline is None:
        print("bench: --compare requires --baseline FILE", file=sys.stderr)
        return 2
    if args.tolerance is not None and args.tolerance < 0:
        print("bench: --tolerance must be >= 0", file=sys.stderr)
        return 2
    results = run_micro(n=args.n, repeat=args.repeat, figures=args.figures)
    text = json.dumps(results, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
    if args.json:
        print(text)
    else:
        codec = results["codec"]
        sort = results["external_sort"]
        build = results["ace_build"]
        print(f"codec   pack {codec['pack_many_mb_per_s']:8.1f} MB/s   "
              f"unpack {codec['unpack_many_mb_per_s']:8.1f} MB/s   "
              f"column {codec['unpack_column_keys_per_s'] / 1e6:6.2f} Mkeys/s")
        print(f"sort    key_field {sort['key_field_records_per_s'] / 1e3:8.1f} krec/s   "
              f"callable {sort['callable_records_per_s'] / 1e3:8.1f} krec/s")
        print(f"build   ace {build['records_per_s'] / 1e3:8.1f} krec/s")
        query = results["ace_query"]
        spans = results["span_overhead"]
        print(f"query   ace {query['samples_per_s'] / 1e3:8.1f} ksamples/s "
              f"(first {query['first_k']})")
        line = (f"span    noop {spans['noop_ns_per_span']:6.1f} ns   "
                f"detail {spans['detail_ns_per_span']:6.1f} ns")
        if "timer_ns_per_span" in spans:
            line += f"   timer {spans['timer_ns_per_span']:6.1f} ns"
        print(line)
    if args.compare:
        return _run_compare(args, results)
    return 0


def _run_sanitize(seed: int) -> int:
    """Build a small SALE tree and run the runtime invariant checkers."""
    from ..acetree import AceBuildParams, build_ace_tree
    from ..analysis.invariants import check_sample, check_tree
    from ..core.errors import InvariantViolation
    from ..storage.cost import CostModel
    from ..storage.disk import SimulatedDisk
    from ..workloads import generate_sale_1d, queries_1d

    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
    sale = generate_sale_1d(disk, num_records=8000, seed=seed)
    tree = build_ace_tree(sale, AceBuildParams(key_fields=("day",), seed=seed))
    try:
        check_tree(tree)
        for query in queries_1d(0.025, 3, seed=seed):
            report = check_sample(tree, query, seed=seed)
            print(
                f"sanitize: query ok (population={report.population_size}, "
                f"chi2={report.chi2:.2f}, p={report.p_value:.3f}, "
                f"pages={report.pages_read})"
            )
    except InvariantViolation as exc:
        print(f"sanitize: INVARIANT VIOLATION: {exc}", file=sys.stderr)
        return 1
    print("sanitize: all invariants hold")
    return 0


def _export_trace(recorder, out: Path, top: int = 12, quality=None) -> int:
    """Write JSONL + Chrome files for a finished recorder, validate, report."""
    from ..obs import (
        export_chrome_trace,
        export_jsonl,
        render_report,
        validate_jsonl,
    )

    records = quality.records() if quality is not None else None
    chrome = out.with_suffix(".chrome.json")
    snapshot = recorder.metrics.snapshot() if recorder.metrics is not None else None
    lines = export_jsonl(recorder.spans, out, quality=records, metrics=snapshot)
    events = export_chrome_trace(recorder.spans, chrome, quality=records)
    errors = validate_jsonl(out)
    if errors:
        for error in errors:
            print(f"trace: INVALID {out}: {error}", file=sys.stderr)
        return 1
    print(f"trace: {lines} records -> {out} (valid JSONL), "
          f"{events} events -> {chrome}")
    print()
    print(render_report(recorder.spans, recorder.metrics, top=top,
                        quality=records))
    return 0


def _load_exposition_source(path: Path):
    """(snapshot, quality records, event tail) from one JSONL file.

    Works for ordinary traces (the appended ``"kind": "metrics"`` record
    supplies the snapshot) and for flight dumps (the event lines supply
    the tail); missing pieces degrade to empty.
    """
    from ..obs import load_metrics_snapshot, load_quality_jsonl

    snapshot = load_metrics_snapshot(path) or {}
    quality = load_quality_jsonl(path)
    events = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if isinstance(record, dict) and record.get("kind") in (
            "span", "metric", "fault", "quality"
        ):
            events.append(record)
    return snapshot, quality, events


def _run_obs(args) -> int:
    """``python -m repro obs expose``: Prometheus text or terminal dashboard."""
    from ..obs import (
        FLIGHT,
        METRICS,
        evaluate_slos,
        parse_prometheus_text,
        prometheus_text,
        render_dashboard,
    )

    def load():
        if args.source is not None:
            return _load_exposition_source(args.source)
        return METRICS.snapshot(), [], FLIGHT.snapshot()

    try:
        snapshot, quality, events = load()
    except (OSError, json.JSONDecodeError) as exc:
        print(f"obs expose: cannot read {args.source}: {exc}", file=sys.stderr)
        return 2

    if args.text:
        text = prometheus_text(snapshot)
        if args.check:
            try:
                parse_prometheus_text(text)
            except ValueError as exc:
                print(f"obs expose: emitted text failed to parse: {exc}",
                      file=sys.stderr)
                return 1
        sys.stdout.write(text)
        return 0

    frames = max(1, args.frames) if args.watch else 1
    for frame in range(frames):
        if frame:
            time.sleep(max(0.0, args.interval))
            try:
                snapshot, quality, events = load()
            except (OSError, json.JSONDecodeError) as exc:
                print(f"obs expose: cannot read {args.source}: {exc}",
                      file=sys.stderr)
                return 2
            # ANSI home+clear between frames: a stable in-place redraw.
            sys.stdout.write("\x1b[H\x1b[2J")
        statuses = evaluate_slos(quality=quality, metrics=snapshot)
        sys.stdout.write(render_dashboard(
            snapshot, slo_statuses=statuses, flight_events=events,
            top=args.top,
        ))
        sys.stdout.flush()
    return 0


def _run_validate(paths) -> int:
    """``python -m repro trace validate FILE...``: schema-check JSONL files."""
    from ..obs import validate_jsonl

    if not paths:
        print("trace validate: need at least one JSONL file", file=sys.stderr)
        return 2
    failed = 0
    for path in paths:
        try:
            errors = validate_jsonl(path)
        except OSError as exc:
            print(f"trace: INVALID {path}: {exc}", file=sys.stderr)
            failed += 1
            continue
        if errors:
            failed += 1
            for error in errors:
                print(f"trace: INVALID {path}: {error}", file=sys.stderr)
        else:
            print(f"trace: {path} valid")
    return 1 if failed else 0


def _run_trace(args) -> int:
    """``python -m repro trace <build|query|figure|validate>``."""
    from ..acetree import AceBuildParams, build_ace_tree
    from ..obs import CONTEXT, METRICS, QualitySession, TraceRecorder
    from ..storage.cost import CostModel
    from ..storage.disk import SimulatedDisk
    from ..workloads import generate_sale_1d, queries_1d

    if args.operation == "validate":
        return _run_validate(args.names)
    if args.operation != "figure" and args.names:
        print("trace: figure names only apply to the 'figure' operation",
              file=sys.stderr)
        return 2

    METRICS.reset()
    recorder = TraceRecorder(metrics=METRICS)

    if args.operation == "figure":
        from .figures import clear_context_cache

        names = args.names or ["fig12"]
        unknown = [name for name in names if name not in FIGURES]
        if unknown:
            print(f"unknown figure(s): {', '.join(unknown)}; "
                  f"known: {', '.join(FIGURES)}", file=sys.stderr)
            return 2
        quality = QualitySession(metrics=METRICS)
        clear_context_cache()  # so the context build is traced too
        try:
            with recorder:
                for name in names:
                    run_figure(name, scale=args.scale, seed=args.seed,
                               quality=quality)
        finally:
            clear_context_cache()
        quality.finalize()
        return _export_trace(recorder, args.out, top=args.top, quality=quality)

    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
    sale = generate_sale_1d(disk, num_records=8000, seed=args.seed)
    params = AceBuildParams(key_fields=("day",), seed=args.seed)
    if args.operation == "build":
        with recorder:
            build_ace_tree(sale, params)
        return _export_trace(recorder, args.out, top=args.top)

    # 'query': build untraced so the trace isolates the query path — every
    # page read then happens under a stab/flush span and the report's
    # leaf-span attribution covers (essentially) all of them.
    tree = build_ace_tree(sale, params)
    disk.reset_clock()
    quality = QualitySession(metrics=METRICS)
    key_of = tree.schema.key_getter("day")
    with recorder:
        for query_index, query in enumerate(queries_1d(0.025, 3, seed=args.seed)):
            side = query.sides[0]
            # Alternate a synthetic tenant per query: the exported trace
            # then carries genuine multi-tenant labeled series for the
            # exposition surface and the per-label report breakdown.
            with CONTEXT.push(tenant=f"t{query_index % 2}",
                              query=f"q{query_index}"):
                monitor = quality.monitor(
                    f"query{query_index}",
                    key_of=key_of,
                    lo=side.lo,
                    hi=side.hi,
                    group="ACE Tree",
                    population=tree.estimate_count(query),
                )
                start = disk.clock
                stream = tree.sample(query, seed=args.seed + query_index)
                # Same break condition as SampleStream.take(2000) — the wrap
                # generator only observes, so the simulated clock is untouched.
                taken = 0
                for batch in monitor.wrap(stream, start_sim=start):
                    taken += len(batch.records)
                    if taken >= 2000:
                        break
    quality.finalize()
    return _export_trace(recorder, args.out, top=args.top, quality=quality)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "bench":
        return _run_bench(args)

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "obs":
        return _run_obs(args)

    if args.command == "testkit":
        from ..testkit.cli import run_testkit

        return run_testkit(args)

    if args.command == "lint":
        from ..analysis.cli import run_lint

        return run_lint(
            args.paths,
            as_json=args.json,
            select=args.select,
            program=args.program,
            baseline=args.baseline,
            update_baseline=args.update_baseline,
            no_baseline=args.no_baseline,
            sarif=args.sarif,
            fix=args.fix,
        )

    if args.command == "list":
        for name, spec in FIGURES.items():
            print(f"{name:7s}  {spec.title}")
            print(f"         paper shape: {spec.expected_shape}")
        return 0

    names = args.names or list(FIGURES)
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; "
              f"known: {', '.join(FIGURES)}", file=sys.stderr)
        return 2
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    if args.sanitize:
        status = _run_sanitize(args.seed)
        if status != 0:
            return status

    recorder = None
    quality = None
    if args.trace is not None:
        from ..obs import METRICS, QualitySession, TraceRecorder

        METRICS.reset()
        recorder = TraceRecorder(metrics=METRICS)
        recorder.install()
        quality = QualitySession(metrics=METRICS)
    try:
        for name in names:
            started = time.time()
            result = run_figure(
                name, scale=args.scale, num_queries=args.queries,
                seed=args.seed, quality=quality,
            )
            text = format_figure(result)
            print(text)
            print(f"[{name}: {time.time() - started:.1f}s wall]")
            print()
            if args.out is not None:
                (args.out / f"{name}.txt").write_text(text + "\n")
    finally:
        if recorder is not None:
            recorder.uninstall()
    if recorder is not None:
        if quality is not None:
            quality.finalize()
        return _export_trace(recorder, args.trace, quality=quality)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
