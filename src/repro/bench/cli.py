"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro figures                 # all figures at medium scale
    python -m repro figures fig12 fig13     # a subset
    python -m repro figures --scale small   # quick smoke run
    python -m repro figures --sanitize ...  # invariant checks first
    python -m repro list                    # show the figure inventory
    python -m repro bench --json            # wall-clock micro-benchmarks
    python -m repro bench --json --baseline BENCH_PR1.json --compare
    python -m repro lint [--json] [PATH...] # static analysis pass
    python -m repro lint --select TST001 tests  # one rule over the tests
    python -m repro trace query             # dual-clock trace + report
    python -m repro trace validate FILE     # schema-check a JSONL trace
    python -m repro trace diff A.jsonl B.jsonl    # align two runs, exit 1 on divergence
    python -m repro trace critical-path FILE      # costliest root-to-leaf chain
    python -m repro trace flame FILE > out.folded # collapsed flamegraph stacks
    python -m repro trace report FILE       # re-render the text report
    python -m repro obs expose --text       # Prometheus text snapshot
    python -m repro obs expose --from trace.jsonl --watch  # live dashboard
    python -m repro testkit fuzz --seed 7   # fault-injection differential fuzz
    python -m repro testkit fuzz --serve    # solo-vs-interleaved serve oracle
    python -m repro testkit replay FILE     # re-run a recorded failing case
    python -m repro serve --workload bursty --tenants 100 --seed 7
                                            # multi-tenant serve run (docs/SERVING.md)

Each figure's series is printed and, with ``--out DIR``, written to
``DIR/<fig>.txt`` (the same format EXPERIMENTS.md quotes).  ``bench`` runs
the :mod:`repro.bench.micro` suite and emits throughput numbers — as JSON
with ``--json`` (the format committed as ``BENCH_PR1.json`` /
``BENCH_PR4.json``), else as a short table; ``--baseline FILE --compare``
diffs the results against a committed baseline with
:mod:`repro.obs.regress` (deterministic simulated-clock metrics compared
exactly and gating the exit code, wall-clock metrics advisory within a
relative tolerance).  ``trace`` runs one operation (a small build, a small
query workload, or full figure experiments) under the :mod:`repro.obs`
tracer and writes a JSONL span file plus a Chrome ``trace_event`` file,
then prints the text report (see docs/OBSERVABILITY.md); the ``query`` and
``figure`` operations additionally attach :mod:`repro.obs.quality`
monitors to every sample stream, so the report and the JSONL carry
uniformity/coverage/time-to-accuracy sections.  ``figures --trace FILE``
does the same around a normal figure run.  ``trace validate FILE``
re-checks an existing JSONL trace against the schemas and exits non-zero
on any violation.

The analytics operations (:mod:`repro.obs.analyze`) work on *existing*
trace files: ``trace diff A B`` aligns two runs by stable span path key
and exits 0 when every replay-stable field matches, 1 on divergence
(naming the first divergent span), 2 on malformed input; ``trace
critical-path FILE`` and ``trace flame FILE`` extract the max-cost
descent and collapsed flamegraph stacks on ``--clock sim|wall|reads``;
``trace report FILE`` re-renders the text report (including cost and
exemplar sections) from a file.  ``bench --compare --trace-baseline
FILE`` auto-invokes the diff on deterministic regressions, and ``trace
query --sabotage combine-drop`` records a deliberately broken run for
the CI smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
import time  # repro: allow[CLK001] reports real wall seconds per figure run
from pathlib import Path

from .figures import FIGURES, SCALES, run_figure
from .report import format_figure

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the evaluation figures of the ACE Tree paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="run figure experiments")
    figures.add_argument(
        "names",
        nargs="*",
        metavar="FIG",
        help=f"figures to run (default: all of {', '.join(FIGURES)})",
    )
    figures.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="medium",
        help="relation size preset (default: medium)",
    )
    figures.add_argument(
        "--queries",
        type=int,
        default=None,
        help="override the number of queries averaged per figure",
    )
    figures.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write per-figure text files into",
    )
    figures.add_argument(
        "--seed", type=int, default=0, help="experiment seed (default 0)"
    )
    figures.add_argument(
        "--sanitize",
        action="store_true",
        help="run the ACE-Tree invariant sanitizers (check_tree/check_sample "
        "on a small SALE build) before the figures; fail fast on violation",
    )
    figures.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="record a dual-clock trace of the whole run to FILE (JSONL; a "
        "Chrome trace_event file is written next to it) and print the report",
    )

    sub.add_parser("list", help="list the figure inventory")

    trace = sub.add_parser(
        "trace",
        help="run one operation under the dual-clock tracer and report on it",
    )
    trace.add_argument(
        "operation",
        choices=("build", "query", "figure", "validate", "diff",
                 "critical-path", "flame", "report"),
        help="what to trace: a small ACE-Tree build, a query workload over a "
        "pre-built (untraced) tree, or figure experiments; 'validate' "
        "instead schema-checks existing JSONL trace file(s); 'diff' "
        "aligns two existing traces and exits 1 on divergence; "
        "'critical-path', 'flame' and 'report' analyze one existing trace",
    )
    trace.add_argument(
        "names",
        nargs="*",
        metavar="FIG|FILE",
        help="figure names for the 'figure' operation (default: fig12); "
        "JSONL file paths for 'validate', 'diff' (exactly two), "
        "'critical-path', 'flame' and 'report' (exactly one)",
    )
    trace.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="relation size preset for the 'figure' operation (default: small)",
    )
    trace.add_argument(
        "--seed", type=int, default=0, help="experiment seed (default 0)"
    )
    trace.add_argument(
        "--out",
        type=Path,
        default=Path("trace.jsonl"),
        help="JSONL span file to write (default: trace.jsonl); the Chrome "
        "trace goes to the same name with a .chrome.json suffix",
    )
    trace.add_argument(
        "--top",
        type=int,
        default=12,
        help="rows per 'top spans' report table (default 12)",
    )
    trace.add_argument(
        "--clock",
        choices=("sim", "wall", "reads"),
        default="sim",
        help="cost dimension for 'critical-path' and 'flame': simulated "
        "seconds, wall seconds, or charged page reads (default: sim)",
    )
    trace.add_argument(
        "--verdict",
        type=Path,
        default=None,
        metavar="FILE",
        help="'diff': also write the machine-readable verdict record "
        "(a \"kind\": \"diff\" JSON object) to FILE",
    )
    trace.add_argument(
        "--sabotage",
        choices=("combine-drop",),
        default=None,
        help="'query': sample through a deliberately broken Shuttle "
        "(the testkit's combine-drop mutation) so the exported trace "
        "diverges from a clean same-seed run — the CI trace-diff smoke "
        "test's divergent half",
    )

    lint = sub.add_parser(
        "lint", help="run the repro static analysis pass (see docs/ANALYSIS.md)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files/directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array instead of text",
    )
    lint.add_argument(
        "--select",
        metavar="RULE",
        action="append",
        default=None,
        help="run only this rule ID (repeatable), e.g. --select TST001 "
        "to apply the test-hygiene rule to tests/",
    )
    lint.add_argument(
        "--program",
        action="store_true",
        help="run the whole-program pass (call graph, SEED/RACE rules, "
        "call-level layering) over one package root",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="program mode: baseline file of accepted findings "
        "(default: analysis/baseline.json when it exists)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="program mode: accept the current findings as the new "
        "baseline and exit 0",
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="program mode: report every finding, ignoring any baseline",
    )
    lint.add_argument(
        "--sarif",
        metavar="FILE",
        default=None,
        help="program mode: also write findings as SARIF 2.1.0 to FILE",
    )
    lint.add_argument(
        "--fix",
        action="store_true",
        help="rewrite fixable findings in place (MUT001 None-sentinel); "
        "opt-in, edits files under PATH",
    )

    bench = sub.add_parser(
        "bench", help="run wall-clock micro-benchmarks of the implementation"
    )
    bench.add_argument(
        "--json",
        action="store_true",
        help="emit results as JSON on stdout (else a short table)",
    )
    bench.add_argument(
        "--out", type=Path, default=None, help="also write the JSON to a file"
    )
    bench.add_argument(
        "--n", type=int, default=20_000, help="relation size (default 20000)"
    )
    bench.add_argument(
        "--repeat",
        type=int,
        default=5,
        help="timing runs per benchmark; the best is reported (default 5)",
    )
    bench.add_argument(
        "--figures",
        action="store_true",
        help="also run the deterministic figure-curve section (fig12 at "
        "small scale on the simulated clock; exact-compared by --compare)",
    )
    bench.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="a committed bench --json result to compare against",
    )
    bench.add_argument(
        "--compare",
        action="store_true",
        help="with --baseline: print the regression diff and gate the exit "
        "code on it (non-zero only for deterministic simulated-clock "
        "regressions; wall-clock drift is advisory)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="relative tolerance for wall-clock metrics in --compare "
        "(default 0.25)",
    )
    bench.add_argument(
        "--verdict",
        type=Path,
        default=None,
        metavar="FILE",
        help="with --compare: also write the machine-readable verdict JSON",
    )
    bench.add_argument(
        "--trace-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="with --compare: on a deterministic regression, record a "
        "fresh 'trace query' run (seed 0) and diff it against this "
        "committed trace, naming the first divergent span",
    )

    obs = sub.add_parser(
        "obs",
        help="telemetry exposition: Prometheus text or a live terminal "
        "dashboard (see docs/OBSERVABILITY.md)",
    )
    obs_mode = obs.add_subparsers(dest="obs_command", required=True)
    expose = obs_mode.add_parser(
        "expose",
        help="render a metrics snapshot from the live registry or a "
        "JSONL trace/flight file",
    )
    expose.add_argument(
        "--text",
        action="store_true",
        help="emit the Prometheus text exposition format (default: the "
        "terminal dashboard)",
    )
    expose.add_argument(
        "--watch",
        action="store_true",
        help="redraw the dashboard every --interval seconds for --frames "
        "frames",
    )
    expose.add_argument(
        "--from",
        dest="source",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSONL file to read the metrics snapshot, quality records, "
        "and event tail from (default: this process's registry)",
    )
    expose.add_argument(
        "--check",
        action="store_true",
        help="with --text: re-parse the emitted text with the strict "
        "Prometheus parser and fail on any malformed line",
    )
    expose.add_argument(
        "--frames", type=int, default=5,
        help="dashboard frames to render with --watch (default 5)",
    )
    expose.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between --watch frames (default 2.0)",
    )
    expose.add_argument(
        "--top", type=int, default=8,
        help="rows per dashboard table (default 8)",
    )

    from ..serve.cli import add_serve_parser
    from ..testkit.cli import add_testkit_parser

    add_serve_parser(sub)
    add_testkit_parser(sub)
    return parser


def _run_compare(args, results: dict) -> int:
    """``bench --baseline FILE --compare``: diff current results vs FILE."""
    from ..obs.regress import DEFAULT_TOLERANCE, compare_benchmarks, render_diff

    try:
        baseline = json.loads(args.baseline.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench: cannot read baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2
    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    report = compare_benchmarks(baseline, results, tolerance=tolerance)
    print(render_diff(report))
    if args.verdict is not None:
        args.verdict.write_text(
            json.dumps(report.verdict(), indent=2, sort_keys=True) + "\n"
        )
    code = report.exit_code()
    if code != 0:
        from ..obs.flight import FLIGHT

        # Deterministic regression: snapshot the run's last moments when a
        # recorder is armed (no-op otherwise).
        FLIGHT.trip("regress-gate")
        if code == 1 and args.trace_baseline is not None:
            _trace_baseline_diff(args.trace_baseline)
    return code


def _trace_baseline_diff(baseline: Path) -> None:
    """Deterministic regression triage: diff a fresh query trace vs FILE.

    ``bench --compare --trace-baseline FILE`` lands here when the exact
    gate fails: a fresh seed-0 ``trace query`` workload is recorded
    in-process and aligned against the committed trace, so the failure
    message names the first divergent span instead of just a metric path.
    """
    from ..obs import diff_traces, render_trace_diff

    records = _load_trace(baseline)
    if records is None:
        return
    recorder, _ = _traced_query_workload(0)
    diff = diff_traces(records, recorder.spans)
    print()
    print("bench: deterministic regression -> trace diff vs committed baseline")
    print(render_trace_diff(diff, a=str(baseline), b="fresh trace query"),
          end="")


def _run_bench(args) -> int:
    from .micro import run_micro

    if args.n <= 0 or args.repeat <= 0:
        print("bench: --n and --repeat must be positive", file=sys.stderr)
        return 2
    if args.compare and args.baseline is None:
        print("bench: --compare requires --baseline FILE", file=sys.stderr)
        return 2
    if args.tolerance is not None and args.tolerance < 0:
        print("bench: --tolerance must be >= 0", file=sys.stderr)
        return 2
    results = run_micro(n=args.n, repeat=args.repeat, figures=args.figures)
    text = json.dumps(results, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
    if args.json:
        print(text)
    else:
        codec = results["codec"]
        sort = results["external_sort"]
        build = results["ace_build"]
        print(f"codec   pack {codec['pack_many_mb_per_s']:8.1f} MB/s   "
              f"unpack {codec['unpack_many_mb_per_s']:8.1f} MB/s   "
              f"column {codec['unpack_column_keys_per_s'] / 1e6:6.2f} Mkeys/s")
        print(f"sort    key_field {sort['key_field_records_per_s'] / 1e3:8.1f} krec/s   "
              f"callable {sort['callable_records_per_s'] / 1e3:8.1f} krec/s")
        print(f"build   ace {build['records_per_s'] / 1e3:8.1f} krec/s")
        query = results["ace_query"]
        spans = results["span_overhead"]
        print(f"query   ace {query['samples_per_s'] / 1e3:8.1f} ksamples/s "
              f"(first {query['first_k']})")
        line = (f"span    noop {spans['noop_ns_per_span']:6.1f} ns   "
                f"detail {spans['detail_ns_per_span']:6.1f} ns")
        if "timer_ns_per_span" in spans:
            line += f"   timer {spans['timer_ns_per_span']:6.1f} ns"
        print(line)
    if args.compare:
        return _run_compare(args, results)
    return 0


def _run_sanitize(seed: int) -> int:
    """Build a small SALE tree and run the runtime invariant checkers."""
    from ..acetree import AceBuildParams, build_ace_tree
    from ..analysis.invariants import check_sample, check_tree
    from ..core.errors import InvariantViolation
    from ..storage.cost import CostModel
    from ..storage.disk import SimulatedDisk
    from ..workloads import generate_sale_1d, queries_1d

    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
    sale = generate_sale_1d(disk, num_records=8000, seed=seed)
    tree = build_ace_tree(sale, AceBuildParams(key_fields=("day",), seed=seed))
    try:
        check_tree(tree)
        for query in queries_1d(0.025, 3, seed=seed):
            report = check_sample(tree, query, seed=seed)
            print(
                f"sanitize: query ok (population={report.population_size}, "
                f"chi2={report.chi2:.2f}, p={report.p_value:.3f}, "
                f"pages={report.pages_read})"
            )
    except InvariantViolation as exc:
        print(f"sanitize: INVARIANT VIOLATION: {exc}", file=sys.stderr)
        return 1
    print("sanitize: all invariants hold")
    return 0


def _export_trace(recorder, out: Path, top: int = 12, quality=None) -> int:
    """Write JSONL + Chrome files for a finished recorder, validate, report."""
    from ..obs import (
        COST,
        cost_record,
        exemplar_records,
        export_chrome_trace,
        export_jsonl,
        render_report,
        validate_jsonl,
    )

    records = quality.records() if quality is not None else None
    chrome = out.with_suffix(".chrome.json")
    snapshot = recorder.metrics.snapshot() if recorder.metrics is not None else None
    # The accountant was disarmed (not reset) at recorder uninstall, so
    # its ledger still holds this run's attribution + conservation check.
    cost = COST.snapshot()
    extra = exemplar_records(snapshot) + [cost_record(cost)]
    lines = export_jsonl(recorder.spans, out, quality=records,
                         metrics=snapshot, extra=extra)
    events = export_chrome_trace(recorder.spans, chrome, quality=records)
    errors = validate_jsonl(out)
    if errors:
        for error in errors:
            print(f"trace: INVALID {out}: {error}", file=sys.stderr)
        return 1
    print(f"trace: {lines} records -> {out} (valid JSONL), "
          f"{events} events -> {chrome}")
    print()
    print(render_report(recorder.spans, recorder.metrics, top=top,
                        quality=records, cost=cost))
    return 0


def _load_exposition_source(path: Path):
    """(snapshot, quality records, event tail) from one JSONL file.

    Works for ordinary traces (the appended ``"kind": "metrics"`` record
    supplies the snapshot) and for flight dumps (the event lines supply
    the tail); missing pieces degrade to empty.
    """
    from ..obs import load_metrics_snapshot, load_quality_jsonl

    snapshot = load_metrics_snapshot(path) or {}
    quality = load_quality_jsonl(path)
    events = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if isinstance(record, dict) and record.get("kind") in (
            "span", "metric", "fault", "quality"
        ):
            events.append(record)
    return snapshot, quality, events


def _run_obs(args) -> int:
    """``python -m repro obs expose``: Prometheus text or terminal dashboard."""
    from ..obs import (
        FLIGHT,
        METRICS,
        evaluate_slos,
        parse_prometheus_text,
        prometheus_text,
        render_dashboard,
    )

    def load():
        if args.source is not None:
            return _load_exposition_source(args.source)
        return METRICS.snapshot(), [], FLIGHT.snapshot()

    try:
        snapshot, quality, events = load()
    except (OSError, json.JSONDecodeError) as exc:
        print(f"obs expose: cannot read {args.source}: {exc}", file=sys.stderr)
        return 2

    if args.text:
        text = prometheus_text(snapshot)
        if args.check:
            try:
                parse_prometheus_text(text)
            except ValueError as exc:
                print(f"obs expose: emitted text failed to parse: {exc}",
                      file=sys.stderr)
                return 1
        sys.stdout.write(text)
        return 0

    frames = max(1, args.frames) if args.watch else 1
    for frame in range(frames):
        if frame:
            time.sleep(max(0.0, args.interval))
            try:
                snapshot, quality, events = load()
            except (OSError, json.JSONDecodeError) as exc:
                print(f"obs expose: cannot read {args.source}: {exc}",
                      file=sys.stderr)
                return 2
            # ANSI home+clear between frames: a stable in-place redraw.
            sys.stdout.write("\x1b[H\x1b[2J")
        statuses = evaluate_slos(quality=quality, metrics=snapshot)
        sys.stdout.write(render_dashboard(
            snapshot, slo_statuses=statuses, flight_events=events,
            top=args.top,
        ))
        sys.stdout.flush()
    return 0


def _run_validate(paths) -> int:
    """``python -m repro trace validate FILE...``: schema-check JSONL files."""
    from ..obs import validate_jsonl

    if not paths:
        print("trace validate: need at least one JSONL file", file=sys.stderr)
        return 2
    failed = 0
    for path in paths:
        try:
            errors = validate_jsonl(path)
        except OSError as exc:
            print(f"trace: INVALID {path}: {exc}", file=sys.stderr)
            failed += 1
            continue
        if errors:
            failed += 1
            for error in errors:
                print(f"trace: INVALID {path}: {error}", file=sys.stderr)
        else:
            print(f"trace: {path} valid")
    return 1 if failed else 0


def _load_trace(path: Path):
    """Validated span records from one JSONL trace; None after printing errors."""
    from ..obs import load_jsonl, validate_jsonl

    try:
        errors = validate_jsonl(path)
    except OSError as exc:
        print(f"trace: INVALID {path}: {exc}", file=sys.stderr)
        return None
    if errors:
        for error in errors:
            print(f"trace: INVALID {path}: {error}", file=sys.stderr)
        return None
    return load_jsonl(path)


def _run_trace_diff(args) -> int:
    """``trace diff A.jsonl B.jsonl``: exit 0 identical, 1 divergent, 2 bad."""
    from ..obs import diff_traces, diff_verdict_record, render_trace_diff

    if len(args.names) != 2:
        print("trace diff: need exactly two JSONL trace files",
              file=sys.stderr)
        return 2
    path_a, path_b = (Path(name) for name in args.names)
    records_a = _load_trace(path_a)
    records_b = _load_trace(path_b)
    if records_a is None or records_b is None:
        return 2
    diff = diff_traces(records_a, records_b)
    print(render_trace_diff(diff, a=str(path_a), b=str(path_b)), end="")
    if args.verdict is not None:
        args.verdict.write_text(json.dumps(
            diff_verdict_record(diff, a=path_a, b=path_b),
            indent=2, sort_keys=True,
        ) + "\n")
    return 0 if diff.identical else 1


def _run_trace_analysis(args) -> int:
    """``trace critical-path|flame|report FILE`` over one existing trace."""
    if len(args.names) != 1:
        print(f"trace {args.operation}: need exactly one JSONL trace file",
              file=sys.stderr)
        return 2
    path = Path(args.names[0])
    records = _load_trace(path)
    if records is None:
        return 2
    if args.operation == "critical-path":
        from ..obs import critical_path, render_critical_path

        rows = critical_path(records, clock=args.clock)
        print(render_critical_path(rows, clock=args.clock), end="")
        return 0
    if args.operation == "flame":
        from ..obs import flamegraph_lines, render_flamegraph_summary

        lines = flamegraph_lines(records, clock=args.clock)
        for line in lines:
            print(line)
        print(render_flamegraph_summary(lines, clock=args.clock),
              file=sys.stderr)
        return 0
    # 'report': re-render the full text report from the file's records.
    from ..obs import (
        load_cost_record,
        load_metrics_snapshot,
        load_quality_jsonl,
        render_report,
    )

    print(render_report(
        records, load_metrics_snapshot(path), top=args.top,
        quality=load_quality_jsonl(path), cost=load_cost_record(path),
    ))
    return 0


def _traced_query_workload(seed: int, sabotage: str | None = None):
    """The standard traced query workload; returns ``(recorder, quality)``.

    Shared by ``trace query`` and bench's ``--trace-baseline`` auto-diff
    so both produce path-alignable traces.  ``sabotage="combine-drop"``
    swaps the sampler for the testkit's deliberately broken Shuttle,
    producing a run that a diff against a clean same-seed trace must
    flag.
    """
    from ..acetree import AceBuildParams, build_ace_tree
    from ..obs import CONTEXT, METRICS, QualitySession, TraceRecorder
    from ..storage.cost import CostModel
    from ..storage.disk import SimulatedDisk
    from ..workloads import generate_sale_1d, queries_1d

    METRICS.reset()
    recorder = TraceRecorder(metrics=METRICS)
    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
    sale = generate_sale_1d(disk, num_records=8000, seed=seed)
    params = AceBuildParams(key_fields=("day",), seed=seed)
    # Build untraced so the trace isolates the query path — every page
    # read then happens under a stab/flush span and the report's
    # leaf-span attribution covers (essentially) all of them.
    tree = build_ace_tree(sale, params)
    disk.reset_clock()
    quality = QualitySession(metrics=METRICS)
    key_of = tree.schema.key_getter("day")

    def make_stream(query, stream_seed):
        if sabotage == "combine-drop":
            from ..testkit.harness import BrokenCombineStream

            return BrokenCombineStream(tree, query, seed=stream_seed)
        return tree.sample(query, seed=stream_seed)

    with recorder:
        for query_index, query in enumerate(queries_1d(0.025, 3, seed=seed)):
            side = query.sides[0]
            # Alternate a synthetic tenant per query: the exported trace
            # then carries genuine multi-tenant labeled series for the
            # exposition surface and the per-label report breakdown.
            with CONTEXT.push(tenant=f"t{query_index % 2}",
                              query=f"q{query_index}"):
                monitor = quality.monitor(
                    f"query{query_index}",
                    key_of=key_of,
                    lo=side.lo,
                    hi=side.hi,
                    group="ACE Tree",
                    population=tree.estimate_count(query),
                )
                start = disk.clock
                stream = make_stream(query, seed + query_index)
                # Same break condition as SampleStream.take(2000) — the wrap
                # generator only observes, so the simulated clock is untouched.
                taken = 0
                for batch in monitor.wrap(stream, start_sim=start):
                    taken += len(batch.records)
                    if taken >= 2000:
                        break
    quality.finalize()
    return recorder, quality


def _run_trace(args) -> int:
    """``python -m repro trace <build|query|figure|validate|...>``."""
    from ..acetree import AceBuildParams, build_ace_tree
    from ..obs import METRICS, TraceRecorder
    from ..storage.cost import CostModel
    from ..storage.disk import SimulatedDisk
    from ..workloads import generate_sale_1d

    if args.operation == "validate":
        return _run_validate(args.names)
    if args.operation == "diff":
        return _run_trace_diff(args)
    if args.operation in ("critical-path", "flame", "report"):
        return _run_trace_analysis(args)
    if args.operation != "figure" and args.names:
        print("trace: figure names only apply to the 'figure' operation",
              file=sys.stderr)
        return 2
    if args.sabotage is not None and args.operation != "query":
        print("trace: --sabotage only applies to the 'query' operation",
              file=sys.stderr)
        return 2

    if args.operation == "figure":
        from ..obs import QualitySession
        from .figures import clear_context_cache

        names = args.names or ["fig12"]
        unknown = [name for name in names if name not in FIGURES]
        if unknown:
            print(f"unknown figure(s): {', '.join(unknown)}; "
                  f"known: {', '.join(FIGURES)}", file=sys.stderr)
            return 2
        METRICS.reset()
        recorder = TraceRecorder(metrics=METRICS)
        quality = QualitySession(metrics=METRICS)
        clear_context_cache()  # so the context build is traced too
        try:
            with recorder:
                for name in names:
                    run_figure(name, scale=args.scale, seed=args.seed,
                               quality=quality)
        finally:
            clear_context_cache()
        quality.finalize()
        return _export_trace(recorder, args.out, top=args.top, quality=quality)

    if args.operation == "build":
        METRICS.reset()
        recorder = TraceRecorder(metrics=METRICS)
        disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
        sale = generate_sale_1d(disk, num_records=8000, seed=args.seed)
        with recorder:
            build_ace_tree(sale, AceBuildParams(key_fields=("day",),
                                                seed=args.seed))
        return _export_trace(recorder, args.out, top=args.top)

    recorder, quality = _traced_query_workload(args.seed,
                                               sabotage=args.sabotage)
    return _export_trace(recorder, args.out, top=args.top, quality=quality)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "bench":
        return _run_bench(args)

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "obs":
        return _run_obs(args)

    if args.command == "serve":
        from ..serve.cli import run_serve

        return run_serve(args)

    if args.command == "testkit":
        from ..testkit.cli import run_testkit

        return run_testkit(args)

    if args.command == "lint":
        from ..analysis.cli import run_lint

        return run_lint(
            args.paths,
            as_json=args.json,
            select=args.select,
            program=args.program,
            baseline=args.baseline,
            update_baseline=args.update_baseline,
            no_baseline=args.no_baseline,
            sarif=args.sarif,
            fix=args.fix,
        )

    if args.command == "list":
        for name, spec in FIGURES.items():
            print(f"{name:7s}  {spec.title}")
            print(f"         paper shape: {spec.expected_shape}")
        return 0

    names = args.names or list(FIGURES)
    unknown = [name for name in names if name not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; "
              f"known: {', '.join(FIGURES)}", file=sys.stderr)
        return 2
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    if args.sanitize:
        status = _run_sanitize(args.seed)
        if status != 0:
            return status

    recorder = None
    quality = None
    if args.trace is not None:
        from ..obs import METRICS, QualitySession, TraceRecorder

        METRICS.reset()
        recorder = TraceRecorder(metrics=METRICS)
        recorder.install()
        quality = QualitySession(metrics=METRICS)
    try:
        for name in names:
            started = time.time()
            result = run_figure(
                name, scale=args.scale, num_queries=args.queries,
                seed=args.seed, quality=quality,
            )
            text = format_figure(result)
            print(text)
            print(f"[{name}: {time.time() - started:.1f}s wall]")
            print()
            if args.out is not None:
                (args.out / f"{name}.txt").write_text(text + "\n")
    finally:
        if recorder is not None:
            recorder.uninstall()
    if recorder is not None:
        if quality is not None:
            quality.finalize()
        return _export_trace(recorder, args.trace, quality=quality)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
