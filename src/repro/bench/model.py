"""Closed-form performance models of the three retrieval methods.

These formulas predict the evaluation curves from first principles — the
cost model, the relation geometry, and each algorithm's access pattern —
without running anything.  They serve two purposes:

* they *explain* the figures (why the permuted file is linear, why the
  B+-Tree hockey-sticks when its working set fits in cache, why the ACE
  Tree's early rate is leaf-read-bound), and
* they *validate the simulator*: the test suite checks that measured
  curves track these predictions, so a regression in either the cost
  accounting or an algorithm shows up as model disagreement.

All models are for the 1-D experiment of the paper (uniform keys, one
range predicate of a given selectivity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..storage.cost import CostModel
from ..acetree.analysis import expected_section_size, lemma1_lower_bound

__all__ = ["ExperimentModel"]


@dataclass(frozen=True)
class ExperimentModel:
    """Closed-form predictions for one relation + cost model + query.

    Attributes:
        num_records: relation cardinality.
        record_size: bytes per record.
        page_size: disk page size in bytes.
        cost: the simulated disk's cost model.
        selectivity: fraction of records matched by the range predicate.
        height: ACE Tree height (sections per leaf).
        arity: ACE Tree fan-out.
    """

    num_records: int
    record_size: int
    page_size: int
    cost: CostModel
    selectivity: float
    height: int
    arity: int = 2

    # -- shared geometry -----------------------------------------------------

    @property
    def records_per_page(self) -> int:
        return (self.page_size - 4) // self.record_size

    @property
    def relation_pages(self) -> int:
        return math.ceil(self.num_records / self.records_per_page)

    @property
    def scan_seconds(self) -> float:
        """Time for one sequential scan of the relation (the x-axis unit)."""
        return self.cost.seek_time + self.relation_pages * self.cost.transfer_time(
            self.page_size
        )

    @property
    def matching_records(self) -> int:
        return round(self.selectivity * self.num_records)

    # -- randomly permuted file ------------------------------------------------

    def permuted_records_at(self, elapsed: float) -> float:
        """Sequential scan: useful records = selectivity x scanned records.

        The scan also pays the per-record decode CPU, so its effective
        throughput is slightly below raw bandwidth.
        """
        page_time = (
            self.cost.transfer_time(self.page_size)
            + self.records_per_page * self.cost.cpu_per_record
        )
        pages_scanned = min(
            max(elapsed - self.cost.seek_time, 0.0) / page_time,
            self.relation_pages,
        )
        return self.selectivity * pages_scanned * self.records_per_page

    def permuted_completion_seconds(self) -> float:
        """When the scan (and hence the full matching set) finishes."""
        page_time = (
            self.cost.transfer_time(self.page_size)
            + self.records_per_page * self.cost.cpu_per_record
        )
        return self.cost.seek_time + self.relation_pages * page_time

    # -- ranked B+-Tree -----------------------------------------------------------

    @property
    def matching_pages(self) -> int:
        """Leaf pages covered by the matching rank interval."""
        return max(1, math.ceil(self.matching_records / self.records_per_page))

    def bplus_draw_cpu(self, node_levels: int = 2) -> float:
        """CPU per unique ranked draw once pages are resident:
        ``node_levels`` internal-node touches plus the leaf touch."""
        return (node_levels + 1) * self.cost.cpu_per_page

    def bplus_records_at(self, elapsed: float, node_levels: int = 2) -> float:
        """Antoshenkov sampling: integrate draw costs against cache state.

        After ``u`` unique draws over ``P`` matching pages, the expected
        fraction of pages resident is ``1 - (1 - 1/P)^u``, so the expected
        cost of the next draw is ``miss_prob * random_io + draw_cpu``.
        Duplicate rank draws are ignored here (they only matter near
        exhaustion).  Solved by stepping draws until the budget is spent.
        """
        pages = self.matching_pages
        total = self.matching_records
        io_time = self.cost.random_io_time(self.page_size)
        decode = self.records_per_page * self.cost.cpu_per_record
        draw_cpu = self.bplus_draw_cpu(node_levels)
        spent = 0.0
        unique = 0
        # Step in small batches for speed on large inputs.
        batch = max(1, total // 2000)
        while spent < elapsed and unique < total:
            miss_prob = (1 - 1 / pages) ** unique
            per_draw = miss_prob * (io_time + decode) + draw_cpu
            spent += per_draw * batch
            unique += batch
        return float(min(unique, total))

    # -- ACE Tree -------------------------------------------------------------------

    @property
    def mean_section_size(self) -> float:
        return expected_section_size(self.num_records, self.height, self.arity)

    @property
    def num_leaves(self) -> int:
        return self.arity ** (self.height - 1)

    @property
    def leaf_pages(self) -> float:
        """Expected pages spanned by one (variable-size) leaf."""
        leaf_bytes = self.num_records / self.num_leaves * self.record_size
        return max(1.0, leaf_bytes / self.page_size)

    def leaf_read_seconds(self) -> float:
        """One leaf fetch: a seek, the span transfer, and record decode."""
        leaf_records = self.num_records / self.num_leaves
        return (
            self.cost.seek_time
            + self.leaf_pages * self.cost.transfer_time(self.page_size)
            + leaf_records * self.cost.cpu_per_record
        )

    def ace_leaves_read_at(self, elapsed: float) -> int:
        """Leaf fetches completed within the budget."""
        return min(int(elapsed / self.leaf_read_seconds()), self.num_leaves)

    def ace_lower_bound_at(self, elapsed: float) -> float:
        """Lemma 1's lower bound on expected samples, as a function of time."""
        m = self.ace_leaves_read_at(elapsed)
        return min(lemma1_lower_bound(m, self.mean_section_size),
                   float(self.matching_records))

    def ace_upper_bound_at(self, elapsed: float) -> float:
        """Upper bound: every matching record of every read leaf emitted.

        While the traversal is still inside the query's span, each leaf
        holds deep sections that are subsets of the query plus shallow
        sections partially overlapping it — bounded above by the whole
        leaf's expected matching mass under the in-span assumption:
        ``mu * (h - s_Q + 1) + mu * selectivity * (arity^(s_Q-1)-1)/(arity-1)``
        where ``s_Q`` is the shallowest level whose node boxes fit inside
        the query.
        """
        m = self.ace_leaves_read_at(elapsed)
        if self.selectivity <= 0:
            return 0.0
        s_q = max(
            1.0,
            1 + math.log(1 / self.selectivity, self.arity),
        )
        deep_sections = max(self.height - s_q + 1, 0.0)
        shallow_mass = (
            self.selectivity
            * (self.arity ** (min(s_q, self.height) - 1) - 1)
            / (self.arity - 1)
        )
        per_leaf = self.mean_section_size * (deep_sections + shallow_mass)
        return float(min(m * per_leaf, self.matching_records))

    def ace_completion_seconds(self) -> float:
        """The full traversal: every leaf is read exactly once."""
        return self.num_leaves * self.leaf_read_seconds()
