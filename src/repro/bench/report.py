"""ASCII reporting of reproduced figures.

Each benchmark prints the series the paper plots: percent of the relation
returned versus percent of the scan time, one column per retrieval method,
plus the buffered-record series for Figure 15.  The same text lands in
EXPERIMENTS.md.
"""

from __future__ import annotations

from .figures import ACE, FigureResult

__all__ = ["format_figure", "format_summary"]


def format_figure(result: FigureResult) -> str:
    """Render one figure's averaged series as an ASCII table."""
    spec = result.spec
    names = list(result.curves)
    lines = [
        f"{spec.figure}: {spec.title}  "
        f"[scale={result.scale.name}, n={result.relation_records}, "
        f"{result.curves[names[0]].num_queries} queries]",
        f"paper shape: {spec.expected_shape}",
    ]
    header = f"{'% scan time':>12} | " + " | ".join(f"{name:>24}" for name in names)
    lines.append(header)
    lines.append("-" * len(header))
    grid = result.curves[names[0]].grid
    for i, t in enumerate(grid):
        pct_time = 100.0 * t / result.scan_seconds
        cells = []
        for name in names:
            pct = 100.0 * result.curves[name].mean_counts[i] / result.relation_records
            cells.append(f"{pct:>23.4f}%")
        lines.append(f"{pct_time:>11.2f}% | " + " | ".join(cells))
    if spec.buffer_metric and ACE in result.curves:
        lines.append("")
        lines.append("ACE Tree buffered records (fraction of relation):")
        lines.append(
            f"{'% scan time':>12} | {'mean':>12} | {'min':>12} | {'max':>12}"
        )
        curve = result.curves[ACE]
        for i, t in enumerate(grid):
            pct_time = 100.0 * t / result.scan_seconds
            mean = curve.mean_buffered[i] / result.relation_records
            low = curve.min_buffered[i] / result.relation_records
            high = curve.max_buffered[i] / result.relation_records
            lines.append(
                f"{pct_time:>11.2f}% | {mean:>12.6f} | {low:>12.6f} | {high:>12.6f}"
            )
    lines.append("")
    lines.append(format_summary(result))
    return "\n".join(lines)


def format_summary(result: FigureResult) -> str:
    """One-paragraph outcome summary: leaders and completion times."""
    grid = next(iter(result.curves.values())).grid
    end_pct = 100.0 * grid[-1] / result.scan_seconds
    mid_pct = end_pct / 2
    parts = [
        f"leader at {mid_pct:.1f}% of scan: {result.leader_at(mid_pct)};",
        f"leader at {end_pct:.1f}% of scan: {result.leader_at(end_pct)}.",
    ]
    completions = []
    for name in result.curves:
        seconds = result.completion_time(name)
        if seconds is not None:
            completions.append(
                f"{name} completed at {100.0 * seconds / result.scan_seconds:.0f}% "
                "of scan time"
            )
    if completions:
        parts.append(" ".join(completions) + ".")
    return " ".join(parts)
