"""Deprecated compatibility shim: the profiler lives in :mod:`repro.core.profile`.

The wall-clock registry is reported into from every layer (storage,
acetree, bench), so it belongs at the bottom of the package layering —
``storage`` importing ``bench`` was a LAY001 violation.  Importing
``repro.bench.profile`` still works and re-exports the same process-wide
singleton, but emits a :class:`DeprecationWarning`; import
``repro.core.profile`` directly instead.
"""

import warnings

from ..core.profile import PROFILE, Profiler

__all__ = ["Profiler", "PROFILE"]

warnings.warn(
    "repro.bench.profile is deprecated; import PROFILE/Profiler from "
    "repro.core.profile instead",
    DeprecationWarning,
    stacklevel=2,
)
