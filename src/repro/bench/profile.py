"""Compatibility shim: the profiler moved to :mod:`repro.core.profile`.

The wall-clock registry is reported into from every layer (storage,
acetree, bench), so it belongs at the bottom of the package layering —
``storage`` importing ``bench`` was a LAY001 violation.  Importing
``repro.bench.profile`` keeps working for existing callers and re-exports
the same process-wide singleton.
"""

from ..core.profile import PROFILE, Profiler

__all__ = ["Profiler", "PROFILE"]
