"""Benchmark harness: sampling races, per-figure experiments, reporting.

Submodules are imported lazily (PEP 562) so that importing ``repro.bench``
for a single symbol does not drag in the figure harness (which itself
imports the whole library).  ``PROFILE``/``Profiler`` are re-exported from
their real home, :mod:`repro.core.profile`.
"""

from typing import TYPE_CHECKING

_FIGURE_EXPORTS = {
    "ACE",
    "BPLUS",
    "FIGURES",
    "PERMUTED",
    "RTREE",
    "SCALES",
    "ExperimentContext",
    "FigureResult",
    "FigureSpec",
    "Scale",
    "clear_context_cache",
    "get_context",
    "run_figure",
}
_MODEL_EXPORTS = {"ExperimentModel"}
_RACE_EXPORTS = {"AveragedCurve", "RaceCurve", "average_curves", "make_grid", "run_race"}
_REPORT_EXPORTS = {"format_figure", "format_summary"}
_PROFILE_EXPORTS = {"Profiler", "PROFILE"}

__all__ = sorted(
    _FIGURE_EXPORTS
    | _MODEL_EXPORTS
    | _RACE_EXPORTS
    | _REPORT_EXPORTS
    | _PROFILE_EXPORTS
)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .figures import (  # noqa: F401
        ACE,
        BPLUS,
        FIGURES,
        PERMUTED,
        RTREE,
        SCALES,
        ExperimentContext,
        FigureResult,
        FigureSpec,
        Scale,
        clear_context_cache,
        get_context,
        run_figure,
    )
    from ..core.profile import PROFILE, Profiler  # noqa: F401
    from .model import ExperimentModel  # noqa: F401
    from .race import (  # noqa: F401
        AveragedCurve,
        RaceCurve,
        average_curves,
        make_grid,
        run_race,
    )
    from .report import format_figure, format_summary  # noqa: F401


def __getattr__(name: str):
    if name in _FIGURE_EXPORTS:
        from . import figures as module
    elif name in _MODEL_EXPORTS:
        from . import model as module
    elif name in _RACE_EXPORTS:
        from . import race as module
    elif name in _REPORT_EXPORTS:
        from . import report as module
    elif name in _PROFILE_EXPORTS:
        from ..core import profile as module
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value
