"""Benchmark harness: sampling races, per-figure experiments, reporting."""

from .figures import (
    ACE,
    BPLUS,
    FIGURES,
    PERMUTED,
    RTREE,
    SCALES,
    ExperimentContext,
    FigureResult,
    FigureSpec,
    Scale,
    clear_context_cache,
    get_context,
    run_figure,
)
from .model import ExperimentModel
from .race import AveragedCurve, RaceCurve, average_curves, make_grid, run_race
from .report import format_figure, format_summary

__all__ = [
    "ACE",
    "AveragedCurve",
    "BPLUS",
    "ExperimentContext",
    "ExperimentModel",
    "FIGURES",
    "FigureResult",
    "FigureSpec",
    "PERMUTED",
    "RTREE",
    "RaceCurve",
    "SCALES",
    "Scale",
    "average_curves",
    "clear_context_cache",
    "format_figure",
    "format_summary",
    "get_context",
    "make_grid",
    "run_figure",
    "run_race",
]
