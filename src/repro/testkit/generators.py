"""Seeded scenario generators and shared property-test strategies.

Two audiences share this module:

* the **fuzz harness** (:mod:`repro.testkit.harness`) draws whole
  :class:`Scenario`\\ s — dataset shape, tree shape, queries, fault rates —
  from a single integer seed, so a failing scenario serializes to a few
  numbers and replays exactly;
* the **property tests** under ``tests/property/`` import the Hypothesis
  strategies and builders from here instead of re-declaring them per file,
  so dataset shapes (and their shrinking behaviour) stay consistent across
  suites.

Hypothesis is a test-only dependency, so everything that touches it is
imported lazily; importing this module (and the rest of ``repro.testkit``)
works without Hypothesis installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..acetree import AceBuildParams, build_ace_tree
from ..core.records import Field, Schema
from ..core.rng import derive_random
from ..storage.cost import CostModel
from ..storage.disk import SimulatedDisk
from ..storage.heapfile import HeapFile

__all__ = [
    "DISTRIBUTIONS",
    "KV_SCHEMA",
    "Scenario",
    "build_ace",
    "build_bplus",
    "generate_scenario",
    "int_ranges",
    "key_lists",
    "kv_records",
    "make_records",
    "sql_identifiers",
    "sql_numbers",
]

#: The two-column schema every single-key suite builds on.
KV_SCHEMA = Schema([Field("k", "i8"), Field("v", "f8")])  # repro: shared[confined] schema struct memos are engine-thread idempotent caches

#: Key distributions the scenario generator can draw.
DISTRIBUTIONS: tuple[str, ...] = ("uniform", "skew", "dups", "sorted")


# -- fuzz-harness scenarios ------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One fully-determined fuzz case: dataset, tree shape, queries, faults.

    Everything downstream (records, fault draws, sampler seeds) derives
    from :attr:`seed`, so the scenario serializes to this dataclass alone.
    """

    seed: int
    n: int
    key_range: int
    distribution: str
    height: int
    arity: int
    page_size: int
    queries: tuple[tuple[int, int], ...]
    rates: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed, "n": self.n, "key_range": self.key_range,
            "distribution": self.distribution, "height": self.height,
            "arity": self.arity, "page_size": self.page_size,
            "queries": [list(q) for q in self.queries],
            "rates": dict(self.rates),
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "Scenario":
        return cls(
            seed=obj["seed"], n=obj["n"], key_range=obj["key_range"],
            distribution=obj["distribution"], height=obj["height"],
            arity=obj["arity"], page_size=obj["page_size"],
            queries=tuple((q[0], q[1]) for q in obj["queries"]),
            rates=dict(obj.get("rates", {})),
        )


def generate_scenario(seed: int, with_faults: bool = True) -> Scenario:
    """Draw one scenario; the same seed always yields the same scenario."""
    rng = derive_random(seed, "testkit-scenario")
    n = rng.randrange(40, 400)
    key_range = rng.choice((1_000, 10_000, 100_000))
    distribution = rng.choice(DISTRIBUTIONS)
    height = rng.randrange(2, 6)
    arity = rng.choice((2, 2, 2, 3))
    page_size = rng.choice((512, 1024, 2048))
    queries = []
    for _ in range(rng.randrange(1, 4)):
        a = rng.randrange(-key_range // 10, key_range + key_range // 10)
        b = rng.randrange(-key_range // 10, key_range + key_range // 10)
        queries.append((min(a, b), max(a, b)))
    rates: dict[str, float] = {}
    if with_faults:
        rates = {
            "read.transient": rng.choice((0.0, 0.005, 0.02)),
            "read.corrupt": rng.choice((0.0, 0.0, 0.002)),
            "read.latency": rng.choice((0.0, 0.01)),
            "write.torn": rng.choice((0.0, 0.0, 0.002)),
        }
        rates = {k: v for k, v in rates.items() if v > 0.0}
    return Scenario(
        seed=seed, n=n, key_range=key_range, distribution=distribution,
        height=height, arity=arity, page_size=page_size,
        queries=tuple(queries), rates=rates,
    )


def make_records(scenario: Scenario) -> list[tuple]:
    """The scenario's dataset: ``(key, unique_id)`` records.

    The float second column is a unique identifier, so duplicate keys stay
    distinguishable and multiset comparisons are exact.
    """
    rng = derive_random(scenario.seed, "testkit-records")
    n, key_range = scenario.n, scenario.key_range
    if scenario.distribution == "uniform":
        keys = [rng.randrange(key_range) for _ in range(n)]
    elif scenario.distribution == "skew":
        # Cubed uniform: mass piles up near zero, stressing uneven splits.
        keys = [int(key_range * rng.random() ** 3) for _ in range(n)]
    elif scenario.distribution == "dups":
        pool = [rng.randrange(key_range) for _ in range(max(2, n // 20))]
        keys = [rng.choice(pool) for _ in range(n)]
    elif scenario.distribution == "sorted":
        keys = sorted(rng.randrange(key_range) for _ in range(n))
    else:
        raise ValueError(f"unknown distribution {scenario.distribution!r}")
    return [(key, float(i)) for i, key in enumerate(keys)]


# -- shared builders (fuzz harness + property tests) -----------------------


def kv_records(keys) -> list[tuple]:
    """``(key, unique_id)`` records from a key list."""
    return [(key, float(i)) for i, key in enumerate(keys)]


def build_ace(keys, height, seed, page_size=1024, arity=2):
    """Records plus a freshly built ACE Tree over them, on its own disk."""
    disk = SimulatedDisk(page_size=page_size, cost=CostModel.scaled(page_size))
    records = kv_records(keys)
    heap = HeapFile.bulk_load(disk, KV_SCHEMA, records)
    tree = build_ace_tree(
        heap,
        AceBuildParams(key_fields=("k",), height=height, arity=arity, seed=seed),
    )
    return records, tree


def build_bplus(keys, page_size=512, leaf_cache_pages=16):
    """Records plus a ranked B+-Tree over them, on its own disk."""
    from ..baselines import build_bplus_tree

    disk = SimulatedDisk(page_size=page_size, cost=CostModel.scaled(page_size))
    records = kv_records(keys)
    heap = HeapFile.bulk_load(disk, KV_SCHEMA, records)
    return records, build_bplus_tree(heap, "k", leaf_cache_pages=leaf_cache_pages)


# -- Hypothesis strategies (lazy: test-only dependency) --------------------


def _strategies():
    try:
        from hypothesis import strategies as st
    except ImportError as exc:  # pragma: no cover - hypothesis is installed in CI
        raise RuntimeError(
            "repro.testkit.generators strategy helpers require hypothesis"
        ) from exc
    return st


def key_lists(min_value=0, max_value=10_000, min_size=1, max_size=400):
    """Lists of integer keys — the canonical dataset strategy."""
    st = _strategies()
    return st.lists(
        st.integers(min_value=min_value, max_value=max_value),
        min_size=min_size, max_size=max_size,
    )


def int_ranges(min_value=-100, max_value=11_000):
    """Normalized ``(lo, hi)`` query bounds, slightly wider than the keys."""
    st = _strategies()
    return st.tuples(
        st.integers(min_value=min_value, max_value=max_value),
        st.integers(min_value=min_value, max_value=max_value),
    ).map(lambda pair: (min(pair), max(pair)))


#: Words the identifier strategy must avoid so generated DDL stays parseable.
_SQL_KEYWORDS = frozenset({
    "and", "between", "sample", "select", "from", "where",
    "create", "materialized", "view", "as", "index", "on",
})


def sql_identifiers():
    """Identifiers safe to splice into generated view DDL."""
    st = _strategies()
    return st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True).filter(
        lambda s: s.lower() not in _SQL_KEYWORDS
    )


def sql_numbers():
    """Finite numeric literals that round-trip through the DDL parser."""
    st = _strategies()
    return st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ).map(lambda v: round(v, 4))
