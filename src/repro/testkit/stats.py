"""The one shared tolerance helper for statistical test assertions.

Every fixed-seed statistical assertion in the test suites — section-count
uniformity, prefix quartile balance, differential-oracle prefix checks —
routes through this module, so the acceptance threshold is a single
constant (:data:`DEFAULT_P_FLOOR`) instead of magic numbers scattered
across files.  The philosophy matches the existing suites: thresholds are
generous enough that a correct implementation with a fixed seed never
trips them, while a biased one fails by orders of magnitude.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

__all__ = [
    "DEFAULT_P_FLOOR",
    "ChiSquareResult",
    "assert_uniform",
    "chi_square",
    "ks_uniform",
    "prefix_vs_population",
]

#: Reject uniformity only below this p-value.  With seeded randomness a
#: correct sampler passes deterministically; a biased one lands many
#: orders of magnitude below.
DEFAULT_P_FLOOR = 1e-3


@dataclass(frozen=True)
class ChiSquareResult:
    """A chi-square goodness-of-fit verdict."""

    statistic: float
    df: int
    p_value: float
    observed: tuple[float, ...]
    expected: tuple[float, ...]

    def ok(self, p_floor: float = DEFAULT_P_FLOOR) -> bool:
        return self.p_value > p_floor

    def describe(self) -> str:
        obs = ", ".join(f"{v:g}" for v in self.observed)
        exp = ", ".join(f"{v:.1f}" for v in self.expected)
        return (f"chi2={self.statistic:.2f} df={self.df} "
                f"p={self.p_value:.3e} observed=[{obs}] expected=[{exp}]")


def chi_square(observed, expected=None) -> ChiSquareResult:
    """Chi-square goodness of fit of ``observed`` counts against ``expected``.

    ``expected`` may be a per-cell sequence, a scalar, or None (uniform:
    every cell expects ``total / cells``).  Cells with zero expectation
    must also observe zero; any mass there makes the fit infinitely bad
    (p-value 0).
    """
    from scipy import stats as scipy_stats

    obs = [float(v) for v in observed]
    if not obs:
        raise ValueError("chi_square needs at least one cell")
    total = sum(obs)
    if expected is None:
        exp = [total / len(obs)] * len(obs)
    elif isinstance(expected, (int, float)):
        exp = [float(expected)] * len(obs)
    else:
        exp = [float(v) for v in expected]
    if len(exp) != len(obs):
        raise ValueError(f"{len(obs)} observed cells vs {len(exp)} expected")
    statistic = 0.0
    impossible = False
    for o, e in zip(obs, exp):
        if e <= 0.0:
            impossible = impossible or o > 0.0
            continue
        statistic += (o - e) ** 2 / e
    df = max(1, len(obs) - 1)
    if impossible:
        p_value = 0.0
        statistic = float("inf")
    else:
        p_value = float(1 - scipy_stats.chi2.cdf(statistic, df=df))
    return ChiSquareResult(statistic, df, p_value, tuple(obs), tuple(exp))


def assert_uniform(observed, expected=None, p_floor: float = DEFAULT_P_FLOOR,
                   label: str = "counts") -> ChiSquareResult:
    """Assert ``observed`` counts fit ``expected`` at the shared threshold."""
    result = chi_square(observed, expected)
    assert result.ok(p_floor), f"{label} biased: {result.describe()}"
    return result


def ks_uniform(values, lo: float, hi: float):
    """Kolmogorov–Smirnov p-value of ``values`` against Uniform(lo, hi)."""
    from scipy import stats as scipy_stats

    if hi <= lo:
        raise ValueError(f"degenerate interval [{lo}, {hi}]")
    scaled = [(v - lo) / (hi - lo) for v in values]
    return float(scipy_stats.kstest(scaled, "uniform").pvalue)


def prefix_vs_population(prefix_keys, population_keys,
                         bins: int = 8) -> ChiSquareResult | None:
    """Is a sample-prefix's key distribution consistent with the population?

    Bins the population into (approximately) equal-count cells by key and
    chi-square-tests the prefix's cell counts against the population's
    cell proportions.  This is the oracle's statistical-equivalence check:
    a uniform sampler's prefix passes; one biased toward any key region
    (e.g. a broken Combine dropping an interval) fails by orders of
    magnitude.

    Returns ``None`` when the prefix or population is too small for the
    test to have meaningful power (fewer than ~5 expected per cell after
    adapting the bin count), rather than issuing an underpowered verdict.
    """
    population = sorted(population_keys)
    prefix = list(prefix_keys)
    n_pop, n_pre = len(population), len(prefix)
    if n_pop < 10 or n_pre < 20:
        return None
    if population[0] == population[-1]:
        return None  # all keys identical: any prefix is trivially uniform
    bins = max(2, min(bins, n_pre // 5))
    # Equal-count edges; duplicates collapse under heavy-dup key sets.
    edges = sorted({population[i * n_pop // bins] for i in range(1, bins)})
    if not edges:
        return None
    cells = len(edges) + 1
    pop_counts = [0] * cells
    for key in population:
        pop_counts[bisect_right(edges, key)] += 1
    obs = [0] * cells
    for key in prefix:
        obs[bisect_right(edges, key)] += 1
    exp = [n_pre * c / n_pop for c in pop_counts]
    if min(e for e in exp if e > 0) < 2.0:
        return None
    return chi_square(obs, exp)
