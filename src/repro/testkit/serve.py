"""Serve-mode fuzzing: the solo-vs-interleaved differential oracle.

``python -m repro testkit fuzz --serve`` races the deterministic
multi-tenant scheduler (:class:`repro.serve.scheduler.ServeScheduler`)
against N isolated sequential runs of the same queries.  One
:class:`ServeScenario` fixes everything — dataset, tree shape, tenant
count, traffic shape, fault rates — from a single seed, so a failing case
serializes to a small replay payload exactly like the classic harness.

The oracle judges one interleaved run on five axes:

1. **solo equivalence** — each tenant's emitted batch sequence must equal,
   record for record, the sequence the same queries emit on a fresh
   identical build drained solo (scheduling must never leak into
   results).  This holds even under injected faults: ordinals are scoped
   per tenant (see :mod:`repro.testkit.faults`), so the same faults fire
   at the same accesses solo and interleaved.
2. **stream correctness** — every interleaved stream also faces the
   classic differential oracle (:func:`repro.testkit.oracle.check_stream`):
   containment, exactness at exhaustion, clock monotonicity, and
   chi-square prefix uniformity.
3. **fairness** — no runnable tenant waits more than a DRR-derived bound
   of scheduling turns (:func:`fairness_bound`); a starved tenant is a
   verdict failure.
4. **accounting** — arrivals/admissions/completions conserve per tenant,
   and the scheduler's per-tenant page ledger must reconcile with the
   cost accountant's attributed ledger (``budget_audit``).
5. **confinement** (``--sanitize-access``) — every mutation of the shared
   engine state happens inside the scheduler's quantum, proving the
   ``shared[owner=serve.scheduler]`` annotations at runtime.

Two sabotage modes give the oracle its teeth: ``"unfair-scheduler"``
starves the first tenant (caught by the fairness bound) and
``"budget-leak"`` attributes one tenant's page charges to its neighbour
(caught by the budget audit).  Both must FAIL when enabled — that is the
mutation self-test the CI serve job runs.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from ..acetree import AceBuildParams, build_ace_tree
from ..acetree.query import SampleStream
from ..analysis.invariants import AccessOrdinalSanitizer
from ..core.errors import InvariantViolation, ReproError
from ..core.intervals import Box
from ..core.rng import derive_random
from ..obs.cost import COST
from ..obs.flight import FLIGHT, FLIGHT_VERSION
from ..serve.scheduler import ServeConfig, ServeScheduler
from ..serve.workload import WORKLOAD_SHAPES, Workload, WorkloadSpec
from ..storage.cost import CostModel
from ..storage.heapfile import HeapFile
from .faults import FaultPlan, FaultyDisk
from .generators import DISTRIBUTIONS, KV_SCHEMA, Scenario, make_records
from .harness import REPLAY_VERSION, FuzzReport
from .oracle import DifferentialReport, check_stream, reference_matching

__all__ = [
    "SERVE_MUTATIONS",
    "BudgetLeakScheduler",
    "ServeScenario",
    "ServeVerdict",
    "UnfairScheduler",
    "fairness_bound",
    "fuzz_serve",
    "generate_serve_scenario",
    "replay_serve",
    "run_serve_scenario",
]

#: Scheduler sabotage modes for the serve-oracle self-tests.
SERVE_MUTATIONS: tuple[str, ...] = ("unfair-scheduler", "budget-leak")


@dataclass(frozen=True)
class ServeScenario:
    """One fully-determined serve fuzz case.

    Everything downstream — records, tree, workload bounds, stream seeds,
    fault draws — derives from :attr:`seed`, so the scenario serializes to
    this dataclass alone (the serve twin of
    :class:`repro.testkit.generators.Scenario`).
    """

    seed: int
    n: int
    key_range: int
    distribution: str
    height: int
    arity: int
    page_size: int
    tenants: int
    queries_per_tenant: int
    shape: str
    closed_loop: bool
    quantum_pages: int
    selectivity: float
    mean_gap: float
    rates: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed, "n": self.n, "key_range": self.key_range,
            "distribution": self.distribution, "height": self.height,
            "arity": self.arity, "page_size": self.page_size,
            "tenants": self.tenants,
            "queries_per_tenant": self.queries_per_tenant,
            "shape": self.shape, "closed_loop": self.closed_loop,
            "quantum_pages": self.quantum_pages,
            "selectivity": self.selectivity,
            "mean_gap": self.mean_gap,
            "rates": dict(self.rates),
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "ServeScenario":
        return cls(
            seed=obj["seed"], n=obj["n"], key_range=obj["key_range"],
            distribution=obj["distribution"], height=obj["height"],
            arity=obj["arity"], page_size=obj["page_size"],
            tenants=obj["tenants"],
            queries_per_tenant=obj["queries_per_tenant"],
            shape=obj["shape"], closed_loop=obj["closed_loop"],
            quantum_pages=obj["quantum_pages"],
            selectivity=obj["selectivity"],
            mean_gap=obj["mean_gap"],
            rates=dict(obj.get("rates", {})),
        )


def generate_serve_scenario(seed: int, with_faults: bool = True) -> ServeScenario:
    """Draw one serve scenario; the same seed always yields the same one.

    Fault rates are restricted to ``read.transient`` and ``read.latency``:
    both are absorbed per access without mutating stored pages, so a
    tenant's solo and interleaved runs stay comparable.  ``read.corrupt``
    rots the shared page itself — whichever tenant reads it next is
    poisoned by another tenant's fault draw — which breaks the solo
    oracle by design, not by bug, so serve scenarios never schedule it.
    """
    rng = derive_random(seed, "testkit-serve-scenario")
    # Trees tall enough (8-32 leaves) that a drain takes many scheduling
    # quanta, and arrival gaps on the order of a few page reads: tenants
    # genuinely contend, so fairness and interleaving are actually
    # exercised rather than every query running alone in the ring.
    n = rng.randrange(400, 1200)
    key_range = rng.choice((1_000, 10_000))
    distribution = rng.choice(DISTRIBUTIONS)
    height = rng.randrange(4, 7)
    arity = 2
    page_size = rng.choice((512, 1024))
    tenants = rng.randrange(3, 7)
    queries_per_tenant = rng.randrange(2, 4)
    shape = rng.choice(WORKLOAD_SHAPES)
    closed_loop = rng.random() < 0.5
    quantum_pages = rng.choice((4, 8))
    selectivity = rng.choice((0.3, 0.5, 0.8))
    mean_gap = rng.choice((0.0005, 0.002))
    rates: dict[str, float] = {}
    if with_faults:
        rates = {
            "read.transient": rng.choice((0.0, 0.005, 0.02)),
            "read.latency": rng.choice((0.0, 0.01)),
        }
        rates = {k: v for k, v in rates.items() if v > 0.0}
    return ServeScenario(
        seed=seed, n=n, key_range=key_range, distribution=distribution,
        height=height, arity=arity, page_size=page_size, tenants=tenants,
        queries_per_tenant=queries_per_tenant, shape=shape,
        closed_loop=closed_loop, quantum_pages=quantum_pages,
        selectivity=selectivity, mean_gap=mean_gap, rates=rates,
    )


def fairness_bound(scenario: ServeScenario) -> int:
    """Max scheduling turns a runnable tenant may wait under fair DRR.

    The ring rotates move-to-back: a tenant entering at the tail is ahead
    of every later admission and re-queue, so it advances one slot per
    turn and is served within ``ring size - 1 <= tenants - 1`` turns.
    ``tenants`` (one slack turn) is therefore a *sound* bound for the
    fair scheduler, while a starved tenant's wait grows with the other
    tenants' total service — several ring passes at least.
    """
    return scenario.tenants


# -- sabotaged schedulers (oracle self-tests) -------------------------------


class UnfairScheduler(ServeScheduler):
    """A deliberately unfair scheduler: the first tenant is never chosen.

    ``_pick_index`` skips ``t0`` whenever any other tenant is runnable, so
    ``t0`` is served only once everyone else has drained — its
    ``max_waiting`` grows with the whole backlog's service time and blows
    through :func:`fairness_bound`.  Used only by the serve fuzz harness's
    mutation mode; never constructed by product code.
    """

    victim = "t0"

    def _pick_index(self) -> int:
        for index, name in enumerate(self._ring):
            if name != self.victim:
                return index
        return 0


class BudgetLeakScheduler(ServeScheduler):
    """A deliberately leaky scheduler: ``t0``'s charges bill its neighbour.

    ``_step_labels`` relabels every ``t0`` step as ``t1``, so the cost
    accountant attributes ``t0``'s page reads to ``t1`` while the
    scheduler's own ledger keys the true tenant.  Global conservation
    still balances — only the per-tenant ``budget_audit`` reconciliation
    catches it.  Used only by the serve fuzz harness's mutation mode;
    never constructed by product code.
    """

    leaker = "t0"
    beneficiary = "t1"

    def _step_labels(self, run) -> dict:
        labels = super()._step_labels(run)
        if labels["tenant"] == self.leaker:
            labels["tenant"] = self.beneficiary
        return labels


# -- running one scenario ---------------------------------------------------


@dataclass
class ServeVerdict:
    """The serve oracle's judgement of one scenario under one fault plan."""

    scenario: ServeScenario
    faults_active: bool
    mutation: str | None = None
    reports: list[DifferentialReport] = field(default_factory=list)
    scheduler_failures: list[str] = field(default_factory=list)
    injected: int = 0
    serve_report: dict | None = None

    @property
    def failure_lines(self) -> list[str]:
        lines = list(self.scheduler_failures)
        for report in self.reports:
            for message in report.failures:
                lines.append(f"{report.sampler} {report.query}: {message}")
        return lines

    @property
    def ok(self) -> bool:
        return not self.failure_lines

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario.as_dict(),
            "faults_active": self.faults_active,
            "mutation": self.mutation,
            "injected": self.injected,
            "reports": [r.as_dict() for r in self.reports],
            "failures": self.failure_lines,
        }


class _DrainedStream(list):
    """Pre-drained batches with the ``degraded`` flag ``check_stream`` reads."""

    def __init__(self, batches, degraded: bool) -> None:
        super().__init__(batches)
        self.degraded = degraded


def _build_world(scenario: ServeScenario, plan: FaultPlan):
    """Fresh disk + records + tree for one run; faults exempt the build.

    The build runs disarmed so (a) it cannot abort and (b) serve-time
    fault ordinals start at zero in every world — the alignment that makes
    solo and interleaved draws comparable and payloads replayable.
    """
    disk = FaultyDisk(
        page_size=scenario.page_size,
        cost=CostModel.scaled(scenario.page_size),
        plan=plan,
    )
    disk.armed = False
    records = make_records(Scenario(
        seed=scenario.seed, n=scenario.n, key_range=scenario.key_range,
        distribution=scenario.distribution, height=scenario.height,
        arity=scenario.arity, page_size=scenario.page_size, queries=(),
    ))
    heap = HeapFile.bulk_load(disk, KV_SCHEMA, records)
    tree = build_ace_tree(heap, AceBuildParams(
        key_fields=("k",), height=scenario.height, arity=scenario.arity,
        seed=scenario.seed,
    ))
    disk.reset_clock()
    disk.armed = True
    return records, tree


def _workload_for(scenario: ServeScenario, tree) -> Workload:
    domain = tree.geometry.domain.sides[0]
    spec = WorkloadSpec(
        shape=scenario.shape,
        tenants=scenario.tenants,
        queries_per_tenant=scenario.queries_per_tenant,
        closed_loop=scenario.closed_loop,
        mean_gap=scenario.mean_gap,
        selectivity=scenario.selectivity,
        key_lo=domain.lo,
        key_hi=domain.hi,
    )
    return Workload(spec, seed=scenario.seed)


def _twin_plan(plan: FaultPlan) -> FaultPlan:
    """A fresh plan firing the same faults as ``plan`` did.

    Per-``(op, scope)`` RNG streams and ordinals mean a schedule-mode twin
    (same seed + rates) and a replay-mode twin (same events) both strike a
    tenant's accesses identically no matter how runs interleave.
    """
    if plan.events is not None:
        return FaultPlan(seed=plan.seed, events=list(plan.events))
    return FaultPlan(seed=plan.seed, rates=dict(plan.rates))


def _solo_sequences(scenario: ServeScenario, workload: Workload,
                    plan: FaultPlan) -> dict:
    """Each tenant's queries drained solo: ``{(tenant, qid): batches}``.

    One fresh world serves all tenants *sequentially* (the "N isolated
    runs" of the oracle): per-scope fault ordinals make each tenant's
    schedule independent of who ran before it, and leaf accesses charge
    identically whether or not a decode memo hit, so sharing the world
    changes nothing a tenant can observe.
    """
    _, tree = _build_world(scenario, _twin_plan(plan))
    out: dict[tuple[str, str], list] = {}
    for tenant in workload.tenant_names():
        tree.disk.scope = tenant
        for request in workload.requests(tenant):
            box = Box.from_bounds([request.lo], [request.hi])
            stream = SampleStream(
                tree, box, seed=request.stream_seed, lost_leaf_policy="skip"
            )
            out[(tenant, request.query_id)] = list(stream)
    return out


def run_serve_scenario(
    scenario: ServeScenario,
    plan: FaultPlan | None = None,
    mutation: str | None = None,
    sanitize: bool | None = None,
) -> tuple[ServeVerdict, FaultPlan]:
    """Run one interleaved serve and judge it against its solo twins.

    Returns the verdict together with the plan actually used (whose
    ``injected`` list is the replayable fault record).  ``sanitize`` arms
    the access-ordinal sanitizer with the scheduler's quantum as the sole
    sanctioned writer of the shared engine state.
    """
    if mutation is not None and mutation not in SERVE_MUTATIONS:
        raise ValueError(
            f"unknown serve mutation {mutation!r}; expected {SERVE_MUTATIONS}"
        )
    plan = plan if plan is not None else FaultPlan(
        seed=scenario.seed, rates=dict(scenario.rates)
    )
    verdict = ServeVerdict(
        scenario=scenario, faults_active=plan.active, mutation=mutation
    )

    records, tree = _build_world(scenario, plan)
    workload = _workload_for(scenario, tree)
    config = ServeConfig(
        queue_cap=max(8, scenario.tenants * scenario.queries_per_tenant),
        quantum_pages=scenario.quantum_pages,
        page_budget=None,
        target_epsilon=None,   # drain to exhaustion: exactness applies
        max_samples=None,
        lost_leaf_policy="skip",
    )

    step_guard = None
    if sanitize:
        sanitizer = AccessOrdinalSanitizer(lambda: tree.disk.clock)
        tree._overlap_memo = sanitizer.wrap_dict(
            "AceTree._overlap_memo", tree._overlap_memo)
        tree.leaf_store._memo = sanitizer.wrap(
            "LeafStore.decode_memo", tree.leaf_store._memo,
            write_ops=("put", "clear"), read_ops=("get",))
        step_guard = lambda: sanitizer.writer("serve-scheduler")

    scheduler_cls = {
        None: ServeScheduler,
        "unfair-scheduler": UnfairScheduler,
        "budget-leak": BudgetLeakScheduler,
    }[mutation]

    COST.reset()
    COST.arm()
    try:
        scheduler = scheduler_cls(
            tree, workload, config,
            collect_records=True,
            step_guard=step_guard if step_guard is not None else nullcontext,
        )
        report = scheduler.run()
    except InvariantViolation as exc:
        verdict.scheduler_failures.append(f"sanitizer tripped: {exc}")
        verdict.injected = len(plan.injected)
        return verdict, plan
    except ReproError as exc:
        verdict.scheduler_failures.append(
            f"serve run aborted: {type(exc).__name__}: {exc}"
        )
        verdict.injected = len(plan.injected)
        return verdict, plan
    finally:
        COST.disarm()
    verdict.serve_report = report.as_dict()

    # -- accounting: arrivals conserve, everything admitted completed ------
    bound = fairness_bound(scenario)
    for name, stats in verdict.serve_report["tenants"].items():
        if stats["arrived"] != (stats["admitted"] + stats["rejected_queue"]
                                + stats["rejected_budget"]):
            verdict.scheduler_failures.append(
                f"accounting: tenant {name} arrivals do not conserve: {stats}"
            )
        if stats["completed"] != stats["admitted"]:
            verdict.scheduler_failures.append(
                f"accounting: tenant {name} admitted {stats['admitted']} "
                f"queries but completed {stats['completed']}"
            )
        if stats["max_waiting"] > bound:
            verdict.scheduler_failures.append(
                f"fairness: tenant {name} waited {stats['max_waiting']} "
                f"scheduling turns while runnable (bound {bound})"
            )

    # -- budget audit: per-tenant ledger vs cost attribution ---------------
    audit = verdict.serve_report["budget_audit"]
    if audit["checked"] and not audit["ok"]:
        for name, entry in audit["tenants"].items():
            if entry.get("ok") is False:
                verdict.scheduler_failures.append(
                    f"budget-audit: tenant {name} scheduler ledger "
                    f"{entry['scheduler']} != attributed {entry['attributed']}"
                )
        for name in audit["stray_tenants"]:
            verdict.scheduler_failures.append(
                f"budget-audit: pages attributed to unknown tenant {name!r}"
            )

    # -- solo equivalence + classic stream oracle --------------------------
    try:
        solo = _solo_sequences(scenario, workload, plan)
    except ReproError as exc:
        verdict.scheduler_failures.append(
            f"solo run aborted: {type(exc).__name__}: {exc}"
        )
        verdict.injected = len(plan.injected)
        return verdict, plan
    degraded_ok = plan.active
    for name in workload.tenant_names():
        state = scheduler.tenants[name]
        for run in state.finished_runs:
            qid = run.request.query_id
            label = f"serve:{name}:{qid}"
            interleaved = [tuple(b.records) for b in run.batches]
            alone = [tuple(b.records) for b in solo.get((name, qid), [])]
            if interleaved != alone:
                divergent = len(alone)
                for i, (a, b) in enumerate(zip(interleaved, alone)):
                    if a != b:
                        divergent = i
                        break
                report_ = DifferentialReport(
                    sampler=label, query=(run.request.lo, run.request.hi))
                report_.failures.append(
                    f"interleaved stream diverges from solo at batch "
                    f"{divergent} ({len(interleaved)} vs {len(alone)} "
                    "batches) — scheduling leaked into results"
                )
                verdict.reports.append(report_)
                continue
            box = Box.from_bounds([run.request.lo], [run.request.hi])
            matching = reference_matching(records, box)
            verdict.reports.append(check_stream(
                label,
                _DrainedStream(run.batches, run.stream.degraded),
                matching,
                query=(run.request.lo, run.request.hi),
                degraded_ok=degraded_ok,
            ))
    verdict.injected = len(plan.injected)
    return verdict, plan


# -- the fuzz loop ----------------------------------------------------------


def _serve_payload(scenario, plan, mutation, verdict, fuzz_seed, iteration,
                   phase, sanitize=None) -> dict:
    payload = {
        "v": REPLAY_VERSION,
        "kind": "testkit-replay",
        "mode": "serve",
        "fuzz_seed": fuzz_seed,
        "iteration": iteration,
        "phase": phase,
        "mutation": mutation,
        "scenario": scenario.as_dict(),
        "plan": plan.to_replay().as_dict(),
        "failures": verdict.failure_lines,
    }
    if sanitize is not None:
        payload["sanitize"] = sanitize
    return payload


def fuzz_serve(
    seed: int = 0,
    iterations: int = 10,
    with_faults: bool = True,
    mutation: str | None = None,
    max_failures: int = 8,
    sanitize: bool | None = None,
) -> FuzzReport:
    """Run ``iterations`` serve scenarios, clean and (optionally) faulted.

    The serve twin of :func:`repro.testkit.harness.fuzz`: each failing
    case is captured as a ``mode="serve"`` replay payload with the flight
    recorder's last-moments window attached.
    """
    report = FuzzReport(seed=seed, iterations=iterations, mutation=mutation)
    case_rng = derive_random(seed, "testkit-serve-fuzz")
    for iteration in range(iterations):
        case_seed = case_rng.getrandbits(32)
        scenario = generate_serve_scenario(case_seed, with_faults=with_faults)
        phases: list[tuple[str, FaultPlan]] = [("clean", FaultPlan())]
        if with_faults and scenario.rates:
            phases.append(
                ("faulted", FaultPlan(seed=case_seed, rates=scenario.rates))
            )
        for phase, plan in phases:
            with FLIGHT.recording():
                verdict, plan = run_serve_scenario(
                    scenario, plan=plan, mutation=mutation, sanitize=sanitize)
                flight = None
                if not verdict.ok:
                    reason = f"serve-oracle-failure:{phase}"
                    FLIGHT.trip(reason)
                    flight = {
                        "v": FLIGHT_VERSION,
                        "reason": reason,
                        "events": FLIGHT.snapshot(),
                        "dropped": FLIGHT.dropped,
                    }
            report.scenarios_run += 1
            report.queries_checked += len(verdict.reports)
            report.injected_events += len(plan.injected)
            if not verdict.ok:
                payload = _serve_payload(
                    scenario, plan, mutation, verdict,
                    fuzz_seed=seed, iteration=iteration, phase=phase,
                    sanitize=sanitize,
                )
                payload["flight"] = flight
                report.failures.append(payload)
                if len(report.failures) >= max_failures:
                    return report
    return report


def replay_serve(payload: dict) -> tuple[ServeVerdict, FaultPlan]:
    """Re-run a serve replay payload: identical faults, deterministic verdict.

    The rebuilt plan replays the recorded events at their ``(op, tenant
    scope, ordinal)`` slots, so the same faults strike the same accesses
    regardless of how the interleaving would have re-randomized a global
    ordinal — that is what makes serve failures replay fault-for-fault.
    """
    if not isinstance(payload, dict) or payload.get("kind") != "testkit-replay":
        raise ValueError("not a testkit replay payload")
    if payload.get("mode") != "serve":
        raise ValueError("not a serve-mode replay payload")
    if payload.get("v") != REPLAY_VERSION:
        raise ValueError(
            f"unsupported replay payload version {payload.get('v')!r}"
        )
    scenario = ServeScenario.from_dict(payload["scenario"])
    plan = FaultPlan.from_dict(payload["plan"])
    return run_serve_scenario(
        scenario, plan=plan, mutation=payload.get("mutation"),
        sanitize=payload.get("sanitize"),
    )
