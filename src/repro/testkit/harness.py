"""The fuzz harness: generated scenarios, racing samplers, replayable verdicts.

One *scenario* (see :mod:`repro.testkit.generators`) is run as: build the
heap file, the ACE Tree, the ranked B+-Tree, and the permuted file on one
:class:`~repro.testkit.faults.FaultyDisk`; then drain every sampler for
every query and judge each stream with the differential oracle.  A run is
performed twice per fuzz iteration — once clean, once under the scenario's
fault rates — so both the statistical invariants and the recovery paths
are exercised from the same case.

Any failing case serializes to a small JSON *replay payload* — scenario
parameters plus the frozen fault event list — that
``python -m repro testkit replay`` (or :func:`replay` directly) re-runs
deterministically: same faults at the same access ordinals, same verdict.

After the clean/faulted query loop every scenario runs a *cold-then-warm*
pass: the same queries re-run against an attached
:class:`~repro.storage.sample_cache.SampleCache` — once to populate it,
once all-hits — and both streams face the same oracle.  Cache-warm
streams must be indistinguishable from cold ones.

The harness can also sabotage itself: ``mutation="combine-drop"`` swaps in
a :class:`BrokenCombineStream` whose Combine silently discards one
required interval's cells, ``mutation="cache-stale"`` swaps in a
:class:`StaleSampleCache` that serves the wrong leaf's cells on warm
hits, and ``mutation="shared-memo"`` interleaves two simulated tenants'
stream creations over one tree so its shared memos see A-B-A writer
episodes.  The differential oracle must catch the first two and the
access-ordinal sanitizer (:mod:`repro.analysis.invariants`) the third —
these are the self-tests proving the oracle and sanitizer have teeth.

``sanitize=True`` (CLI ``--sanitize-access``) arms the sanitizer on any
run: the tree's overlap memo, its leaf decode memo, and the attached
sample cache are wrapped, every stream drains inside a per-stream writer
context, and single-writer-per-tick plus episode-confinement are asserted
throughout.  Clean scenarios must pass with it armed — that is the
runtime proof that the ``shared[confined]`` annotations the program
analyzer accepts are honest.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from ..acetree import AceBuildParams, build_ace_tree
from ..acetree.query import SampleStream
from ..analysis.invariants import AccessOrdinalSanitizer
from ..core.errors import InvariantViolation, ReproError
from ..core.rng import derive_random
from ..obs.context import CONTEXT
from ..obs.flight import FLIGHT, FLIGHT_VERSION
from ..storage.cost import CostModel
from ..storage.heapfile import HeapFile
from ..storage.sample_cache import SampleCache
from .faults import FaultPlan, FaultyDisk
from .generators import KV_SCHEMA, Scenario, generate_scenario, make_records
from .oracle import DifferentialReport, check_stream, reference_matching

__all__ = [
    "MUTATIONS",
    "BrokenCombineStream",
    "FuzzReport",
    "ScenarioVerdict",
    "StaleSampleCache",
    "fuzz",
    "replay",
    "run_scenario",
]

#: Known sabotage modes for oracle/sanitizer self-tests.
MUTATIONS: tuple[str, ...] = ("combine-drop", "cache-stale", "shared-memo")

#: Replay payload format version.
REPLAY_VERSION = 1


class BrokenCombineStream(SampleStream):
    """A deliberately broken Shuttle: Combine drops an interval's cells.

    At every section level ``s >= 2`` the cell belonging to the *first*
    required interval is popped and discarded instead of emitted.  The
    stream therefore (a) silently loses matching records — caught by the
    oracle's exactness check — and (b) biases every emitted prefix against
    that key region — caught by the statistical-equivalence check.  Used
    only by the harness's mutation mode; never constructed by product code.
    """

    _combine_fast_path = False  # every cell must flow through the broken drain

    def _drain_level(self, s):
        bucket = self._buckets[s - 1]
        required = self._required[s - 1]
        out = []
        while all(bucket.get(j) for j in required):
            for i, j in enumerate(required):
                cell = bucket[j].pop(0)
                self.stats.buffered_records -= len(cell)
                if s >= 2 and i == 0:
                    continue  # the sabotage: this cell vanishes
                out.append(cell)
        return out


class StaleSampleCache(SampleCache):
    """A deliberately broken sample cache: hits serve the wrong leaf.

    The first view ever inserted is pinned and served back for *every*
    subsequent hit regardless of the requested key — the classic
    mis-keyed/stale-entry cache bug.  A warm stream then re-emits the
    pinned leaf's records for every other leaf (caught by the oracle's
    duplicate-identity check) and never emits those leaves' real records
    (caught by the completeness check).  Used only by the harness's
    mutation mode; never constructed by product code.
    """

    def __init__(self) -> None:
        super().__init__()
        self._pinned = None

    def put(self, key: tuple, value: object, nbytes: int) -> None:
        if self._pinned is None:
            self._pinned = value
        super().put(key, value, nbytes)

    def get(self, key: tuple):
        value = super().get(key)
        return None if value is None else self._pinned


@dataclass
class ScenarioVerdict:
    """The oracle's judgement of one scenario under one fault plan."""

    scenario: Scenario
    faults_active: bool
    mutation: str | None = None
    build_aborted: str | None = None
    reports: list[DifferentialReport] = field(default_factory=list)
    injected: int = 0

    @property
    def failure_lines(self) -> list[str]:
        lines: list[str] = []
        if self.build_aborted and not self.faults_active:
            lines.append(f"build aborted without faults: {self.build_aborted}")
        for report in self.reports:
            for message in report.failures:
                lines.append(f"{report.sampler} {report.query}: {message}")
        return lines

    @property
    def ok(self) -> bool:
        return not self.failure_lines

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario.as_dict(),
            "faults_active": self.faults_active,
            "mutation": self.mutation,
            "build_aborted": self.build_aborted,
            "injected": self.injected,
            "reports": [r.as_dict() for r in self.reports],
            "failures": self.failure_lines,
        }


def run_scenario(
    scenario: Scenario,
    plan: FaultPlan | None = None,
    mutation: str | None = None,
    sanitize: bool | None = None,
) -> tuple[ScenarioVerdict, FaultPlan]:
    """Build the scenario on a fault-injected disk and judge every sampler.

    Returns the verdict together with the plan actually used (whose
    ``injected`` list is the replayable fault record).  A build aborted by
    an injected fault is a *detected* failure — the engine raised a typed
    error instead of corrupting silently — and is only a verdict failure
    when no faults were active.

    ``sanitize`` arms the access-ordinal sanitizer (default: only for the
    ``"shared-memo"`` mutation, which exists to trip it).
    """
    from ..baselines import build_bplus_tree, build_permuted_file

    if mutation is not None and mutation not in MUTATIONS:
        raise ValueError(f"unknown mutation {mutation!r}; expected {MUTATIONS}")
    if sanitize is None:
        sanitize = mutation == "shared-memo"
    plan = plan if plan is not None else FaultPlan()
    verdict = ScenarioVerdict(
        scenario=scenario, faults_active=plan.active, mutation=mutation
    )
    disk = FaultyDisk(
        page_size=scenario.page_size,
        cost=CostModel.scaled(scenario.page_size),
        plan=plan,
    )
    records = make_records(scenario)
    try:
        heap = HeapFile.bulk_load(disk, KV_SCHEMA, records)
        tree = build_ace_tree(
            heap,
            AceBuildParams(
                key_fields=("k",), height=scenario.height,
                arity=scenario.arity, seed=scenario.seed,
            ),
        )
        bplus = build_bplus_tree(heap, "k", leaf_cache_pages=16)
        permuted = build_permuted_file(heap, ("k",), seed=scenario.seed)
    except ReproError as exc:
        verdict.build_aborted = f"{type(exc).__name__}: {exc}"
        verdict.injected = len(plan.injected)
        return verdict, plan

    sanitizer: AccessOrdinalSanitizer | None = None
    if sanitize:
        # Instrument *after* the build: the builders own the structures
        # exclusively, the query phases are what must prove confinement.
        sanitizer = AccessOrdinalSanitizer(lambda: disk.clock)
        tree._overlap_memo = sanitizer.wrap_dict(
            "AceTree._overlap_memo", tree._overlap_memo)
        tree.leaf_store._memo = sanitizer.wrap(
            "LeafStore.decode_memo", tree.leaf_store._memo,
            write_ops=("put", "clear"), read_ops=("get",))

    if mutation == "shared-memo":
        verdict.reports.append(
            _shared_memo_mutant(tree, scenario, sanitizer))
        verdict.injected = len(plan.injected)
        return verdict, plan

    degraded_ok = plan.active
    for query_index, (lo, hi) in enumerate(scenario.queries):
        box = tree.query((lo, hi))
        matching = reference_matching(records, box)
        seed = scenario.seed + query_index

        def make_ace():
            if mutation == "combine-drop":
                return BrokenCombineStream(
                    tree, box, seed=seed,
                    lost_leaf_policy="skip" if degraded_ok else "raise",
                )
            return tree.sample(
                box, seed=seed,
                lost_leaf_policy="skip" if degraded_ok else "raise",
            )

        streams = [
            ("ace", make_ace),
            ("bplus", lambda: bplus.sample(box, seed=seed)),
            ("permuted", lambda: permuted.sample(box, seed=seed)),
        ]
        for name, make_stream in streams:
            with CONTEXT.push(sampler=name, query=f"q{query_index}"):
                verdict.reports.append(_checked_stream(
                    sanitizer, f"{name}:q{query_index}", name, make_stream,
                    matching, (lo, hi), degraded_ok,
                ))

    # Cold-then-warm differential pass.  Appended *after* the historical
    # phases so their fault access ordinals (and hence every existing
    # replay payload) are untouched.  Each query runs twice against an
    # attached sample cache — a populate pass that fills it from disk and
    # a warm pass served from residency — and both face the same oracle:
    # cache-warm streams must be indistinguishable from cold ones.
    cache = StaleSampleCache() if mutation == "cache-stale" else SampleCache()
    if sanitizer is not None:
        cache = sanitizer.wrap(
            "SampleCache", cache,
            write_ops=("put", "clear"), read_ops=("get", "peek"))
    tree.attach_sample_cache(cache)
    try:
        for query_index, (lo, hi) in enumerate(scenario.queries):
            box = tree.query((lo, hi))
            matching = reference_matching(records, box)
            seed = scenario.seed + query_index
            policy = "skip" if degraded_ok else "raise"
            for name in ("ace-populate", "ace-warm"):
                def make_cached():
                    return tree.sample(box, seed=seed, lost_leaf_policy=policy)

                with CONTEXT.push(sampler=name, query=f"q{query_index}"):
                    verdict.reports.append(_checked_stream(
                        sanitizer, f"{name}:q{query_index}", name, make_cached,
                        matching, (lo, hi), degraded_ok,
                    ))
    finally:
        tree.detach_sample_cache()
    verdict.injected = len(plan.injected)
    return verdict, plan


def _checked_stream(sanitizer, writer_tag, name, make_stream, matching,
                    query, degraded_ok) -> DifferentialReport:
    """Create and judge one stream, inside one sanitizer writer episode.

    The writer context covers stream *creation* too — creating a stream
    writes the tree's overlap memo, and those writes must be attributed.
    A sanitizer trip is always a verdict failure, even in fault phases
    where aborted streams are otherwise tolerated: faults never excuse a
    confinement violation.
    """
    try:
        if sanitizer is not None:
            with sanitizer.writer(writer_tag):
                stream = make_stream()
                report = check_stream(
                    name, stream, matching, query=query,
                    degraded_ok=degraded_ok,
                )
        else:
            stream = make_stream()
            report = check_stream(
                name, stream, matching, query=query, degraded_ok=degraded_ok
            )
    except InvariantViolation as exc:
        report = DifferentialReport(sampler=name, query=query,
                                    failures=[str(exc)])
        return report
    if report.aborted is not None:
        if not degraded_ok:
            report.failures.append(
                f"stream aborted without faults: {report.aborted}"
            )
        elif "sanitizer:" in report.aborted:
            report.failures.append(
                f"confinement violated under faults: {report.aborted}"
            )
    return report


def _shared_memo_mutant(tree, scenario: Scenario,
                        sanitizer: AccessOrdinalSanitizer | None,
                        ) -> DifferentialReport:
    """Interleave two simulated tenants' stream creations on one tree.

    Tenant A creates a stream (writing the shared overlap memo), tenant B
    creates one, then tenant A creates a third — the A-B-A writer-episode
    pattern a concurrency-unsafe scheduler would produce.  The sanitizer
    MUST trip; the trip is reported as the verdict failure that the
    mutation self-test asserts on (a silent pass means the sanitizer has
    no teeth).
    """
    lo, hi = scenario.queries[0]
    mid = (lo + hi) // 2
    # Three distinct query boxes: distinct overlap-memo keys, so every
    # creation writes the memo (a repeat box would be a memo *hit*).
    boxes = [tree.query(q) for q in ((lo, hi), (lo, mid), (mid, hi))]
    report = DifferentialReport(sampler="ace-shared", query=(lo, hi))
    # With sanitize=False the mutant runs uninstrumented and passes
    # silently — demonstrating exactly the blindness the sanitizer fixes.
    owner = sanitizer.writer if sanitizer is not None else (
        lambda tag: nullcontext())
    try:
        with owner("tenant-A"), CONTEXT.push(tenant="tenant-A"):
            tree.sample(boxes[0], seed=scenario.seed)
        with owner("tenant-B"), CONTEXT.push(tenant="tenant-B"):
            tree.sample(boxes[1], seed=scenario.seed + 1)
        with owner("tenant-A"), CONTEXT.push(tenant="tenant-A"):
            tree.sample(boxes[2], seed=scenario.seed + 2)
    except InvariantViolation as exc:
        report.failures.append(str(exc))
    return report


def _replay_payload(scenario, plan, mutation, verdict, fuzz_seed, iteration,
                    phase, sanitize=None) -> dict:
    payload = {
        "v": REPLAY_VERSION,
        "kind": "testkit-replay",
        "fuzz_seed": fuzz_seed,
        "iteration": iteration,
        "phase": phase,
        "mutation": mutation,
        "scenario": scenario.as_dict(),
        "plan": plan.to_replay().as_dict(),
        "failures": verdict.failure_lines,
    }
    if sanitize is not None:
        # Optional key: version-1 payloads without it replay unchanged
        # (run_scenario re-derives the default from the mutation).
        payload["sanitize"] = sanitize
    return payload


@dataclass
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    seed: int
    iterations: int
    mutation: str | None = None
    scenarios_run: int = 0
    queries_checked: int = 0
    injected_events: int = 0
    failures: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def fuzz(
    seed: int = 0,
    iterations: int = 20,
    with_faults: bool = True,
    mutation: str | None = None,
    max_failures: int = 8,
    sanitize: bool | None = None,
) -> FuzzReport:
    """Run ``iterations`` generated scenarios, clean and (optionally) faulted.

    Each failing run is captured as a replay payload in
    :attr:`FuzzReport.failures`; the run stops early once ``max_failures``
    cases are collected (a broken engine would otherwise fail every case).
    """
    report = FuzzReport(seed=seed, iterations=iterations, mutation=mutation)
    case_rng = derive_random(seed, "testkit-fuzz")
    for iteration in range(iterations):
        case_seed = case_rng.getrandbits(32)
        scenario = generate_scenario(case_seed, with_faults=with_faults)
        phases: list[tuple[str, FaultPlan]] = [("clean", FaultPlan())]
        if with_faults and scenario.rates:
            phases.append(
                ("faulted", FaultPlan(seed=case_seed, rates=scenario.rates))
            )
        for phase, plan in phases:
            # Each phase flies with the recorder armed (arming clears the
            # ring): on an oracle failure the last-moments event window is
            # attached to the replay payload.  Recording is read-only on
            # the simulated clock, so verdicts are unaffected.
            with FLIGHT.recording():
                verdict, plan = run_scenario(
                    scenario, plan=plan, mutation=mutation, sanitize=sanitize)
                flight = None
                if not verdict.ok:
                    reason = f"oracle-failure:{phase}"
                    FLIGHT.trip(reason)
                    flight = {
                        "v": FLIGHT_VERSION,
                        "reason": reason,
                        "events": FLIGHT.snapshot(),
                        "dropped": FLIGHT.dropped,
                    }
            report.scenarios_run += 1
            report.queries_checked += len(verdict.reports)
            report.injected_events += len(plan.injected)
            if not verdict.ok:
                payload = _replay_payload(
                    scenario, plan, mutation, verdict,
                    fuzz_seed=seed, iteration=iteration, phase=phase,
                    sanitize=sanitize,
                )
                # Optional key: version-1 payloads without it replay
                # unchanged; replay() ignores it entirely.
                payload["flight"] = flight
                report.failures.append(payload)
                if len(report.failures) >= max_failures:
                    return report
    return report


def replay(payload: dict) -> tuple[ScenarioVerdict, FaultPlan]:
    """Re-run a replay payload: identical faults, deterministic verdict.

    The returned plan's ``injected`` list should match the payload's
    recorded events exactly — the CLI checks this and reports any drift
    (which would mean the workload is no longer access-for-access
    identical, e.g. after a code change).
    """
    if not isinstance(payload, dict) or payload.get("kind") != "testkit-replay":
        raise ValueError("not a testkit replay payload")
    if payload.get("v") != REPLAY_VERSION:
        raise ValueError(f"unsupported replay payload version {payload.get('v')!r}")
    scenario = Scenario.from_dict(payload["scenario"])
    plan = FaultPlan.from_dict(payload["plan"])
    return run_scenario(scenario, plan=plan, mutation=payload.get("mutation"),
                        sanitize=payload.get("sanitize"))
