"""Differential oracle: sampler streams versus a brute-force reference.

Every sampler under test (ACE Tree, ranked B+-Tree, permuted file) obeys
the same contract — batches of records matching a range query, uniform at
every prefix, exact at exhaustion.  The oracle checks a drained stream
against a trivially-correct in-memory reference on four axes:

1. **containment** — every emitted record matches the query (is in the
   reference multiset) and no record is emitted twice;
2. **exactness** — at exhaustion the emitted multiset equals the matching
   multiset exactly (skipped for streams that declared themselves
   ``degraded`` after surviving injected faults — they are *allowed* to
   lose records, but must still satisfy containment);
3. **clock sanity** — batch availability times are non-decreasing;
4. **statistical equivalence** — the first-K prefix's key distribution is
   chi-square-consistent with the matching population
   (:func:`repro.testkit.stats.prefix_vs_population`), since a stream can
   be exact at exhaustion yet biased early (the exact failure mode of a
   broken Combine).

Failures are strings, accumulated in a :class:`DifferentialReport`;
anything non-empty is a verdict against the sampler.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .stats import DEFAULT_P_FLOOR, prefix_vs_population

__all__ = ["DifferentialReport", "check_stream", "reference_matching"]

#: Cap on the prefix length used for the statistical check; beyond this the
#: prefix is most of the population and the test degenerates.
_MAX_PREFIX = 200


@dataclass
class DifferentialReport:
    """The oracle's verdict on one (sampler, query) pair."""

    sampler: str
    query: tuple
    emitted: int = 0
    expected: int = 0
    degraded: bool = False
    aborted: str | None = None
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "sampler": self.sampler, "query": list(self.query),
            "emitted": self.emitted, "expected": self.expected,
            "degraded": self.degraded, "aborted": self.aborted,
            "failures": list(self.failures),
        }


def reference_matching(records, box) -> list:
    """Brute-force scan: the records matching ``box`` on their key.

    The key is the first field (the ``(key, unique_id)`` convention of
    :mod:`repro.testkit.generators`), matched with the same
    ``Box.contains_point`` predicate every sampler uses, so reference and
    sampler agree on boundary semantics by construction.
    """
    return [r for r in records if box.contains_point((r[0],))]


def check_stream(
    sampler: str,
    batches,
    matching,
    query: tuple = (),
    p_floor: float = DEFAULT_P_FLOOR,
    degraded_ok: bool = False,
) -> DifferentialReport:
    """Drain ``batches`` and judge them against the ``matching`` reference.

    ``degraded_ok`` permits a stream to come up short *if and only if* it
    flags itself degraded (the fault-injected graceful-degradation path);
    an undegraded stream is always held to exactness.
    """
    report = DifferentialReport(sampler=sampler, query=tuple(query),
                                expected=len(matching))
    emitted: list = []
    last_clock = None
    try:
        for batch in batches:
            if last_clock is not None and batch.clock < last_clock:
                report.failures.append(
                    f"clock went backwards: {batch.clock} after {last_clock}"
                )
            last_clock = batch.clock
            emitted.extend(batch.records)
    except Exception as exc:  # repro: allow[EXC001] the oracle reports any crash as a verdict, never raises
        report.aborted = f"{type(exc).__name__}: {exc}"
    report.emitted = len(emitted)
    report.degraded = bool(getattr(batches, "degraded", False))
    if report.degraded and not degraded_ok:
        report.failures.append("stream degraded without faults injected")

    # Identity is the unique second column; duplicates mean with-replacement
    # sampling or a double-drained bucket.
    emitted_ids = Counter(r[1] for r in emitted)
    dups = [rid for rid, count in emitted_ids.items() if count > 1]
    if dups:
        report.failures.append(
            f"{len(dups)} record(s) emitted more than once (e.g. id {dups[0]})"
        )
    matching_ids = Counter(r[1] for r in matching)
    strays = [rid for rid in emitted_ids if rid not in matching_ids]
    if strays:
        report.failures.append(
            f"{len(strays)} emitted record(s) outside the query "
            f"(e.g. id {strays[0]})"
        )

    if report.aborted is None and not (report.degraded and degraded_ok):
        if emitted_ids != matching_ids:
            missing = sum((matching_ids - emitted_ids).values())
            report.failures.append(
                f"exhausted stream emitted {report.emitted} of "
                f"{report.expected} matching records ({missing} missing)"
            )

    # Statistical equivalence on the clean prefix only: a degraded or
    # aborted stream already explained its bias.
    if report.aborted is None and not report.degraded and not strays:
        k = min(_MAX_PREFIX, max(20, len(matching) // 2))
        verdict = prefix_vs_population(
            [r[0] for r in emitted[:k]], [r[0] for r in matching]
        )
        if verdict is not None and not verdict.ok(p_floor):
            report.failures.append(
                f"first-{k} prefix biased vs population: {verdict.describe()}"
            )
    return report
