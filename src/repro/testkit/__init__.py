"""Deterministic fault injection + differential-oracle testing (``repro.testkit``).

The paper's central claim — the Shuttle/Combine stream is an always-uniform
online sample for any range predicate — is a *statistical* invariant, and
the ROADMAP's north star is a production system that must also survive bad
hardware.  This package is the machinery that hunts violations of both
automatically instead of waiting for a bad seed:

* :mod:`repro.testkit.faults` — a seeded, schedule-driven fault-injection
  layer over :class:`~repro.storage.disk.SimulatedDisk`: transient read
  errors, torn writes, bit-flip corruption, latency spikes.  Every injected
  event is recorded in a :class:`~repro.testkit.faults.FaultPlan` that can
  be serialized and replayed bit-for-bit.
* :mod:`repro.testkit.generators` — seeded scenario generators (datasets,
  tree shapes, range queries, fault rates) for the fuzz harness, plus the
  shrinking-friendly Hypothesis strategies shared by ``tests/property/``.
* :mod:`repro.testkit.stats` — the one shared tolerance helper for
  chi-square / KS statistical assertions, so thresholds cannot drift
  between test files.
* :mod:`repro.testkit.oracle` — differential checks of any sampler stream
  against a brute-force in-memory reference: exact result-set containment,
  duplicate detection, clock monotonicity, and statistical prefix
  uniformity.
* :mod:`repro.testkit.harness` — the fuzz loop racing the ACE Tree,
  B+-Tree, and permuted-file samplers against the oracle under clean and
  fault-injected runs plus a cold-then-warm sample-cache pass, with
  deliberately-broken mutant modes (Combine drops cells; the cache serves
  stale entries) for validating the oracle itself.
* :mod:`repro.testkit.serve` — the serve-mode twin (``fuzz --serve``):
  seeded multi-tenant scenarios race the deterministic serve scheduler
  against solo runs of the same queries (scheduling must never leak
  into results), plus fairness/accounting checks and the
  unfair-scheduler/budget-leak mutants (see docs/SERVING.md).
* :mod:`repro.testkit.cli` — ``python -m repro testkit fuzz|replay``.

See ``docs/TESTING.md`` for the fault taxonomy, the oracle's equivalence
criteria, and the replay workflow.
"""

from .faults import FAULT_KINDS, FaultEvent, FaultPlan, FaultyDisk
from .harness import (
    MUTATIONS,
    FuzzReport,
    ScenarioVerdict,
    StaleSampleCache,
    fuzz,
    replay,
    run_scenario,
)
from .generators import Scenario, generate_scenario, make_records
from .oracle import DifferentialReport, check_stream, reference_matching
from .serve import (
    SERVE_MUTATIONS,
    BudgetLeakScheduler,
    ServeScenario,
    ServeVerdict,
    UnfairScheduler,
    fairness_bound,
    fuzz_serve,
    generate_serve_scenario,
    replay_serve,
    run_serve_scenario,
)
from .stats import ChiSquareResult, assert_uniform, chi_square, prefix_vs_population

__all__ = [
    "BudgetLeakScheduler",
    "ChiSquareResult",
    "DifferentialReport",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultyDisk",
    "FuzzReport",
    "MUTATIONS",
    "SERVE_MUTATIONS",
    "Scenario",
    "ScenarioVerdict",
    "ServeScenario",
    "ServeVerdict",
    "StaleSampleCache",
    "UnfairScheduler",
    "assert_uniform",
    "check_stream",
    "chi_square",
    "fairness_bound",
    "fuzz",
    "fuzz_serve",
    "generate_scenario",
    "generate_serve_scenario",
    "make_records",
    "prefix_vs_population",
    "reference_matching",
    "replay",
    "replay_serve",
    "run_scenario",
    "run_serve_scenario",
]
