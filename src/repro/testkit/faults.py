"""Deterministic fault injection for the simulated disk.

:class:`FaultyDisk` is a drop-in :class:`~repro.storage.disk.SimulatedDisk`
that consults a :class:`FaultPlan` before every page access.  The plan has
two modes:

* **schedule mode** — built from a seed and per-kind rates; each access
  makes exactly one deterministic RNG draw to decide whether (and how) to
  inject.  Every injected event is recorded.
* **replay mode** — built from a list of recorded :class:`FaultEvent`\\ s;
  faults fire at exactly the recorded ``(op, ordinal)`` positions with the
  recorded parameters, and no RNG is consulted at all.

Because injection is keyed on the *ordinal* of the access (the n-th read /
n-th write since the disk was created), a replay against the same workload
reproduces the identical fault sequence, which is the foundation of the
``python -m repro testkit replay`` workflow.

**Scopes (interleaved workloads).**  A single global ordinal couples the
fault schedule to the exact interleaving of accesses — fatal for the serve
scheduler, where the order in which tenants hit the disk is a scheduling
decision, not a property of any one tenant's workload.  :class:`FaultyDisk`
therefore carries a mutable :attr:`~FaultyDisk.scope` (the serve scheduler
sets it to the active tenant around every quantum) and counts ordinals
**per (op, scope)**.  Schedule-mode draws use one RNG stream per
``(op, scope)`` and replay slots key on ``(op, scope, ordinal)``, so a
tenant's fault schedule depends only on its own access sequence: the same
faults fire solo, under any interleaving, and under ``testkit replay``.
The default scope ``""`` preserves the historical single-stream behaviour
bit for bit, and scope-less serialized events load unchanged.

The taxonomy (see ``docs/TESTING.md``):

``transient``
    The read attempt fails with
    :class:`~repro.core.errors.TransientPageError`.  The attempt still
    pays its seek/transfer time (the arm moved, the platter spun) but
    transfers no data, so ``page_reads``/``bytes_read`` are *not*
    incremented.  Recoverable via :func:`repro.storage.recovery.read_page_resilient`.
``corrupt``
    One bit of the stored page is flipped before the read is served.  The
    page's checksum (recorded at write time) no longer matches, so the
    read raises :class:`~repro.core.errors.PageCorruptionError` — a
    *persistent* fault that retries cannot fix.
``torn``
    A write is acknowledged but only a prefix of the page reaches the
    platter; the tail reads back as zeros.  The checksum covers the
    intended bytes, so the tear is detected on the next read of that page
    (unless the torn tail was zeros anyway, in which case the tear is
    harmless — also realistic).
``latency``
    The access succeeds but an extra deterministic delay is charged to
    the simulated clock via :meth:`SimulatedDisk.charge_io`.

A :class:`FaultyDisk` with an empty plan is *bit-identical* to a plain
``SimulatedDisk`` on the simulated clock and every counter: the fast path
makes no RNG draws and charges nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ReproError, TransientPageError
from ..core.rng import derive_random
from ..obs.flight import FLIGHT
from ..storage.cost import CostModel
from ..storage.disk import SimulatedDisk

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan", "FaultyDisk"]

#: ``(op, kind)`` pairs the injector understands, also the rate-dict keys
#: of schedule mode (e.g. ``{"read.transient": 0.01}``).
FAULT_KINDS: tuple[str, ...] = (
    "read.transient",
    "read.corrupt",
    "read.latency",
    "write.torn",
    "write.latency",
)

#: Injected latency spikes are drawn uniformly from this range (simulated
#: seconds) — an order of magnitude above a seek, below a full retry storm.
_LATENCY_RANGE = (0.01, 0.1)


class FaultPlanError(ReproError):
    """A fault plan was malformed (bad rates, bad serialized form)."""


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, fully determined: replaying it needs no RNG.

    ``op`` is ``"read"`` or ``"write"``; ``ordinal`` is the index of the
    access among all accesses of that op *within its scope* since disk
    creation (``scope=""`` — the default — is the whole-disk scope).
    ``detail`` carries the kind-specific parameters (``bit`` for
    ``corrupt``, ``keep_bytes`` for ``torn``, ``seconds`` for ``latency``).
    """

    op: str
    ordinal: int
    kind: str
    page: int
    detail: dict = field(default_factory=dict)
    scope: str = ""

    def as_dict(self) -> dict:
        out = {"op": self.op, "ordinal": self.ordinal,
               "kind": self.kind, "page": self.page}
        if self.detail:
            out["detail"] = dict(self.detail)
        # Omitted when default: scope-less payloads stay v1-identical.
        if self.scope:
            out["scope"] = self.scope
        return out

    @classmethod
    def from_dict(cls, obj: dict) -> "FaultEvent":
        try:
            return cls(
                op=obj["op"], ordinal=obj["ordinal"], kind=obj["kind"],
                page=obj["page"], detail=dict(obj.get("detail", {})),
                scope=obj.get("scope", ""),
            )
        except (KeyError, TypeError) as exc:
            raise FaultPlanError(f"malformed fault event {obj!r}") from exc


class FaultPlan:
    """Decides, deterministically, which accesses fault and how.

    Args:
        seed: base seed for schedule-mode draws (ignored in replay mode).
        rates: per-kind injection probabilities, keyed by :data:`FAULT_KINDS`
            entries.  Omitted kinds never fire.  An empty/None dict is the
            *null plan*: nothing fires and no RNG is ever consulted.
        events: recorded events to replay.  Passing this switches the plan
            to replay mode (``rates`` must then be None).

    Every event that actually fires — in either mode — is appended to
    :attr:`injected`, so a schedule-mode run can be frozen via
    :meth:`to_replay` and re-run exactly.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: dict[str, float] | None = None,
        events: list[FaultEvent] | None = None,
    ) -> None:
        if events is not None and rates:
            raise FaultPlanError("a plan is either scheduled (rates) or "
                                 "replayed (events), not both")
        self.seed = seed
        self.rates = dict(rates) if rates else {}
        for key, rate in self.rates.items():
            if key not in FAULT_KINDS:
                raise FaultPlanError(
                    f"unknown fault kind {key!r}; expected one of {FAULT_KINDS}"
                )
            if not 0.0 <= rate <= 1.0:
                raise FaultPlanError(f"rate for {key!r} must be in [0, 1], got {rate}")
        self.events = list(events) if events is not None else None
        self.injected: list[FaultEvent] = []  # repro: shared[owner=serve.scheduler] appended per access; serve runs append only under the scheduler's step quantum
        if self.events is not None:
            self._by_slot = {(e.op, e.scope, e.ordinal): e for e in self.events}
        else:
            self._by_slot = None
        # One private stream per (op, scope) so neither read/write nor
        # cross-scope interleaving can perturb another stream's draws.
        self._streams: dict[tuple[str, str], object] = {}

    # -- introspection -----------------------------------------------------

    @property
    def mode(self) -> str:
        return "replay" if self.events is not None else "schedule"

    @property
    def active(self) -> bool:
        """Whether this plan can ever fire (False for the null plan)."""
        if self.events is not None:
            return bool(self.events)
        return any(rate > 0.0 for rate in self.rates.values())

    # -- the injection decision --------------------------------------------

    def draw(
        self, op: str, ordinal: int, page: int, page_size: int, scope: str = ""
    ) -> FaultEvent | None:
        """The fault (if any) for access ``(op, scope, ordinal)`` on ``page``.

        Deterministic: in replay mode a dictionary lookup; in schedule mode
        exactly one uniform draw per access (plus parameter draws only when
        a fault fires), from a stream derived solely from the plan seed and
        the scope — so one scope's schedule is independent of how its
        accesses interleave with any other scope's.
        """
        if self._by_slot is not None:
            return self._by_slot.get((op, scope, ordinal))
        kinds = [(k, r) for k, r in self.rates.items()
                 if k.startswith(op + ".") and r > 0.0]
        if not kinds:
            return None
        rng = self._streams.get((op, scope))
        if rng is None:
            # The unscoped tags match the historical per-op derivation bit
            # for bit, so every pre-scope schedule replays unchanged.
            tags = ("testkit-faults", op) if not scope else (
                "testkit-faults", op, scope
            )
            rng = derive_random(self.seed, *tags)
            self._streams[(op, scope)] = rng
        u = rng.random()
        acc = 0.0
        for key, rate in kinds:
            acc += rate
            if u < acc:
                kind = key.split(".", 1)[1]
                return FaultEvent(op, ordinal, kind, page,
                                  self._draw_detail(kind, rng, page_size),
                                  scope)
        return None

    def record(self, event: FaultEvent) -> None:
        """Note that ``event`` actually fired against the workload."""
        self.injected.append(event)
        if FLIGHT.enabled:
            FLIGHT.record_fault(event.as_dict())

    @staticmethod
    def _draw_detail(kind: str, rng, page_size: int) -> dict:
        if kind == "corrupt":
            return {"bit": rng.randrange(page_size * 8)}
        if kind == "torn":
            return {"keep_bytes": rng.randrange(page_size)}
        if kind == "latency":
            lo, hi = _LATENCY_RANGE
            return {"seconds": lo + (hi - lo) * rng.random()}
        return {}

    # -- (de)serialization -------------------------------------------------

    def to_replay(self) -> "FaultPlan":
        """Freeze the events injected so far into a replay-mode plan."""
        return FaultPlan(seed=self.seed, events=list(self.injected))

    def as_dict(self) -> dict:
        out: dict = {"v": 1, "mode": self.mode, "seed": self.seed}
        if self.mode == "schedule":
            out["rates"] = dict(self.rates)
        else:
            out["events"] = [e.as_dict() for e in self.events or []]
        out["injected"] = [e.as_dict() for e in self.injected]
        return out

    @classmethod
    def from_dict(cls, obj: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`as_dict` output.

        A serialized *schedule* plan comes back as a schedule plan (same
        seed and rates reproduce the same draws); a *replay* plan comes
        back with its event list.  The ``injected`` log is not restored —
        the rebuilt plan re-records as it runs.
        """
        if not isinstance(obj, dict) or obj.get("v") != 1:
            raise FaultPlanError(f"unsupported fault plan payload: {obj!r}")
        mode = obj.get("mode")
        if mode == "schedule":
            return cls(seed=obj.get("seed", 0), rates=obj.get("rates") or {})
        if mode == "replay":
            events = [FaultEvent.from_dict(e) for e in obj.get("events", [])]
            return cls(seed=obj.get("seed", 0), events=events)
        raise FaultPlanError(f"unknown fault plan mode {mode!r}")


class FaultyDisk(SimulatedDisk):
    """A :class:`SimulatedDisk` that injects faults per a :class:`FaultPlan`.

    With the null plan (the default), behaviour — clock, stats, bytes — is
    bit-identical to the parent class.  Setting :attr:`armed` to False
    temporarily disables injection *and* ordinal counting, so a harness can
    exempt a phase (e.g. build) while keeping replay ordinals aligned.

    :attr:`scope` names the stream of accesses currently hitting the disk
    (``""`` by default).  The serve scheduler sets it to the active tenant
    for the duration of each scheduling quantum; ordinals are counted per
    ``(op, scope)``, decoupling every tenant's fault schedule from the
    interleaving.
    """

    can_fault = True

    def __init__(
        self,
        page_size: int = 8192,
        cost: CostModel | None = None,
        checksums: bool = True,
        plan: FaultPlan | None = None,
    ) -> None:
        super().__init__(page_size, cost, checksums)
        self.plan = plan if plan is not None else FaultPlan()
        self.armed = True
        #: Ordinal namespace for subsequent accesses (set by the scheduler).
        self.scope = ""
        self._read_ordinals: dict[str, int] = {}
        self._write_ordinals: dict[str, int] = {}

    def read_page(self, pid: int) -> bytes:
        if not (self.armed and self.plan.active):
            return super().read_page(pid)
        scope = self.scope
        ordinal = self._read_ordinals.get(scope, 0)
        self._read_ordinals[scope] = ordinal + 1
        event = self.plan.draw("read", ordinal, pid, self.page_size, scope)
        if event is None:
            return super().read_page(pid)
        if event.kind == "latency":
            self.charge_io(event.detail["seconds"])
            self.plan.record(event)
            return super().read_page(pid)
        if event.kind == "transient":
            # The attempt seeks and spins but transfers nothing: charge the
            # access, leave page/byte counters alone.
            self._charge_access(pid)
            self.plan.record(event)
            raise TransientPageError(
                f"injected transient read error on page {pid} "
                f"(ordinal {event.ordinal})"
            )
        if event.kind == "corrupt":
            # Flip a stored bit behind the checksum's back; only pages that
            # were actually written can rot (an unwritten page has neither
            # data nor a checksum to contradict it).
            if pid in self._pages:
                self._flip_bit(pid, event.detail["bit"])
                self.plan.record(event)
            return super().read_page(pid)
        raise FaultPlanError(f"unknown read fault kind {event.kind!r}")

    def touch_page(self, pid: int) -> None:
        # A memo-backed touch must stay access-for-access identical to a
        # real read under injection: same ordinals, same fault kinds, same
        # checksum verification of the (possibly rotted) stored bytes.
        self.read_page(pid)

    def touch_pages(self, pids) -> None:
        for pid in pids:
            self.read_page(pid)

    def write_page(self, pid: int, data: bytes) -> None:
        if not (self.armed and self.plan.active):
            super().write_page(pid, data)
            return
        scope = self.scope
        ordinal = self._write_ordinals.get(scope, 0)
        self._write_ordinals[scope] = ordinal + 1
        event = self.plan.draw("write", ordinal, pid, self.page_size, scope)
        if event is None:
            super().write_page(pid, data)
            return
        if event.kind == "latency":
            self.charge_io(event.detail["seconds"])
            self.plan.record(event)
            super().write_page(pid, data)
            return
        if event.kind == "torn":
            # The full write is charged and acknowledged (checksum covers
            # the intended bytes) but only a prefix lands; the zero tail is
            # caught by the stale checksum on the next read.
            super().write_page(pid, data)
            keep = event.detail["keep_bytes"]
            full = self._pages[pid]
            self._pages[pid] = full[:keep] + bytes(self.page_size - keep)
            self.plan.record(event)
            return
        raise FaultPlanError(f"unknown write fault kind {event.kind!r}")

    def _flip_bit(self, pid: int, bit: int) -> None:
        data = bytearray(self._pages[pid])
        data[(bit // 8) % len(data)] ^= 1 << (bit % 8)
        self._pages[pid] = bytes(data)
