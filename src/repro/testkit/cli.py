"""``python -m repro testkit fuzz|replay`` — the differential fuzz harness.

Exit codes follow the repo convention: ``0`` all checks passed, ``1`` the
oracle found at least one failure (or a replay did not reproduce), ``2``
usage/configuration error.  ``fuzz`` writes the first failing case as a
replay payload (JSON) so the exact fault sequence can be re-run::

    python -m repro testkit fuzz --seed 7 --iterations 40
    python -m repro testkit fuzz --mutation combine-drop   # oracle self-test
    python -m repro testkit fuzz --mutation cache-stale    # cache-oracle self-test
    python -m repro testkit fuzz --mutation shared-memo    # sanitizer self-test
    python -m repro testkit fuzz --sanitize-access         # confinement proof
    python -m repro testkit fuzz --serve                   # solo-vs-interleaved
    python -m repro testkit fuzz --serve --mutation unfair-scheduler
    python -m repro testkit fuzz --serve --mutation budget-leak
    python -m repro testkit replay testkit_failure.json

``--serve`` switches to the serve-scheduler oracle
(:mod:`repro.testkit.serve`): seeded multi-tenant scenarios race the
deterministic scheduler against isolated sequential runs of the same
queries.  Serve replay payloads carry ``mode="serve"`` and ``replay``
dispatches on it automatically.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from ..obs.flight import write_dump
from .faults import FaultPlanError
from .harness import MUTATIONS, fuzz, replay
from .serve import SERVE_MUTATIONS, fuzz_serve, replay_serve

__all__ = ["add_testkit_parser", "run_testkit"]


def add_testkit_parser(sub) -> None:
    """Register the ``testkit`` subcommand on a subparsers object."""
    testkit = sub.add_parser(
        "testkit",
        help="fault-injection fuzzing of the samplers against a brute-force "
        "oracle (see docs/TESTING.md)",
    )
    mode = testkit.add_subparsers(dest="testkit_command", required=True)

    fuzz_p = mode.add_parser(
        "fuzz", help="run generated scenarios, clean and fault-injected"
    )
    fuzz_p.add_argument("--seed", type=int, default=0,
                        help="fuzz seed (default 0)")
    fuzz_p.add_argument("--iterations", type=int, default=20,
                        help="generated scenarios to run (default 20)")
    fuzz_p.add_argument("--no-faults", action="store_true",
                        help="clean runs only: skip the fault-injected phase")
    fuzz_p.add_argument("--serve", action="store_true",
                        help="fuzz the multi-tenant serve scheduler with the "
                        "solo-vs-interleaved differential oracle")
    fuzz_p.add_argument("--mutation", choices=MUTATIONS + SERVE_MUTATIONS,
                        default=None,
                        help="sabotage the engine under test (oracle "
                        "self-test: the run must FAIL); serve mutations "
                        "require --serve")
    fuzz_p.add_argument("--max-failures", type=int, default=8,
                        help="stop after this many failing cases (default 8)")
    fuzz_p.add_argument("--sanitize-access", action="store_true",
                        help="arm the access-ordinal sanitizer on every run "
                        "(on by default only for --mutation shared-memo)")
    fuzz_p.add_argument("--out", type=Path, default=Path("testkit_failure.json"),
                        help="replay payload file for the first failing case "
                        "(default testkit_failure.json)")

    replay_p = mode.add_parser(
        "replay", help="re-run a recorded failing case deterministically"
    )
    replay_p.add_argument("payload", type=Path,
                          help="replay payload written by a failing fuzz run")


def _run_fuzz(args) -> int:
    if args.iterations <= 0 or args.max_failures <= 0:
        print("testkit fuzz: --iterations and --max-failures must be positive",
              file=sys.stderr)
        return 2
    if args.mutation in SERVE_MUTATIONS and not args.serve:
        print(f"testkit fuzz: --mutation {args.mutation} requires --serve",
              file=sys.stderr)
        return 2
    if args.serve and args.mutation in MUTATIONS:
        print(f"testkit fuzz: --mutation {args.mutation} is a sampler "
              "mutation; drop --serve", file=sys.stderr)
        return 2
    engine = fuzz_serve if args.serve else fuzz
    report = engine(
        seed=args.seed,
        iterations=args.iterations,
        with_faults=not args.no_faults,
        mutation=args.mutation,
        max_failures=args.max_failures,
        sanitize=True if args.sanitize_access else None,
    )
    print(f"testkit fuzz: seed={report.seed} scenarios={report.scenarios_run} "
          f"queries={report.queries_checked} "
          f"injected_faults={report.injected_events} "
          f"failures={len(report.failures)}")
    if report.ok:
        print("testkit fuzz: all oracle checks passed")
        return 0
    first = report.failures[0]
    for line in first["failures"]:
        print(f"testkit fuzz: FAIL {line}", file=sys.stderr)
    args.out.write_text(json.dumps(first, indent=2, sort_keys=True) + "\n")
    print(f"testkit fuzz: replay payload -> {args.out}", file=sys.stderr)
    flight = first.get("flight")
    if flight and flight.get("events"):
        dump_path = args.out.with_suffix(".flight.jsonl")
        write_dump(flight["events"], dump_path, flight["reason"],
                   dropped=flight.get("dropped", 0))
        print(f"testkit fuzz: flight dump -> {dump_path}", file=sys.stderr)
        _diff_replay_flight(first)
    return 1


def _diff_replay_flight(first: dict) -> None:
    """Classify the first failure: does a replay fly the same way?

    Re-runs the failing case under a fresh flight recording and
    lockstep-diffs the deterministic views of the two event sequences
    (:func:`repro.obs.analyze.diff_event_views`, wall keys stripped).
    An empty diff means the failure replays event-for-event — a
    deterministic bug, not flaky fault timing; a non-empty one names the
    first divergent event.  Advisory only: the exit code is already 1.
    """
    from ..obs.analyze import diff_event_views
    from ..obs.flight import FLIGHT

    recorded = first["flight"]["events"]
    replayer = replay_serve if first.get("mode") == "serve" else replay
    try:
        with FLIGHT.recording():
            replayer(first)
            FLIGHT.trip(first["flight"]["reason"])
            replayed = FLIGHT.snapshot()
    except (ValueError, FaultPlanError, KeyError) as exc:
        print(f"testkit fuzz: flight diff skipped ({exc})", file=sys.stderr)
        return
    verdict = diff_event_views(recorded, replayed)
    if verdict["identical"]:
        print("testkit fuzz: flight diff: replay is event-identical over "
              f"{verdict['aligned']} event(s) — deterministic failure",
              file=sys.stderr)
    else:
        print("testkit fuzz: flight diff: replay DIVERGED — first divergent "
              f"{verdict['first_divergent']}", file=sys.stderr)


def _run_replay(args) -> int:
    try:
        payload = json.loads(args.payload.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"testkit replay: cannot read {args.payload}: {exc}",
              file=sys.stderr)
        return 2
    replayer = replay_serve if payload.get("mode") == "serve" else replay
    try:
        verdict, plan = replayer(payload)
    except (ValueError, FaultPlanError, KeyError) as exc:
        print(f"testkit replay: malformed payload: {exc}", file=sys.stderr)
        return 2
    recorded = payload["plan"].get("events", [])
    replayed = [event.as_dict() for event in plan.injected]
    print(f"testkit replay: scenario seed={verdict.scenario.seed} "
          f"injected={len(replayed)} recorded={len(recorded)}")
    drift = replayed != recorded
    expected = payload.get("failures", [])
    reproduced = verdict.failure_lines == expected
    if drift:
        print("testkit replay: FAULT SEQUENCE DRIFT — the workload no longer "
              "replays access-for-access (code change since recording?)",
              file=sys.stderr)
    if not reproduced:
        print("testkit replay: verdict differs from the recorded run "
              f"({len(verdict.failure_lines)} vs {len(expected)} failures)",
              file=sys.stderr)
    for line in verdict.failure_lines:
        print(f"testkit replay: FAIL {line}", file=sys.stderr)
    if verdict.failure_lines or drift or not reproduced:
        if reproduced and not drift:
            # Faithfully reproducing a recorded failure still exits
            # non-zero — the engine under test is failing, like the
            # original run said.
            print("testkit replay: reproduced the recorded verdict exactly")
        return 1
    print("testkit replay: clean run reproduced (no failures)")
    return 0


def run_testkit(args) -> int:
    if args.testkit_command == "fuzz":
        return _run_fuzz(args)
    return _run_replay(args)
