"""Ripple joins: online aggregation over a join of two sample streams.

The paper motivates sample views with online aggregation and cites Haas &
Hellerstein's ripple joins (its reference [4]) as the mechanism for
multi-table queries: both relations are consumed in random order, and at
every step the join of the current samples yields an unbiased estimate of
the full join aggregate.  Two ACE-Tree sample streams are exactly the
random-order inputs a ripple join needs — including the ability to
restrict each side with its own range predicate first.

This implements the *square* ripple join for SUM/COUNT/AVG:

* after ``n_r`` samples of R and ``n_s`` samples of S, the unbiased SUM
  estimate is ``(N_R * N_S) / (n_r * n_s) * sum(v(r, s))`` over matching
  sampled pairs, where ``N_R``/``N_S`` are the (matching-)population sizes
  the streams sample from;
* confidence intervals use grouped jackknife-style batch means: the R
  samples are split into ``B`` groups, each group's scaled estimate is an
  (approximately) independent replicate given the current S sample, and
  the spread of the replicates bounds the estimator's error.  This is a
  practical simplification of Haas & Hellerstein's variance analysis and
  is validated empirically in the test suite.

Equi-joins get a hash fast path (``r_key`` / ``s_key``); arbitrary
predicates fall back to nested-loop evaluation over the sampled corner.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterator

from scipy import stats

from ..core.errors import EstimatorError
from ..core.records import Record

__all__ = ["RippleJoin", "JoinProgressPoint", "ripple_join_streams"]


class RippleJoin:
    """Square ripple join estimator for ``SUM/COUNT(v(r, s))`` aggregates.

    Args:
        value_of: value of one joined pair (use ``lambda r, s: 1.0`` for
            COUNT).
        population_r: number of records the R stream samples from.
        population_s: number of records the S stream samples from.
        r_key / s_key: optional equi-join keys; when both are given,
            matching pairs are found via hash lookup and ``predicate`` is
            skipped.
        predicate: general join condition (ignored when keys are given).
        confidence: two-sided level for :meth:`sum_interval`.
        groups: number of batch-means groups for the variance estimate.
    """

    def __init__(
        self,
        value_of: Callable[[Record, Record], float],
        population_r: float,
        population_s: float,
        r_key: Callable[[Record], object] | None = None,
        s_key: Callable[[Record], object] | None = None,
        predicate: Callable[[Record, Record], bool] | None = None,
        confidence: float = 0.95,
        groups: int = 10,
    ) -> None:
        if population_r <= 0 or population_s <= 0:
            raise EstimatorError("populations must be positive")
        if not 0 < confidence < 1:
            raise EstimatorError(f"confidence must be in (0, 1), got {confidence}")
        if groups < 2:
            raise EstimatorError(f"need at least 2 groups, got {groups}")
        if (r_key is None) != (s_key is None):
            raise EstimatorError("provide both r_key and s_key, or neither")
        if r_key is None and predicate is None:
            raise EstimatorError("need either equi-join keys or a predicate")
        self._value_of = value_of
        self.population_r = population_r
        self.population_s = population_s
        self._r_key = r_key
        self._s_key = s_key
        self._predicate = predicate
        self.confidence = confidence
        self.groups = groups

        self._r_samples: list[Record] = []
        self._s_samples: list[Record] = []
        # Equi-join hash state: key -> list of sampled records.
        self._r_by_key: dict = defaultdict(list)
        self._s_by_key: dict = defaultdict(list)
        # Running sums: total and per R-group.
        self._sum = 0.0
        self._group_sums = [0.0] * groups
        self._group_counts = [0] * groups

    # -- consuming samples -----------------------------------------------------

    @property
    def samples_r(self) -> int:
        return len(self._r_samples)

    @property
    def samples_s(self) -> int:
        return len(self._s_samples)

    def add_r(self, records) -> None:
        """Fold new R samples in, joining them against the current S corner."""
        for record in records:
            group = len(self._r_samples) % self.groups
            self._r_samples.append(record)
            self._group_counts[group] += 1
            if self._r_key is not None:
                key = self._r_key(record)
                self._r_by_key[key].append((record, group))
                for s_record in self._s_by_key.get(key, ()):
                    self._account(record, s_record, group)
            else:
                for s_record in self._s_samples:
                    if self._predicate(record, s_record):
                        self._account(record, s_record, group)

    def add_s(self, records) -> None:
        """Fold new S samples in, joining them against the current R corner."""
        for record in records:
            self._s_samples.append(record)
            if self._s_key is not None:
                key = self._s_key(record)
                self._s_by_key[key].append(record)
                for r_record, group in self._r_by_key.get(key, ()):
                    self._account(r_record, record, group)
            else:
                for group_offset, r_record in enumerate(self._r_samples):
                    if self._predicate(r_record, record):
                        self._account(r_record, record, group_offset % self.groups)

    def _account(self, r_record: Record, s_record: Record, group: int) -> None:
        value = self._value_of(r_record, s_record)
        self._sum += value
        self._group_sums[group] += value

    # -- estimates ----------------------------------------------------------------

    @property
    def scale(self) -> float:
        """The Horvitz-Thompson scale-up factor for the sampled corner."""
        if not self._r_samples or not self._s_samples:
            raise EstimatorError("need samples from both inputs")
        return (self.population_r * self.population_s) / (
            len(self._r_samples) * len(self._s_samples)
        )

    @property
    def sum_estimate(self) -> float:
        """Unbiased estimate of ``SUM(v)`` over the full join."""
        return self.scale * self._sum

    def sum_interval(self) -> tuple[float, float]:
        """Batch-means confidence interval for the SUM estimate."""
        replicates = self._group_replicates()
        if len(replicates) < 2:
            return -math.inf, math.inf
        center = self.sum_estimate
        spread = _sample_std(replicates)
        z = stats.norm.ppf(0.5 + self.confidence / 2)
        half = z * spread / math.sqrt(len(replicates))
        return center - half, center + half

    def _group_replicates(self) -> list[float]:
        """Per-group scaled estimates (approximately iid given the S corner)."""
        if not self._s_samples:
            return []
        out = []
        for group_sum, group_count in zip(self._group_sums, self._group_counts):
            if group_count == 0:
                continue
            scale = (self.population_r * self.population_s) / (
                group_count * len(self._s_samples)
            )
            out.append(scale * group_sum)
        return out

    def relative_half_width(self) -> float:
        lo, hi = self.sum_interval()
        estimate = self.sum_estimate
        if not math.isfinite(lo) or estimate == 0:
            return math.inf
        return (hi - lo) / 2 / abs(estimate)


def _sample_std(values: list[float]) -> float:
    n = len(values)
    mean = sum(values) / n
    return math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))


@dataclass(frozen=True, slots=True)
class JoinProgressPoint:
    """One progress report of a ripple-join session."""

    clock: float
    samples_r: int
    samples_s: int
    estimate: float
    low: float
    high: float


def ripple_join_streams(
    batches_r: Iterator,
    batches_s: Iterator,
    join: RippleJoin,
    target_relative_width: float | None = None,
    max_samples: int | None = None,
) -> Iterator[JoinProgressPoint]:
    """Drive a ripple join by alternating between two sample-batch streams.

    The square ripple join draws from R and S alternately; here one batch
    of each per round.  Progress points carry the later of the two batch
    clocks (both streams share the simulated disk in our experiments, so
    clocks are comparable).  Stops when the relative CI half-width reaches
    ``target_relative_width``, when ``max_samples`` (of R+S) have been
    consumed, or when both streams are exhausted.
    """
    exhausted_r = exhausted_s = False
    while not (exhausted_r and exhausted_s):
        clock = None
        batch_r = next(batches_r, None)
        if batch_r is None:
            exhausted_r = True
        else:
            join.add_r(batch_r.records)
            clock = batch_r.clock
        batch_s = next(batches_s, None)
        if batch_s is None:
            exhausted_s = True
        else:
            join.add_s(batch_s.records)
            clock = batch_s.clock if clock is None else max(clock, batch_s.clock)
        if clock is None:
            break
        if join.samples_r and join.samples_s:
            low, high = join.sum_interval()
            yield JoinProgressPoint(
                clock=clock,
                samples_r=join.samples_r,
                samples_s=join.samples_s,
                estimate=join.sum_estimate,
                low=low,
                high=high,
            )
            if (
                target_relative_width is not None
                and join.relative_half_width() <= target_relative_width
            ):
                return
        if (
            max_samples is not None
            and join.samples_r + join.samples_s >= max_samples
        ):
            return
