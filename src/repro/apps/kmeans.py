"""Scalable clustering over an online sample stream.

The paper motivates the ACE Tree with data-mining algorithms that consume a
*randomized input ordering* — its flagship citation is Bradley et al.'s
scalable K-means.  This module implements the sampling-driven variant of
that idea: mini-batch K-means fed by an online random sample, stopping once
additional samples stop moving the centroids ("incorporating samples into a
learned model one-at-a-time until the marginal accuracy of adding an
additional sample is small").

Because the ACE stream's every prefix is a uniform random sample of the
selected records, the clusterer sees an unbiased, shuffled view of the
selection at all times — the property block-based samples (Section II.C)
cannot offer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from ..core.errors import EstimatorError
from ..core.records import Record
from ..core.rng import derive

__all__ = ["StreamingKMeans", "KMeansReport"]


@dataclass
class KMeansReport:
    """What a fit consumed and how it converged."""

    records_consumed: int = 0
    batches_consumed: int = 0
    final_shift: float = math.inf
    converged: bool = False
    inertia_history: list[float] = field(default_factory=list)


class StreamingKMeans:
    """Mini-batch K-means over record streams.

    Args:
        k: number of clusters.
        point_of: maps a record to its feature vector.
        seed: seeds the centroid initialization.
    """

    def __init__(
        self,
        k: int,
        point_of: Callable[[Record], Sequence[float]],
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise EstimatorError(f"k must be >= 1, got {k}")
        self.k = k
        self._point_of = point_of
        self._rng = derive(seed, "kmeans")
        self.centers: np.ndarray | None = None
        self._counts: np.ndarray | None = None

    # -- fitting -----------------------------------------------------------

    def fit_stream(
        self,
        batches: Iterator,
        min_records: int = 200,
        max_records: int = 50_000,
        tolerance: float = 1e-3,
        patience: int = 3,
    ) -> KMeansReport:
        """Consume sample batches until the centroids stop moving.

        Convergence: the mean centroid shift (relative to the data scale)
        stays below ``tolerance`` for ``patience`` consecutive batches after
        at least ``min_records`` have been seen.
        """
        report = KMeansReport()
        calm_batches = 0
        for batch in batches:
            if not batch.records:
                continue
            points = np.array(
                [self._point_of(record) for record in batch.records], dtype=float
            )
            shift = self._partial_fit(points)
            report.records_consumed += len(points)
            report.batches_consumed += 1
            report.final_shift = shift
            report.inertia_history.append(self.inertia(points))
            if report.records_consumed >= min_records:
                calm_batches = calm_batches + 1 if shift < tolerance else 0
                if calm_batches >= patience:
                    report.converged = True
                    return report
            if report.records_consumed >= max_records:
                return report
        return report

    def _partial_fit(self, points: np.ndarray) -> float:
        """One mini-batch update; returns the mean relative center shift."""
        if self.centers is None:
            self._initialize(points)
            return math.inf
        assert self._counts is not None
        before = self.centers.copy()
        assignments = self._assign(points)
        for j in range(self.k):
            members = points[assignments == j]
            if not len(members):
                continue
            # Per-center learning rate 1/count: the online K-means rule.
            for point in members:
                self._counts[j] += 1
                eta = 1.0 / self._counts[j]
                self.centers[j] += eta * (point - self.centers[j])
        scale = float(np.abs(points).mean()) or 1.0
        return float(np.linalg.norm(self.centers - before, axis=1).mean()) / scale

    def _initialize(self, points: np.ndarray) -> None:
        """k-means++-style seeding from the first batch."""
        available = points
        if len(available) < self.k:
            # Duplicate points if the first batch is tiny; later batches
            # will pull the duplicated centers apart.
            reps = math.ceil(self.k / len(available))
            available = np.tile(available, (reps, 1))
        first = self._rng.integers(len(available))
        centers = [available[first]]
        for _ in range(1, self.k):
            d2 = np.min(
                [((available - c) ** 2).sum(axis=1) for c in centers], axis=0
            )
            total = d2.sum()
            if total <= 0:
                centers.append(available[self._rng.integers(len(available))])
                continue
            choice = self._rng.choice(len(available), p=d2 / total)
            centers.append(available[choice])
        self.centers = np.array(centers, dtype=float)
        self._counts = np.ones(self.k)

    # -- inference ------------------------------------------------------------

    def _assign(self, points: np.ndarray) -> np.ndarray:
        assert self.centers is not None
        distances = ((points[:, None, :] - self.centers[None, :, :]) ** 2).sum(
            axis=2
        )
        return distances.argmin(axis=1)

    def predict(self, records: Sequence[Record]) -> np.ndarray:
        """Cluster index for each record."""
        if self.centers is None:
            raise EstimatorError("model has not been fit yet")
        points = np.array([self._point_of(r) for r in records], dtype=float)
        return self._assign(points)

    def inertia(self, points: np.ndarray) -> float:
        """Mean squared distance of points to their assigned centers."""
        if self.centers is None:
            raise EstimatorError("model has not been fit yet")
        distances = ((points[:, None, :] - self.centers[None, :, :]) ** 2).sum(
            axis=2
        )
        return float(distances.min(axis=1).mean())
