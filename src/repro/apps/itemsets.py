"""Sampling-based frequent-item estimation over an online sample stream.

One-pass frequent-itemset miners "are typically useful only if the data are
processed in a randomized order so that the first few records are
distributed in the same way as latter ones" (paper Section I).  This module
provides that consumer: it estimates item frequencies from a growing random
sample and stops as soon as a Hoeffding bound certifies every item as
confidently above or below the support threshold.

Items are whatever ``items_of`` extracts from a record (e.g. the PART field
of SALE, or several fields treated as a basket).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator

from ..core.errors import EstimatorError
from ..core.records import Record

__all__ = ["FrequentItemEstimator", "ItemsetReport"]


@dataclass
class ItemsetReport:
    """Result of a sampling-based frequent-item run."""

    sample_size: int = 0
    epsilon: float = math.inf
    frequent: dict[Hashable, float] = field(default_factory=dict)
    undecided: dict[Hashable, float] = field(default_factory=dict)
    converged: bool = False


class FrequentItemEstimator:
    """Estimate item supports from a random sample with Hoeffding bounds.

    Args:
        items_of: maps a record to the (possibly several) items it
            contributes; each distinct item counts at most once per record.
        support: minimum support threshold (fraction of records).
        confidence: per-item confidence that a frequent/infrequent verdict
            is correct.
    """

    def __init__(
        self,
        items_of: Callable[[Record], Iterable[Hashable]],
        support: float,
        confidence: float = 0.95,
    ) -> None:
        if not 0 < support < 1:
            raise EstimatorError(f"support must be in (0, 1), got {support}")
        if not 0 < confidence < 1:
            raise EstimatorError(f"confidence must be in (0, 1), got {confidence}")
        self._items_of = items_of
        self.support = support
        self.confidence = confidence
        self._counts: Counter = Counter()  # repro: shared[confined] one estimator per stream consumer
        self._n = 0

    # -- updates ---------------------------------------------------------------

    def update(self, records: Iterable[Record]) -> None:
        for record in records:
            self._n += 1
            for item in set(self._items_of(record)):
                self._counts[item] += 1

    # -- estimates ----------------------------------------------------------------

    @property
    def sample_size(self) -> int:
        return self._n

    def epsilon(self) -> float:
        """Two-sided Hoeffding half-width at the configured confidence."""
        if self._n == 0:
            return math.inf
        delta = 1.0 - self.confidence
        return math.sqrt(math.log(2.0 / delta) / (2.0 * self._n))

    def frequency(self, item: Hashable) -> float:
        if self._n == 0:
            raise EstimatorError("no samples yet")
        return self._counts[item] / self._n

    def verdicts(self) -> ItemsetReport:
        """Classify every seen item as frequent, infrequent, or undecided."""
        report = ItemsetReport(sample_size=self._n, epsilon=self.epsilon())
        if self._n == 0:
            return report
        eps = report.epsilon
        undecided = {}
        for item, count in self._counts.items():
            freq = count / self._n
            if freq - eps >= self.support:
                report.frequent[item] = freq
            elif freq + eps > self.support:
                undecided[item] = freq
        report.undecided = undecided
        report.converged = not undecided
        return report

    def run(
        self,
        batches: Iterator,
        max_records: int = 100_000,
        check_every: int = 500,
    ) -> ItemsetReport:
        """Consume sample batches until every verdict is certified.

        Stops early once no item is within the Hoeffding band of the
        threshold (all verdicts confident), or at ``max_records``.
        """
        since_check = 0
        for batch in batches:
            self.update(batch.records)
            since_check += len(batch.records)
            if since_check >= check_every:
                since_check = 0
                report = self.verdicts()
                if report.converged and self._n > 0:
                    return report
            if self._n >= max_records:
                break
        return self.verdicts()
