"""Consumer applications the paper motivates: online aggregation,
scalable clustering, and sampling-based frequent-item mining."""

from .itemsets import FrequentItemEstimator, ItemsetReport
from .kmeans import KMeansReport, StreamingKMeans
from .online_agg import OnlineAggregator, ProgressPoint, aggregate_stream
from .ripple import JoinProgressPoint, RippleJoin, ripple_join_streams

__all__ = [
    "FrequentItemEstimator",
    "ItemsetReport",
    "JoinProgressPoint",
    "KMeansReport",
    "OnlineAggregator",
    "ProgressPoint",
    "RippleJoin",
    "StreamingKMeans",
    "aggregate_stream",
    "ripple_join_streams",
]
