"""Online aggregation over a sample view (the paper's motivating app).

Online aggregation (Hellerstein, Haas & Wang) consumes records one at a
time in random order and keeps the user updated with a running estimate
plus a probabilistic error bound.  The ACE Tree's online sample stream is
exactly the input this needs; the internal-node counts supply the
population size for the finite-population correction (paper Section III.B:
"these values can be used ... during evaluation of online aggregation
queries which require the size of the population from which we are
sampling").

Estimators are the standard CLT ones: the sample mean estimates AVG, and
``population * mean`` estimates SUM/COUNT.  Confidence intervals use a
normal approximation with the finite-population correction
``(N - n) / (N - 1)``, which drives the bound to zero as the sample
approaches the full matching population.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from scipy import stats

from ..core.errors import EstimatorError
from ..core.records import Record
from ..obs.context import CONTEXT
from ..obs.metrics import METRICS
from ..obs.tracer import TRACER

__all__ = ["OnlineAggregator", "ProgressPoint", "aggregate_stream"]


class OnlineAggregator:
    """Running AVG/SUM estimate with CLT confidence bounds.

    Args:
        value_of: extracts the aggregated numeric value from a record.
        population: number of records matching the predicate (exact or
            estimated from the ACE Tree's internal-node counts).
        confidence: two-sided confidence level for :meth:`interval`.
    """

    def __init__(
        self,
        value_of: Callable[[Record], float],
        population: float,
        confidence: float = 0.95,
    ) -> None:
        if population < 0:
            raise EstimatorError(f"population must be >= 0, got {population}")
        if not 0 < confidence < 1:
            raise EstimatorError(f"confidence must be in (0, 1), got {confidence}")
        self._value_of = value_of
        self.population = population
        self.confidence = confidence
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0  # Welford's sum of squared deviations

    # -- updates -----------------------------------------------------------

    def update(self, records: Iterable[Record]) -> None:
        """Fold new sample records into the running estimate."""
        value_of = self._value_of
        for record in records:
            value = value_of(record)
            self._count += 1
            delta = value - self._mean
            self._mean += delta / self._count
            self._m2 += delta * (value - self._mean)

    # -- estimates ----------------------------------------------------------

    @property
    def sample_size(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        """Running estimate of AVG(value)."""
        if self._count == 0:
            raise EstimatorError("no samples yet")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance of the values."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def total(self) -> float:
        """Running estimate of SUM(value) over the matching population."""
        return self.mean * self.population

    def mean_interval(self) -> tuple[float, float]:
        """Confidence interval for AVG at the configured level."""
        half = self.half_width()
        return self._mean - half, self._mean + half

    def sum_interval(self) -> tuple[float, float]:
        """Confidence interval for SUM at the configured level."""
        lo, hi = self.mean_interval()
        return lo * self.population, hi * self.population

    def half_width(self) -> float:
        """Half-width of the AVG confidence interval (CLT + FPC)."""
        if self._count == 0:
            raise EstimatorError("no samples yet")
        if self._count < 2:
            return math.inf
        z = stats.norm.ppf(0.5 + self.confidence / 2)
        fpc = 1.0
        if self.population > 1 and self._count < self.population:
            fpc = (self.population - self._count) / (self.population - 1)
        elif self._count >= self.population > 0:
            fpc = 0.0
        return z * math.sqrt(self.variance / self._count * fpc)

    def relative_half_width(self) -> float:
        """Half-width relative to the current estimate (inf if mean ~ 0)."""
        mean = self.mean
        if mean == 0:
            return math.inf
        return self.half_width() / abs(mean)


@dataclass(frozen=True, slots=True)
class ProgressPoint:
    """One progress report of an online-aggregation session."""

    clock: float
    sample_size: int
    mean: float
    mean_low: float
    mean_high: float


def aggregate_stream(
    batches: Iterator,
    value_of: Callable[[Record], float],
    population: float,
    confidence: float = 0.95,
    target_relative_width: float | None = None,
    max_records: int | None = None,
) -> Iterator[ProgressPoint]:
    """Drive an aggregator from a sample-batch stream, reporting progress.

    Yields one :class:`ProgressPoint` per consumed batch and stops early
    when the relative CI half-width drops below ``target_relative_width``
    or ``max_records`` have been consumed — the "sample until the answer is
    good enough" usage the paper motivates.
    """
    aggregator = OnlineAggregator(value_of, population, confidence)
    for batch in batches:
        if not batch.records:
            continue
        # One estimate tick per batch; the span carries the running error
        # and closes before the yield (no span across generator suspension).
        with TRACER.span("online_agg.tick", detail=True) as sp:
            aggregator.update(batch.records)
            low, high = aggregator.mean_interval()
            if TRACER.enabled:
                METRICS.counter("online_agg.records").labels(
                    **CONTEXT.labels()
                ).inc(len(batch.records))
            if sp is not None:
                sp.attrs["sample_size"] = aggregator.sample_size
                sp.attrs["mean"] = aggregator.mean
                sp.attrs["half_width"] = (high - low) / 2
                sp.attrs["clock"] = batch.clock
        yield ProgressPoint(
            clock=batch.clock,
            sample_size=aggregator.sample_size,
            mean=aggregator.mean,
            mean_low=low,
            mean_high=high,
        )
        if (
            target_relative_width is not None
            and aggregator.sample_size >= 2
            and aggregator.relative_half_width() <= target_relative_width
        ):
            return
        if max_records is not None and aggregator.sample_size >= max_records:
            return
