"""Text report over a recorded trace: where did both clocks go?

:func:`render_report` turns a flat span list (plus an optional metrics
registry snapshot) into the report printed by ``python -m repro trace``:

1. **Span aggregates** — per span name: call count, cumulative wall and
   simulated seconds, cumulative and *self* page reads.  Cumulative totals
   deliberately double-count nested spans (a parent includes its
   children); the *self* column is the exclusive cost.
2. **Page-read attribution** — what fraction of all simulated page reads
   landed inside *leaf* spans (spans with no children).  A healthy
   instrumentation layer attributes ≳95% of reads to leaves; the rest is
   unattributed glue.
3. **Per-level stab table** — from the ``stab.level.*`` counters: how many
   stab descents took the overlap branch vs. the round-robin drain branch
   at each tree level, plus pruned (deferred) children.
4. **Sampling-rate timeline** — from ``ace_query.stab`` spans: cumulative
   samples emitted vs. the simulated clock, the paper's headline curve.
5. **Quality** — when the run carried :mod:`repro.obs.quality` monitors:
   per-window uniformity verdicts, stratum coverage, the time-to-accuracy
   table, and the CI-half-width timeline (the statistical twin of the
   sampling-rate timeline).
6. **Cost attribution** — when the run carried a cost-accountant ledger
   (:mod:`repro.obs.cost`): charged page reads/writes per label set and
   the conservation verdict against the simulated disks' own totals.
7. **Metrics** — counters, gauges, and histogram tables; histograms that
   retained exemplars additionally list their tail-bucket → span links,
   resolving span ids to names when the spans are in scope.
"""

from __future__ import annotations

from .context import canonical_label_set, render_label_set
from .metrics import MetricsRegistry

__all__ = [
    "format_table",
    "page_read_attribution",
    "quality_sections",
    "render_report",
    "span_aggregates",
]


def span_aggregates(spans) -> dict:
    """Per-name totals: calls, wall/sim seconds, cumulative + self reads."""
    table: dict[str, dict] = {}
    for span in spans:
        row = table.get(span.name)
        if row is None:
            row = table[span.name] = {
                "calls": 0, "wall": 0.0, "sim": 0.0, "reads": 0, "self_reads": 0,
            }
        row["calls"] += 1
        row["wall"] += span.wall_seconds
        row["sim"] += span.sim_seconds
        row["reads"] += span.page_reads
        row["self_reads"] += span.self_page_reads
    return table


def page_read_attribution(spans) -> tuple[int, int]:
    """``(leaf_reads, total_reads)`` over a flat span list.

    *total* sums the root spans' cumulative page reads; *leaf* sums the
    reads of childless spans.  Spans never share reads (each simulated
    read happens inside exactly one innermost span), so leaf ≤ total and
    the ratio is the fraction of I/O the instrumentation pins to a
    specific operation.
    """
    total = sum(s.page_reads for s in spans if s.parent_id is None)
    leaf = sum(s.page_reads for s in spans if not s.children)
    return leaf, total


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Left-aligned first column, right-aligned numerics, dashed rule."""
    return _fmt_table(headers, rows)


def _fmt_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.rjust(w) if i else c.ljust(w)
                               for i, (c, w) in enumerate(zip(row, widths))).rstrip())
    return "\n".join(lines)


def _section_spans(spans, top: int) -> list[str]:
    table = span_aggregates(spans)
    headers = ["span", "calls", "wall s", "sim s", "reads", "self reads"]

    def rows(sort_key: str) -> list[list[str]]:
        ranked = sorted(table.items(), key=lambda kv: -kv[1][sort_key])[:top]
        return [
            [name, str(r["calls"]), f"{r['wall']:.4f}", f"{r['sim']:.4f}",
             str(r["reads"]), str(r["self_reads"])]
            for name, r in ranked
        ]

    out = ["== top spans by wall-clock time (cumulative) ==",
           _fmt_table(headers, rows("wall")), "",
           "== top spans by simulated time (cumulative) ==",
           _fmt_table(headers, rows("sim"))]
    return out


def _section_attribution(spans) -> list[str]:
    leaf, total = page_read_attribution(spans)
    pct = 100.0 * leaf / total if total else 100.0
    return [
        "== simulated page-read attribution ==",
        f"total page reads (root spans) : {total}",
        f"attributed to leaf spans      : {leaf}  ({pct:.1f}%)",
    ]


def _section_stab_levels(metrics_snapshot: dict) -> list[str]:
    counters = metrics_snapshot.get("counters", {})
    levels: dict[int, dict] = {}
    for name, value in counters.items():
        if not name.startswith("stab.level."):
            continue
        _, _, rest = name.partition("stab.level.")
        level_text, _, kind = rest.partition(".")
        level = int(level_text)
        levels.setdefault(level, {"overlap": 0, "drain": 0, "pruned": 0})[kind] = value
    if not levels:
        return []
    rows = [
        [str(level), str(row["overlap"]), str(row["drain"]), str(row["pruned"])]
        for level, row in sorted(levels.items())
    ]
    return [
        "== per-level stab table ==",
        _fmt_table(["level", "overlap descents", "drain descents", "pruned children"],
                   rows),
    ]


def _section_timeline(spans, buckets: int = 10) -> list[str]:
    stabs = [
        s for s in spans
        if s.name == "ace_query.stab" and s.end_sim is not None
        and "emitted" in s.attrs
    ]
    if not stabs:
        return []
    stabs.sort(key=lambda s: s.end_sim)
    start = min(s.start_sim for s in stabs)
    span_of_time = max(stabs[-1].end_sim - start, 1e-12)
    total = 0
    cutoffs = [start + span_of_time * (i + 1) / buckets for i in range(buckets)]
    rows = []
    it = iter(stabs)
    pending = next(it, None)
    for cutoff in cutoffs:
        while pending is not None and pending.end_sim <= cutoff:
            total += pending.attrs["emitted"]
            pending = next(it, None)
        elapsed = cutoff - start
        rate = total / elapsed if elapsed > 0 else 0.0
        rows.append([f"{cutoff:.4f}", str(total), f"{rate:.0f}"])
    return [
        "== sampling-rate timeline (ACE stabs, simulated clock) ==",
        _fmt_table(["sim t (s)", "cumulative samples", "samples/sim s"], rows),
    ]


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _group_quality(quality: list[dict]) -> dict[str, list[dict]]:
    groups: dict[str, list[dict]] = {}
    for record in quality:
        groups.setdefault(record.get("group", record.get("label", "?")), []).append(
            record
        )
    return groups


def _quality_uniformity(groups: dict[str, list[dict]]) -> list[str]:
    rows = []
    window_rows = []
    total_windows = 0
    for group, records in groups.items():
        streams = len(records)
        samples = sum(r["uniformity"]["samples"] for r in records)
        windows = sum(len(r["uniformity"]["windows"]) for r in records)
        failed = sum(r["uniformity"]["windows_failed"] for r in records)
        out_of_range = sum(r["uniformity"]["out_of_range"] for r in records)
        min_p = min((r["uniformity"]["min_window_p"] for r in records), default=1.0)
        ks_d = max((r["uniformity"]["ks_d"] for r in records), default=0.0)
        verdict = "PASS" if failed == 0 and out_of_range == 0 else "FAIL"
        rows.append([
            group, str(streams), str(samples), str(windows), str(failed),
            f"{min_p:.4f}", f"{ks_d:.4f}", str(out_of_range), verdict,
        ])
        total_windows += windows
        for record in records:
            for window in record["uniformity"]["windows"]:
                window_rows.append([
                    record.get("label", group), str(window["index"]),
                    str(window["n"]), f"{window['chi2']:.2f}",
                    f"{window['p_value']:.4f}",
                    "ok" if window["ok"] else "FAIL",
                ])
    out = [
        "== quality: uniformity (windowed chi-square, binned KS) ==",
        _fmt_table(
            ["group", "streams", "samples", "windows", "failed", "min p",
             "max KS D", "out-of-range", "verdict"],
            rows,
        ),
    ]
    if 0 < total_windows <= 24:
        out += ["", _fmt_table(
            ["stream", "window", "n", "chi2", "p", "verdict"], window_rows
        )]
    return out


def _quality_coverage(groups: dict[str, list[dict]]) -> list[str]:
    rows = []
    for group, records in groups.items():
        strata = max(r["coverage"]["strata"] for r in records)
        counts = [0] * strata
        for record in records:
            for i, c in enumerate(record["coverage"]["counts"]):
                counts[i] += c
        hit = sum(1 for c in counts if c)
        worst = min(r["coverage"]["coverage"] for r in records)
        rows.append([
            group, str(strata), str(hit), f"{100.0 * hit / strata:.0f}%",
            f"{100.0 * worst:.0f}%",
            " ".join(str(c) for c in counts),
        ])
    return [
        "== quality: stratum coverage (arrival counts per stratum) ==",
        _fmt_table(
            ["group", "strata", "hit", "coverage", "worst stream", "counts"],
            rows,
        ),
    ]


def _quality_tta(groups: dict[str, list[dict]]) -> list[str]:
    rows = []
    for group, records in groups.items():
        targets = records[0]["estimator"]["targets"]
        for epsilon in targets:
            hits = [
                tta
                for record in records
                for tta in record["estimator"]["tta"]
                if tta["epsilon"] == epsilon
            ]
            if hits:
                rows.append([
                    group, f"{epsilon:g}", f"{len(hits)}/{len(records)}",
                    str(int(_median([t["n"] for t in hits]))),
                    f"{_median([t['sim_seconds'] for t in hits]):.4f}",
                    f"{_median([t['wall_seconds'] for t in hits]):.4f}",
                ])
            else:
                rows.append([group, f"{epsilon:g}", f"0/{len(records)}",
                             "-", "-", "-"])
    if not rows:
        return []
    return [
        "== quality: time-to-accuracy (CI half-width <= eps * |estimate|) ==",
        _fmt_table(
            ["group", "eps", "hit", "median n", "median sim s",
             "median wall s"],
            rows,
        ),
    ]


def _quality_timeline(groups: dict[str, list[dict]], buckets: int = 10) -> list[str]:
    out: list[str] = []
    for group, records in list(groups.items())[:6]:
        timeline = records[0]["estimator"]["timeline"]
        points = [p for p in timeline if p["half_width"] is not None
                  and p["n"] >= 2]
        if len(points) < 2:
            continue
        stride = max(1, len(points) // buckets)
        sampled = points[::stride]
        if sampled[-1] is not points[-1]:
            sampled.append(points[-1])
        rows = [
            [f"{p['clock']:.4f}", str(p["n"]), f"{p['half_width']:.4f}",
             f"{p['mean']:.4f}"]
            for p in sampled
        ]
        out += [
            "" if out else None,
            f"== quality: CI half-width vs sim time ({group}, "
            f"{records[0].get('label', group)}) ==",
            _fmt_table(["sim t (s)", "n", "half-width", "estimate"], rows),
        ]
    return [line for line in out if line is not None]


def _quality_labels(quality: list[dict]) -> list[str]:
    """Per-label-set gain breakdown from the records' telemetry baggage.

    Streams whose monitors were created under a pushed context carry a
    ``"labels"`` dict; grouping by the canonical rendering gives the
    per-tenant/per-query view of samples delivered and time-to-accuracy
    (ROADMAP item 1's serving surface).  Unlabeled records are skipped —
    the aggregate view is the rest of the report.
    """
    by_label: dict[str, list[dict]] = {}
    for record in quality:
        labels = record.get("labels")
        if not labels:
            continue
        rendered = render_label_set(canonical_label_set(labels))
        by_label.setdefault(rendered, []).append(record)
    if not by_label:
        return []
    rows = []
    for rendered, records in sorted(by_label.items()):
        samples = sum(r["uniformity"]["samples"] for r in records)
        failed = sum(r["uniformity"]["windows_failed"] for r in records)
        degraded = sum(1 for r in records if r.get("degraded"))
        tta5 = [
            tta["sim_seconds"]
            for r in records
            for tta in r["estimator"]["tta"]
            if tta["epsilon"] == 0.05
        ]
        rows.append([
            rendered, str(len(records)), str(samples), str(failed),
            str(degraded),
            f"{_median(tta5):.4f}" if tta5 else "-",
            f"{max(tta5):.4f}" if tta5 else "-",
        ])
    return [
        "== quality: per-label-set breakdown (telemetry context) ==",
        _fmt_table(
            ["labels", "streams", "samples", "failed windows", "degraded",
             "tta(5%) p50 sim s", "tta(5%) max sim s"],
            rows,
        ),
    ]


def quality_sections(quality: list[dict]) -> list[str]:
    """Render the quality records' report sections (empty list if none)."""
    if not quality:
        return []
    groups = _group_quality(quality)
    sections = _quality_uniformity(groups)
    sections += [""] + _quality_coverage(groups)
    for extra in (_quality_tta(groups), _quality_labels(quality),
                  _quality_timeline(groups)):
        if extra:
            sections += [""] + extra
    return sections


def _section_cost(cost: dict | None) -> list[str]:
    """Per-label-set charged-page table + the conservation verdict."""
    if not cost:
        return []
    reads = cost.get("page_reads", {})
    writes = cost.get("page_writes", {})
    io = cost.get("retry_io_seconds", {})
    rows = []
    for rendered in sorted(reads.keys() | writes.keys() | io.keys()):
        rows.append([
            rendered or "(unlabeled)",
            str(reads.get(rendered, 0)),
            str(writes.get(rendered, 0)),
            f"{io.get(rendered, 0.0):.4f}",
        ])
    verdict = "CONSERVED" if cost.get("conserved") else "LEAK"
    out = ["== cost attribution (charged pages per label set) =="]
    if rows:
        out.append(_fmt_table(
            ["labels", "page reads", "page writes", "retry io s"], rows
        ))
    out.append(
        f"conservation: attributed {cost.get('attributed_reads', 0)} / "
        f"charged {cost.get('charged_reads', 0)} page reads -> {verdict}"
    )
    return out


def _section_exemplars(metrics_snapshot: dict, spans) -> list[str]:
    """Tail-bucket → span links for histograms that retained exemplars."""
    rows = []
    names = {span.span_id: span.name for span in spans}
    for metric, hist in sorted(metrics_snapshot.get("histograms", {}).items()):
        exemplars = hist.get("exemplars")
        if not exemplars:
            continue
        # The tail buckets are the interesting ones: show the highest
        # occupied bucket per metric, newest exemplars last.
        tail = max(row["bucket"] for row in exemplars)
        for row in exemplars:
            if row["bucket"] != tail:
                continue
            labels = ",".join(f"{k}={v}" for k, v in row.get("labels", {}).items())
            rows.append([
                metric, f"<= {row['le']}", f"{row['value']:g}",
                f"#{row['span_id']} {names.get(row['span_id'], '?')}",
                labels or "-",
            ])
    if not rows:
        return []
    return [
        "== exemplars (tail bucket -> span links) ==",
        _fmt_table(["histogram", "bucket", "value", "span", "labels"], rows),
    ]


def _section_metrics(metrics_snapshot: dict) -> list[str]:
    out = []
    counters = metrics_snapshot.get("counters", {})
    shown = {n: v for n, v in counters.items() if not n.startswith("stab.level.")}
    if shown:
        out += ["== counters ==",
                _fmt_table(["counter", "value"],
                           [[n, str(v)] for n, v in sorted(shown.items())])]
    gauges = metrics_snapshot.get("gauges", {})
    if gauges:
        out += ["", "== gauges ==",
                _fmt_table(["gauge", "value"],
                           [[n, f"{v:g}"] for n, v in sorted(gauges.items())])]
    for name, hist in sorted(metrics_snapshot.get("histograms", {}).items()):
        bounds = hist["bounds"]
        labels = [f"<= {b:g}" for b in bounds] + [f"> {bounds[-1]:g}"]
        rows = [[label, str(count)]
                for label, count in zip(labels, hist["counts"]) if count]
        out += ["", f"== histogram {name} "
                    f"(n={hist['count']}, mean={hist['mean']:.3f}) ==",
                _fmt_table(["bucket", "count"], rows)]
    return out


def render_report(spans, metrics: MetricsRegistry | dict | None = None,
                  top: int = 12, quality: list | None = None,
                  cost: dict | None = None) -> str:
    """Render the full text report for a flat list of :class:`SpanRecord`.

    ``quality`` is an optional list of versioned quality records (see
    :meth:`repro.obs.quality.StreamQualityMonitor.summary`); when present
    the quality sections render between the timeline and the metrics.
    ``cost`` is an optional cost-accountant ledger snapshot
    (:meth:`repro.obs.cost.CostAccountant.snapshot` or a loaded
    ``"kind": "cost"`` record); when present the per-label attribution
    table and conservation verdict render before the metrics.
    """
    spans = list(spans)
    if not spans:
        return "trace report: no spans recorded\n"
    if isinstance(metrics, MetricsRegistry):
        snapshot = metrics.snapshot()
    else:
        snapshot = metrics or {}
    sections = _section_spans(spans, top)
    sections += [""] + _section_attribution(spans)
    for extra in (_section_stab_levels(snapshot),
                  _section_timeline(spans),
                  quality_sections(quality or []),
                  _section_cost(cost),
                  _section_metrics(snapshot),
                  _section_exemplars(snapshot, spans)):
        if extra:
            sections += [""] + extra
    return "\n".join(sections) + "\n"
