"""Text report over a recorded trace: where did both clocks go?

:func:`render_report` turns a flat span list (plus an optional metrics
registry snapshot) into the report printed by ``python -m repro trace``:

1. **Span aggregates** — per span name: call count, cumulative wall and
   simulated seconds, cumulative and *self* page reads.  Cumulative totals
   deliberately double-count nested spans (a parent includes its
   children); the *self* column is the exclusive cost.
2. **Page-read attribution** — what fraction of all simulated page reads
   landed inside *leaf* spans (spans with no children).  A healthy
   instrumentation layer attributes ≳95% of reads to leaves; the rest is
   unattributed glue.
3. **Per-level stab table** — from the ``stab.level.*`` counters: how many
   stab descents took the overlap branch vs. the round-robin drain branch
   at each tree level, plus pruned (deferred) children.
4. **Sampling-rate timeline** — from ``ace_query.stab`` spans: cumulative
   samples emitted vs. the simulated clock, the paper's headline curve.
5. **Metrics** — counters, gauges, and histogram tables.
"""

from __future__ import annotations

from .metrics import MetricsRegistry

__all__ = ["page_read_attribution", "render_report", "span_aggregates"]


def span_aggregates(spans) -> dict:
    """Per-name totals: calls, wall/sim seconds, cumulative + self reads."""
    table: dict[str, dict] = {}
    for span in spans:
        row = table.get(span.name)
        if row is None:
            row = table[span.name] = {
                "calls": 0, "wall": 0.0, "sim": 0.0, "reads": 0, "self_reads": 0,
            }
        row["calls"] += 1
        row["wall"] += span.wall_seconds
        row["sim"] += span.sim_seconds
        row["reads"] += span.page_reads
        row["self_reads"] += span.self_page_reads
    return table


def page_read_attribution(spans) -> tuple[int, int]:
    """``(leaf_reads, total_reads)`` over a flat span list.

    *total* sums the root spans' cumulative page reads; *leaf* sums the
    reads of childless spans.  Spans never share reads (each simulated
    read happens inside exactly one innermost span), so leaf ≤ total and
    the ratio is the fraction of I/O the instrumentation pins to a
    specific operation.
    """
    total = sum(s.page_reads for s in spans if s.parent_id is None)
    leaf = sum(s.page_reads for s in spans if not s.children)
    return leaf, total


def _fmt_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.rjust(w) if i else c.ljust(w)
                               for i, (c, w) in enumerate(zip(row, widths))).rstrip())
    return "\n".join(lines)


def _section_spans(spans, top: int) -> list[str]:
    table = span_aggregates(spans)
    headers = ["span", "calls", "wall s", "sim s", "reads", "self reads"]

    def rows(sort_key: str) -> list[list[str]]:
        ranked = sorted(table.items(), key=lambda kv: -kv[1][sort_key])[:top]
        return [
            [name, str(r["calls"]), f"{r['wall']:.4f}", f"{r['sim']:.4f}",
             str(r["reads"]), str(r["self_reads"])]
            for name, r in ranked
        ]

    out = ["== top spans by wall-clock time (cumulative) ==",
           _fmt_table(headers, rows("wall")), "",
           "== top spans by simulated time (cumulative) ==",
           _fmt_table(headers, rows("sim"))]
    return out


def _section_attribution(spans) -> list[str]:
    leaf, total = page_read_attribution(spans)
    pct = 100.0 * leaf / total if total else 100.0
    return [
        "== simulated page-read attribution ==",
        f"total page reads (root spans) : {total}",
        f"attributed to leaf spans      : {leaf}  ({pct:.1f}%)",
    ]


def _section_stab_levels(metrics_snapshot: dict) -> list[str]:
    counters = metrics_snapshot.get("counters", {})
    levels: dict[int, dict] = {}
    for name, value in counters.items():
        if not name.startswith("stab.level."):
            continue
        _, _, rest = name.partition("stab.level.")
        level_text, _, kind = rest.partition(".")
        level = int(level_text)
        levels.setdefault(level, {"overlap": 0, "drain": 0, "pruned": 0})[kind] = value
    if not levels:
        return []
    rows = [
        [str(level), str(row["overlap"]), str(row["drain"]), str(row["pruned"])]
        for level, row in sorted(levels.items())
    ]
    return [
        "== per-level stab table ==",
        _fmt_table(["level", "overlap descents", "drain descents", "pruned children"],
                   rows),
    ]


def _section_timeline(spans, buckets: int = 10) -> list[str]:
    stabs = [
        s for s in spans
        if s.name == "ace_query.stab" and s.end_sim is not None
        and "emitted" in s.attrs
    ]
    if not stabs:
        return []
    stabs.sort(key=lambda s: s.end_sim)
    start = min(s.start_sim for s in stabs)
    span_of_time = max(stabs[-1].end_sim - start, 1e-12)
    total = 0
    cutoffs = [start + span_of_time * (i + 1) / buckets for i in range(buckets)]
    rows = []
    it = iter(stabs)
    pending = next(it, None)
    for cutoff in cutoffs:
        while pending is not None and pending.end_sim <= cutoff:
            total += pending.attrs["emitted"]
            pending = next(it, None)
        elapsed = cutoff - start
        rate = total / elapsed if elapsed > 0 else 0.0
        rows.append([f"{cutoff:.4f}", str(total), f"{rate:.0f}"])
    return [
        "== sampling-rate timeline (ACE stabs, simulated clock) ==",
        _fmt_table(["sim t (s)", "cumulative samples", "samples/sim s"], rows),
    ]


def _section_metrics(metrics_snapshot: dict) -> list[str]:
    out = []
    counters = metrics_snapshot.get("counters", {})
    shown = {n: v for n, v in counters.items() if not n.startswith("stab.level.")}
    if shown:
        out += ["== counters ==",
                _fmt_table(["counter", "value"],
                           [[n, str(v)] for n, v in sorted(shown.items())])]
    gauges = metrics_snapshot.get("gauges", {})
    if gauges:
        out += ["", "== gauges ==",
                _fmt_table(["gauge", "value"],
                           [[n, f"{v:g}"] for n, v in sorted(gauges.items())])]
    for name, hist in sorted(metrics_snapshot.get("histograms", {}).items()):
        bounds = hist["bounds"]
        labels = [f"<= {b:g}" for b in bounds] + [f"> {bounds[-1]:g}"]
        rows = [[label, str(count)]
                for label, count in zip(labels, hist["counts"]) if count]
        out += ["", f"== histogram {name} "
                    f"(n={hist['count']}, mean={hist['mean']:.3f}) ==",
                _fmt_table(["bucket", "count"], rows)]
    return out


def render_report(spans, metrics: MetricsRegistry | dict | None = None,
                  top: int = 12) -> str:
    """Render the full text report for a flat list of :class:`SpanRecord`."""
    spans = list(spans)
    if not spans:
        return "trace report: no spans recorded\n"
    if isinstance(metrics, MetricsRegistry):
        snapshot = metrics.snapshot()
    else:
        snapshot = metrics or {}
    sections = _section_spans(spans, top)
    sections += [""] + _section_attribution(spans)
    for extra in (_section_stab_levels(snapshot),
                  _section_timeline(spans),
                  _section_metrics(snapshot)):
        if extra:
            sections += [""] + extra
    return "\n".join(sections) + "\n"
