"""Flight recorder: a bounded ring of the last N telemetry events.

Post-hoc traces explain a whole run; the flight recorder explains the
*last few milliseconds before something went wrong*.  It is a fixed-size
ring buffer that — while armed — captures every finished span, every
labeled metric update, every finalized quality record, and every injected
storage fault, overwriting the oldest events once full.  Memory is
bounded by construction and the disarmed cost is one attribute check per
event source (the same branch discipline as the tracer's three-tier
fast path), so instrumented call sites never pay for it in production
paths.

``dump()`` writes the ring as a **kind-versioned JSONL artifact** using
the same schema registry as :mod:`repro.obs.export` — ``python -m repro
trace validate`` accepts a flight dump unchanged.  The first line is a
``"kind": "flight"`` header (``v`` = :data:`FLIGHT_VERSION`) carrying the
trip reason and drop count; the remaining lines are the events in arrival
order.

Automatic trips — call sites invoke :meth:`FlightRecorder.trip`:

* the testkit differential oracle, on a failing scenario (the events are
  also embedded into the replay payload under the optional ``"flight"``
  key — see :mod:`repro.testkit.harness`);
* storage recovery, when retries exhaust or a leaf is lost to a
  :class:`~repro.storage.disk.PageCorruptionError`;
* the bench regression gate, when ``--compare`` fails deterministically.

``trip()`` is a no-op while disarmed; when armed it counts the trip and,
if ``auto_dump_path`` is set, writes the dump immediately.

Wall-clock span fields differ run to run, so dump files are not
byte-identical across runs — :func:`deterministic_view` projects events
onto their simulated-clock/deterministic fields, and *that* view is
replay-stable (asserted under ``testkit replay`` in the test suite).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from threading import Lock

from .export import span_to_dict, strip_wall_keys
from .tracer import TRACER

__all__ = [
    "FLIGHT",
    "FLIGHT_VERSION",
    "FlightRecorder",
    "deterministic_view",
    "write_dump",
]

FLIGHT_VERSION = 1

DEFAULT_CAPACITY = 256


def write_dump(events, path, reason: str, dropped: int = 0) -> Path:
    """Write *events* as a flight-dump JSONL artifact; returns the path."""
    header = {
        "kind": "flight",
        "v": FLIGHT_VERSION,
        "reason": str(reason),
        "events": len(events),
        "dropped": int(dropped),
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(event, sort_keys=True) for event in events)
    out = Path(path)
    out.write_text("\n".join(lines) + "\n")
    return out


def deterministic_view(events) -> list[dict]:
    """Events projected onto their replay-stable fields.

    Strips wall-clock measurements (the :func:`~repro.obs.export.strip_wall_keys`
    projection shared with the trace-diff normalizer) and renumbers span
    ids densely in arrival order: the tracer's id counter is
    process-global, so raw ids differ between two otherwise identical
    runs.  Parent links are remapped consistently (an out-of-ring parent
    becomes ``None``).
    """
    id_map: dict = {}
    for event in events:
        span_id = event.get("span_id")
        if span_id is not None and span_id not in id_map:
            id_map[span_id] = len(id_map) + 1
    view = []
    for event in events:
        cleaned = strip_wall_keys(event)
        if "span_id" in cleaned:
            cleaned["span_id"] = id_map.get(cleaned["span_id"])
        if "parent_id" in cleaned:
            cleaned["parent_id"] = id_map.get(cleaned["parent_id"])
        view.append(cleaned)
    return view


class FlightRecorder:  # repro: shared[lock=_lock] bounded event ring; every mutation holds _lock
    """Fixed-capacity event ring (see module docstring).  One instance: :data:`FLIGHT`."""

    __slots__ = (
        "enabled",
        "capacity",
        "auto_dump_path",
        "trips",
        "last_reason",
        "_ring",
        "_seq",
        "_lock",
        "_installed",
    )

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.enabled = False
        self.capacity = capacity
        self.auto_dump_path: Path | None = None
        self.trips = 0
        self.last_reason: str | None = None
        self._ring: list = []
        self._seq = 0
        self._lock = Lock()
        self._installed = False

    # -- arming ---------------------------------------------------------

    def arm(self, capacity: int | None = None, auto_dump_path=None) -> None:
        """Start capturing (clears the ring); spans flow in via the tracer."""
        with self._lock:
            if capacity is not None:
                if capacity < 1:
                    raise ValueError("flight recorder capacity must be >= 1")
                self.capacity = capacity
            self.auto_dump_path = Path(auto_dump_path) if auto_dump_path else None
            self._ring = [None] * self.capacity
            self._seq = 0
            self.trips = 0
            self.last_reason = None
            self.enabled = True
        if not self._installed:
            TRACER.add_listener(self._on_span)
            self._installed = True

    def disarm(self) -> None:
        if self._installed:
            TRACER.remove_listener(self._on_span)
            self._installed = False
        with self._lock:
            self.enabled = False

    @contextmanager
    def recording(self, capacity: int | None = None, auto_dump_path=None):
        """Arm the recorder *and* full tracing for the ``with`` body.

        Tracing is read-only on the simulated clock, so wrapping a run in
        ``recording()`` cannot perturb its deterministic outputs; prior
        tracer/recorder state is restored on exit.
        """
        was_tracing = TRACER.enabled
        self.arm(capacity=capacity, auto_dump_path=auto_dump_path)
        if not was_tracing:
            TRACER.enable()
        try:
            yield self
        finally:
            if not was_tracing:
                TRACER.disable()
            self.disarm()

    # -- event intake ---------------------------------------------------

    def _record(self, event: dict) -> None:
        with self._lock:
            if not self.enabled or not self._ring:
                return
            self._ring[self._seq % len(self._ring)] = event
            self._seq += 1

    def _on_span(self, record) -> None:
        if not self.enabled:
            return
        self._record({"kind": "span", **span_to_dict(record)})

    def record_metric(self, name: str, metric: str, value, label_set=None) -> None:
        """Capture one metric update (``metric`` is counter/gauge/histogram)."""
        if not self.enabled:
            return
        event = {
            "kind": "metric",
            "v": FLIGHT_VERSION,
            "name": name,
            "metric": metric,
            "value": float(value),
        }
        if label_set:
            event["labels"] = dict(label_set)
        self._record(event)

    def record_fault(self, event_dict: dict) -> None:
        """Capture one injected storage fault (``FaultEvent.as_dict()``).

        The fault's own ``kind`` (transient/corrupt/torn/latency) moves to
        the ``fault`` key; ``kind`` is reserved for the record kind.
        """
        if not self.enabled:
            return
        event = {
            "kind": "fault",
            "v": FLIGHT_VERSION,
            "op": event_dict["op"],
            "ordinal": event_dict["ordinal"],
            "fault": event_dict["kind"],
            "page": event_dict["page"],
        }
        detail = event_dict.get("detail")
        if detail:
            event["detail"] = dict(detail)
        self._record(event)

    def record_quality(self, record: dict) -> None:
        """Capture one finalized quality record (already ``"kind": "quality"``)."""
        if not self.enabled:
            return
        self._record(dict(record))

    # -- readout --------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events overwritten since arming (ring wrapped this many times)."""
        with self._lock:
            return max(0, self._seq - len(self._ring)) if self._ring else 0

    def snapshot(self) -> list[dict]:
        """The retained events, oldest first."""
        with self._lock:
            ring, seq = self._ring, self._seq
            if not ring or seq == 0:
                return []
            n = len(ring)
            if seq <= n:
                return list(ring[:seq])
            start = seq % n
            return list(ring[start:]) + list(ring[:start])

    def dump(self, path=None, reason: str = "manual") -> Path:
        """Write the ring to *path* (default ``auto_dump_path``) as JSONL."""
        target = path if path is not None else self.auto_dump_path
        if target is None:
            raise ValueError("no dump path: pass one or arm with auto_dump_path")
        return write_dump(self.snapshot(), target, reason, dropped=self.dropped)

    def trip(self, reason: str):
        """Note an automatic-dump trigger; dumps if a path is configured.

        Returns the dump path when a file was written, else ``None``.
        Disarmed recorders ignore trips entirely, so library code may call
        this unconditionally on its failure paths.
        """
        with self._lock:
            if not self.enabled:
                return None
            self.trips += 1
            self.last_reason = reason
            target = self.auto_dump_path
        if target is not None:
            return self.dump(target, reason)
        return None


FLIGHT = FlightRecorder()  # repro: shared[lock=_lock] process-wide flight ring; mutation holds FlightRecorder._lock
