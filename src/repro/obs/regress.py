"""Benchmark regression tracking (``repro.obs.regress``).

``python -m repro bench --json`` emits one point of the performance
trajectory (``BENCH_PR1.json``, ``BENCH_PR4.json``, ...).  This module
compares two such points **noise-aware**: metrics are classified by what
kind of number they are, because the two kinds fail differently —

* **deterministic** metrics (simulated-clock seconds, page counts, figure
  curve points, record counts) are pure functions of the code and the
  seed: any change at all is a behavioural difference, so they are
  compared **exactly** and gate CI;
* **wall-clock** metrics (records/s, MB/s, best-of-N seconds) carry
  scheduler and machine noise even with best-of-repeats timing, so they
  are compared with a per-metric relative tolerance and only ever produce
  an **advisory** verdict.

The classifier is a first-match-wins rule table over dotted metric paths
(:data:`DEFAULT_RULES`); :func:`compare_benchmarks` walks the two JSON
trees, :func:`render_diff` prints the human table, and
``RegressionReport.verdict()`` is the machine-readable form the CI job
uploads.  Config keys (``meta.n_records``) must match for the exact gate
to be meaningful — a mismatch is reported as a comparison *error*, not a
regression.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_RULES",
    "MetricDelta",
    "MetricRule",
    "RegressionReport",
    "compare_benchmarks",
    "flatten_metrics",
    "render_diff",
]

VERDICT_VERSION = 1

#: Keys that must be equal for two result files to be comparable at all.
_CONFIG_KEYS = ("meta.n_records",)

#: Relative tolerance for wall-clock metrics (shared-machine noise floor).
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True, slots=True)
class MetricRule:
    """First-match classification of one dotted metric path.

    ``kind`` is one of:

    * ``exact``         — deterministic; any difference is a regression;
    * ``lower_better``  — wall metric where smaller is better (seconds);
    * ``higher_better`` — wall metric where larger is better (throughput);
    * ``ignore``        — environment/meta data, never compared.
    """

    pattern: str
    kind: str

    def matches(self, path: str) -> bool:
        return re.fullmatch(self.pattern, path) is not None


DEFAULT_RULES: tuple[MetricRule, ...] = (
    MetricRule(r"meta\..*", "ignore"),
    MetricRule(r"seed_comparison\..*", "ignore"),
    MetricRule(r"profile\..*", "ignore"),
    # Dropped label sets must stay exactly zero: silent cardinality
    # overflow would quietly unlabel per-tenant series.  Matched before
    # the blanket metrics-snapshot ignore below.
    MetricRule(r"metrics\.counters\.obs\.metrics\.dropped_label_sets",
               "exact"),
    MetricRule(r"metrics\..*", "ignore"),
    MetricRule(r"obs_label_overhead\.(dropped_label_sets|cap_fallback_ok"
               r"|incs_per_run)", "exact"),
    MetricRule(r"obs_label_overhead\.labeled_overhead_ratio",
               "lower_better"),
    # Trace-analytics invariants: same-seed diffs must stay empty,
    # sabotage must stay detected, and the cost accountant must conserve
    # charged pages — all pure functions of code + seed, gated exact.
    # (diff_wall_seconds / flame_wall_seconds fall through to the generic
    # wall rules below and stay advisory.)
    MetricRule(r"obs_analyze\.(diff_identical|diff_detects_sabotage"
               r"|cost_conserved|cost_attributed_reads|cost_charged_reads"
               r"|exemplar_count|critical_path_steps|flame_lines)",
               "exact"),
    MetricRule(r".*\.best_run_profile_seconds\..*", "ignore"),
    # Whole-program analyzer structure counts: they move with every code
    # change by design (wall_seconds still gates under the generic rules).
    MetricRule(r"program_lint\.(files|functions|call_edges|findings.*)",
               "ignore"),
    # Deterministic: simulated-clock durations and I/O counts ...
    MetricRule(r".*sim_seconds.*", "exact"),
    MetricRule(r".*_sim_s", "exact"),
    MetricRule(
        r".*\.(page_reads|page_writes|pages|leaves_read|stabs|first_k"
        r"|record_size_bytes|spans_per_run|samples|matching_records)",
        "exact",
    ),
    # ... and everything under the figure-curve section.
    MetricRule(r"figure_sim\..*", "exact"),
    MetricRule(r"quality\..*", "exact"),
    # Sample-reuse cache counters and simulated clocks: pure functions of
    # the seed and the cache's LRU arithmetic (wall timings of the cache
    # workload live under ace_query_cache.* instead).
    MetricRule(r"sample_cache\..*", "exact"),
    # Serve-scheduler totals: the interleaving is deterministic, so step,
    # turn, page, and completion counts are pure functions of the seed
    # (wall timings of the serve workload live under serve_wall.*).
    MetricRule(r"serve\..*", "exact"),
    # Wall-clock: throughputs up, durations down.
    MetricRule(r".*_per_s", "higher_better"),
    MetricRule(r".*(seconds|_ns_per_span|_ns_per_inc)", "lower_better"),
)


def flatten_metrics(tree: dict, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> numeric leaf value (bools/strings/lists skipped)."""
    out: dict[str, float] = {}
    for key, value in tree.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten_metrics(value, f"{path}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[path] = value
    return out


def classify(path: str, rules: tuple[MetricRule, ...] = DEFAULT_RULES) -> str:
    for rule in rules:
        if rule.matches(path):
            return rule.kind
    return "unclassified"


@dataclass(frozen=True, slots=True)
class MetricDelta:
    """Comparison outcome for one metric path."""

    path: str
    kind: str
    baseline: float | None
    current: float | None
    status: str  # ok | improved | regressed | missing | new
    rel_delta: float | None = None

    @property
    def gating(self) -> bool:
        """True when this row alone should fail the deterministic gate."""
        return self.kind == "exact" and self.status in ("regressed", "missing")

    def as_dict(self) -> dict:
        return {
            "path": self.path, "kind": self.kind,
            "baseline": self.baseline, "current": self.current,
            "status": self.status, "rel_delta": self.rel_delta,
        }


@dataclass
class RegressionReport:
    """Everything :func:`compare_benchmarks` found, plus the verdict."""

    rows: list[MetricDelta] = field(default_factory=list)
    config_errors: list[str] = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE

    @property
    def deterministic_failures(self) -> list[MetricDelta]:
        return [row for row in self.rows if row.gating]

    @property
    def advisory_regressions(self) -> list[MetricDelta]:
        return [
            row for row in self.rows
            if row.kind in ("lower_better", "higher_better")
            and row.status == "regressed"
        ]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [row for row in self.rows if row.status == "improved"]

    @property
    def status(self) -> str:
        if self.config_errors:
            return "config-mismatch"
        if self.deterministic_failures:
            return "deterministic-regression"
        if self.advisory_regressions:
            return "advisory-regression"
        return "ok"

    def exit_code(self) -> int:
        """CI gate: deterministic failures are fatal, wall noise is not."""
        if self.config_errors:
            return 2
        if self.deterministic_failures:
            return 1
        return 0

    def verdict(self) -> dict:
        """Machine-readable verdict (uploaded as a CI artifact)."""
        return {
            "v": VERDICT_VERSION,
            "status": self.status,
            "tolerance": self.tolerance,
            "config_errors": list(self.config_errors),
            "deterministic_failures": [
                row.as_dict() for row in self.deterministic_failures
            ],
            "advisory_regressions": [
                row.as_dict() for row in self.advisory_regressions
            ],
            "improvements": [row.as_dict() for row in self.improvements],
            "compared": sum(
                1 for row in self.rows if row.status not in ("missing", "new")
            ),
        }


def _compare_one(
    path: str,
    kind: str,
    baseline: float | None,
    current: float | None,
    tolerance: float,
) -> MetricDelta:
    if current is None:
        return MetricDelta(path, kind, baseline, None, "missing")
    if baseline is None:
        return MetricDelta(path, kind, None, current, "new")
    if kind == "exact":
        # Deterministic values survive a JSON round-trip bit-exactly, so
        # equality is the right comparison — a one-ulp drift is already a
        # behavioural change worth flagging.
        status = "ok" if current == baseline else "regressed"
        rel = None
        if baseline:
            rel = (current - baseline) / abs(baseline)
        return MetricDelta(path, kind, baseline, current, status, rel)
    if baseline == 0:
        return MetricDelta(path, kind, baseline, current, "ok")
    rel = (current - baseline) / abs(baseline)
    if kind == "higher_better":
        worse, better = rel < -tolerance, rel > tolerance
    else:  # lower_better
        worse, better = rel > tolerance, rel < -tolerance
    status = "regressed" if worse else ("improved" if better else "ok")
    return MetricDelta(path, kind, baseline, current, status, rel)


def compare_benchmarks(
    baseline: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    rules: tuple[MetricRule, ...] = DEFAULT_RULES,
) -> RegressionReport:
    """Compare two ``bench --json`` result trees.

    Metrics present only in the baseline are *missing* (a deterministic
    gate failure when they are exact — a silently dropped metric would
    otherwise hide a regression forever); metrics present only in the
    current run are *new* and never gate.
    """
    report = RegressionReport(tolerance=tolerance)
    base_flat = flatten_metrics(baseline)
    cur_flat = flatten_metrics(current)
    for key in _CONFIG_KEYS:
        b, c = base_flat.get(key), cur_flat.get(key)
        if b is not None and c is not None and b != c:
            report.config_errors.append(
                f"{key}: baseline ran with {b:g}, current with {c:g}; "
                "deterministic metrics are not comparable across workloads"
            )
    for path in sorted(base_flat.keys() | cur_flat.keys()):
        kind = classify(path, rules)
        if kind in ("ignore", "unclassified"):
            continue
        report.rows.append(
            _compare_one(
                path, kind, base_flat.get(path), cur_flat.get(path), tolerance
            )
        )
    return report


def _fmt_value(value: float | None) -> str:
    if value is None:
        return "-"
    if isinstance(value, int) or float(value).is_integer():
        return f"{value:g}"
    return f"{value:.6g}"


def render_diff(report: RegressionReport, show_ok: bool = False) -> str:
    """Human-readable diff table; interesting rows first."""
    from .report import format_table

    lines = [f"== bench regression report: {report.status} =="]
    for error in report.config_errors:
        lines.append(f"CONFIG ERROR: {error}")
    order = {"regressed": 0, "missing": 1, "new": 2, "improved": 3, "ok": 4}
    rows = sorted(
        report.rows, key=lambda r: (order.get(r.status, 5), r.path)
    )
    if not show_ok:
        rows = [r for r in rows if r.status != "ok"]
    table = [
        [
            row.path,
            row.kind,
            _fmt_value(row.baseline),
            _fmt_value(row.current),
            "-" if row.rel_delta is None else f"{100 * row.rel_delta:+.1f}%",
            row.status.upper() if row.gating else row.status,
        ]
        for row in rows
    ]
    if table:
        lines.append(
            format_table(
                ["metric", "class", "baseline", "current", "delta", "status"],
                table,
            )
        )
    else:
        lines.append("(no differences outside tolerance)")
    summary = report.verdict()
    lines.append(
        f"{summary['compared']} metrics compared, "
        f"{len(report.deterministic_failures)} deterministic failure(s), "
        f"{len(report.advisory_regressions)} advisory regression(s), "
        f"{len(report.improvements)} improvement(s)"
    )
    return "\n".join(lines) + "\n"
