"""Counters, gauges, and fixed-bucket histograms for traced runs.

The registry is deliberately tiny: a metric is named process-wide state,
created on first use (``METRICS.counter("buffer.hit")``) and read back as a
plain-dict :meth:`MetricsRegistry.snapshot`.  Histograms use fixed bucket
*upper bounds*: ``bounds=(1, 2, 4)`` yields the four buckets
``(-inf, 1], (1, 2], (2, 4], (4, +inf)`` — the final bucket is the
overflow.  Bucket placement is ``bisect_left``, so a value equal to a bound
lands in that bound's own bucket: bounds are *inclusive* upper edges,
matching the report's ``<= bound`` bucket labels.

Instrumentation that feeds the registry from hot paths guards on
``TRACER.enabled`` so an untraced run pays nothing.  All mutation is
lock-protected (the same guarantee :class:`repro.core.profile.Profiler`
gives), making the registry safe to share across threads.
"""

from __future__ import annotations

from bisect import bisect_left
from threading import Lock

__all__ = ["Counter", "Gauge", "Histogram", "METRICS", "MetricsRegistry"]


class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with inclusive upper bounds plus overflow."""

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: tuple) -> None:
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        ordered = tuple(bounds)
        if any(a >= b for a, b in zip(ordered, ordered[1:])):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly increasing: {ordered!r}"
            )
        self.name = name
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
        }


class MetricsRegistry:  # repro: shared[lock=_lock] one shared lock serializes every mutation
    """Get-or-create registry of named metrics; one shared lock for mutation."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str, bounds: tuple | None = None) -> Histogram:
        """Fetch histogram *name*, creating it with *bounds* on first use.

        Re-registering with different bounds is a programming error and
        raises; re-registering with the same (or no) bounds returns the
        existing histogram.
        """
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                if bounds is None:
                    raise ValueError(f"histogram {name!r} not registered; pass bounds")
                metric = self._histograms[name] = Histogram(name, bounds)
            elif bounds is not None and tuple(bounds) != metric.bounds:
                raise ValueError(
                    f"histogram {name!r} already registered with bounds "
                    f"{metric.bounds!r}, not {tuple(bounds)!r}"
                )
            return metric

    def snapshot(self) -> dict:
        """Plain-dict view of everything (JSON-serializable)."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.snapshot() for n, h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


METRICS = MetricsRegistry()  # repro: shared[lock=_lock] process-wide registry; mutation holds MetricsRegistry._lock
