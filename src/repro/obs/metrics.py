"""Counters, gauges, and fixed-bucket histograms for traced runs.

The registry is deliberately tiny: a metric is named process-wide state,
created on first use (``METRICS.counter("buffer.hit")``) and read back as a
plain-dict :meth:`MetricsRegistry.snapshot`.  Histograms use fixed bucket
*upper bounds*: ``bounds=(1, 2, 4)`` yields the four buckets
``(-inf, 1], (1, 2], (2, 4], (4, +inf)`` — the final bucket is the
overflow.  Bucket placement is ``bisect_left``, so a value equal to a bound
lands in that bound's own bucket: bounds are *inclusive* upper edges,
matching the report's ``<= bound`` bucket labels.

**Dimensional labels.**  Every metric doubles as a family:
``counter("ace_query.cache_hits").labels(tenant="t0", sampler="ace")``
returns a *child* sharing the parent's name and lock.  A child update
always updates the unlabeled parent too, so the aggregate value is
bit-identical whether or not call sites label — labeling is pure
refinement, never a fork.  The rules:

* label keys come from the registered vocabulary
  (:data:`repro.obs.context.LABEL_KEYS`; lint rule OBS001 enforces this
  statically) and serialize in fixed vocabulary order;
* ``labels()`` with no labels returns the parent itself — call sites can
  splat ``**CONTEXT.labels()`` unconditionally;
* each family admits at most ``max_label_sets`` distinct label sets
  (default :data:`DEFAULT_MAX_LABEL_SETS`).  Past the cap, ``labels()``
  falls back to the parent (the aggregate never loses updates) and the
  registry's ``obs.metrics.dropped_label_sets`` counter is bumped once
  per rejected call — the regress rules gate it at exactly zero on bench
  runs, so silent cardinality overflow cannot ship.

**Exemplars.**  While tracing is on, every histogram observation may
carry a pointer back to the span that produced it: a bounded
per-bucket ring (:data:`EXEMPLARS_PER_BUCKET` entries, oldest
overwritten) of ``(value, span id, label set)`` triples kept on the
family root.  Capture is gated on ``TRACER.enabled`` and never touches
the bucket counters, so unlabeled aggregates stay bit-identical whether
or not exemplars are recorded; untraced runs skip the branch entirely.
The sanctioned capture path is ``observe(value, span_id=...)`` or the
ambient :meth:`Tracer.current_span_id` fallback — lint rule OBS002 pins
ad-hoc span-id plumbing outside this module.

Instrumentation that feeds the registry from hot paths guards on
``TRACER.enabled`` so an untraced run pays nothing.  All mutation is
lock-protected — one lock per metric family, shared between the parent
and its children, making concurrent ``.labels().inc()`` exact.  Armed
flight recorders (:mod:`repro.obs.flight`) see every update as a
``"metric"`` event.
"""

from __future__ import annotations

from bisect import bisect_left
from threading import Lock

from .context import CONTEXT, canonical_label_set, render_label_set
from .flight import FLIGHT
from .tracer import TRACER

__all__ = [
    "Counter",
    "DEFAULT_MAX_LABEL_SETS",
    "DROPPED_LABEL_SETS",
    "EXEMPLARS_PER_BUCKET",
    "Gauge",
    "Histogram",
    "METRICS",
    "MetricsRegistry",
]

#: Per-family cardinality cap: distinct label sets admitted per metric.
DEFAULT_MAX_LABEL_SETS = 64

#: Registry counter bumped when a ``labels()`` call exceeds the cap.
DROPPED_LABEL_SETS = "obs.metrics.dropped_label_sets"

#: Exemplar ring size per histogram bucket (oldest entry overwritten).
EXEMPLARS_PER_BUCKET = 4


def _resolve_child(parent, labels: dict, factory):
    """Family-level ``labels()``: get-or-create the child for *labels*.

    Falls back to *parent* (and fires its drop hook) when the family is
    at its cardinality cap; the hook runs outside the family lock so the
    registry's overflow counter can be bumped without lock nesting.

    Hot-path note: instrumented sites resolve the same label set once per
    record, so admitted resolutions are memoized by the *raw* kwargs
    tuple, skipping canonicalization and the lock on repeat lookups (the
    memo is written under the lock, read lock-free under the GIL, and
    bounded at a few entries per admitted child — differently-ordered or
    unstringified duplicates of a label set alias the same child).
    Overflowing label sets are never memoized, so each dropped call keeps
    firing the drop hook.
    """
    if not labels:
        return parent
    raw = tuple(labels.items())
    memo = parent._memo
    if memo is not None:
        child = memo.get(raw)
        if child is not None:
            return child
    if parent._parent is not None:
        raise ValueError(
            f"metric {parent.name!r} is already labeled; call labels() on "
            "the unlabeled family"
        )
    key = canonical_label_set(labels)
    dropped = False
    with parent._lock:
        children = parent._children
        if children is None:
            children = parent._children = {}
        child = children.get(key)
        if child is None:
            if len(children) >= parent._max_label_sets:
                dropped = True
            else:
                child = children[key] = factory(key)
        if not dropped:
            memo = parent._memo
            if memo is None:
                memo = parent._memo = {}
            if len(memo) < 4 * parent._max_label_sets:
                memo[raw] = child
    if dropped:
        if parent._on_drop is not None:
            parent._on_drop(parent.name)
        return parent
    return child


def _labeled_values(metric) -> dict:
    """``rendered label set -> value`` for a family's children (sorted)."""
    with metric._lock:
        children = metric._children
        if not children:
            return {}
        return {
            render_label_set(key): child.value
            for key, child in sorted(children.items())
        }


class Counter:
    """Monotonically increasing named count (family root or labeled child)."""

    __slots__ = (
        "name", "value", "label_set",
        "_lock", "_parent", "_children", "_max_label_sets", "_on_drop",
        "_memo",
    )

    def __init__(
        self,
        name: str,
        *,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
        on_drop=None,
        _lock=None,
        _parent=None,
        label_set: tuple | None = None,
    ) -> None:
        self.name = name
        self.value = 0
        self.label_set = label_set
        self._lock = Lock() if _lock is None else _lock
        self._parent = _parent
        self._children: dict | None = None
        self._max_label_sets = max_label_sets
        self._on_drop = on_drop
        self._memo: dict | None = None

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount
            parent = self._parent
            if parent is not None:
                parent.value += amount
        if FLIGHT.enabled:
            FLIGHT.record_metric(self.name, "counter", amount, self.label_set)

    def labels(self, **labels) -> "Counter":
        """The child counter for this label set (``self`` when unlabeled)."""
        return _resolve_child(
            self,
            labels,
            lambda key: Counter(
                self.name, max_label_sets=0,
                _lock=self._lock, _parent=self, label_set=key,
            ),
        )


class Gauge:
    """Last-write-wins named value (family root or labeled child)."""

    __slots__ = (
        "name", "value", "label_set",
        "_lock", "_parent", "_children", "_max_label_sets", "_on_drop",
        "_memo",
    )

    def __init__(
        self,
        name: str,
        *,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
        on_drop=None,
        _lock=None,
        _parent=None,
        label_set: tuple | None = None,
    ) -> None:
        self.name = name
        self.value = 0.0
        self.label_set = label_set
        self._lock = Lock() if _lock is None else _lock
        self._parent = _parent
        self._children: dict | None = None
        self._max_label_sets = max_label_sets
        self._on_drop = on_drop
        self._memo: dict | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            parent = self._parent
            if parent is not None:
                parent.value = value
        if FLIGHT.enabled:
            FLIGHT.record_metric(self.name, "gauge", value, self.label_set)

    def labels(self, **labels) -> "Gauge":
        """The child gauge for this label set (``self`` when unlabeled)."""
        return _resolve_child(
            self,
            labels,
            lambda key: Gauge(
                self.name, max_label_sets=0,
                _lock=self._lock, _parent=self, label_set=key,
            ),
        )


class Histogram:
    """Fixed-bucket histogram with inclusive upper bounds plus overflow."""

    __slots__ = (
        "name", "bounds", "counts", "total", "count", "label_set",
        "_lock", "_parent", "_children", "_max_label_sets", "_on_drop",
        "_memo", "_exemplars", "_exemplar_seq",
    )

    def __init__(
        self,
        name: str,
        bounds: tuple,
        *,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
        on_drop=None,
        _lock=None,
        _parent=None,
        label_set: tuple | None = None,
    ) -> None:
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        ordered = tuple(bounds)
        if any(a >= b for a, b in zip(ordered, ordered[1:])):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly increasing: {ordered!r}"
            )
        self.name = name
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.count = 0
        self.label_set = label_set
        self._lock = Lock() if _lock is None else _lock
        self._parent = _parent
        self._children: dict | None = None
        self._max_label_sets = max_label_sets
        self._on_drop = on_drop
        self._memo: dict | None = None
        self._exemplars: dict | None = None
        self._exemplar_seq: dict | None = None

    def observe(self, value: float, span_id: int | None = None) -> None:
        bucket = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[bucket] += 1
            self.total += value
            self.count += 1
            parent = self._parent
            if parent is not None:
                parent.counts[bucket] += 1
                parent.total += value
                parent.count += 1
        if TRACER.enabled:
            self._record_exemplar(bucket, value, span_id)
        if FLIGHT.enabled:
            FLIGHT.record_metric(self.name, "histogram", value, self.label_set)

    def _record_exemplar(
        self, bucket: int, value: float, span_id: int | None
    ) -> None:
        """Link this observation to its span in the family's bucket ring.

        Runs only while tracing is enabled and never touches the bucket
        counters, so aggregates are bit-identical with or without it.
        Observations outside any live span (and without an explicit
        ``span_id``) are silently skipped.
        """
        if span_id is None:
            span_id = TRACER.current_span_id()
            if span_id is None:
                return
        label_set = self.label_set
        if label_set is None:
            label_set = canonical_label_set(CONTEXT.current())
        root = self._parent if self._parent is not None else self
        with root._lock:
            rings = root._exemplars
            if rings is None:
                rings = root._exemplars = {}
                root._exemplar_seq = {}
            ring = rings.get(bucket)
            if ring is None:
                ring = rings[bucket] = []
            seq = root._exemplar_seq.get(bucket, 0)
            entry = (value, span_id, label_set)
            if len(ring) < EXEMPLARS_PER_BUCKET:
                ring.append(entry)
            else:
                ring[seq % EXEMPLARS_PER_BUCKET] = entry
            root._exemplar_seq[bucket] = seq + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def labels(self, **labels) -> "Histogram":
        """The child histogram (same bounds) for this label set."""
        return _resolve_child(
            self,
            labels,
            lambda key: Histogram(
                self.name, self.bounds, max_label_sets=0,
                _lock=self._lock, _parent=self, label_set=key,
            ),
        )

    def _bucket_le(self, bucket: int) -> str:
        """OpenMetrics ``le`` text for *bucket* (``"+Inf"`` for overflow)."""
        if bucket < len(self.bounds):
            return f"{self.bounds[bucket]:g}"
        return "+Inf"

    def snapshot(self) -> dict:
        snap = {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
        }
        rings = self._exemplars
        if rings:
            rows = []
            for bucket in sorted(rings):
                for value, span_id, label_set in rings[bucket]:
                    rows.append({
                        "bucket": bucket,
                        "le": self._bucket_le(bucket),
                        "value": value,
                        "span_id": span_id,
                        "labels": dict(label_set),
                    })
            snap["exemplars"] = rows
        return snap


class MetricsRegistry:  # repro: shared[lock=_lock] registry map mutation holds _lock; families hold their own shared lock
    """Get-or-create registry of named metric families.

    ``max_label_sets`` caps the per-family label cardinality; overflow is
    counted in this registry's own :data:`DROPPED_LABEL_SETS` counter.
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock", "max_label_sets")

    def __init__(self, max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = Lock()
        self.max_label_sets = max_label_sets

    def _note_dropped(self, name: str) -> None:
        if name == DROPPED_LABEL_SETS:  # the overflow counter cannot overflow itself
            return
        self.counter(DROPPED_LABEL_SETS).inc()

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(
                    name,
                    max_label_sets=self.max_label_sets,
                    on_drop=self._note_dropped,
                )
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(
                    name,
                    max_label_sets=self.max_label_sets,
                    on_drop=self._note_dropped,
                )
            return metric

    def histogram(self, name: str, bounds: tuple | None = None) -> Histogram:
        """Fetch histogram *name*, creating it with *bounds* on first use.

        Re-registering with different bounds is a programming error and
        raises; re-registering with the same (or no) bounds returns the
        existing histogram.
        """
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                if bounds is None:
                    raise ValueError(f"histogram {name!r} not registered; pass bounds")
                metric = self._histograms[name] = Histogram(
                    name,
                    bounds,
                    max_label_sets=self.max_label_sets,
                    on_drop=self._note_dropped,
                )
            elif bounds is not None and tuple(bounds) != metric.bounds:
                raise ValueError(
                    f"histogram {name!r} already registered with bounds "
                    f"{metric.bounds!r}, not {tuple(bounds)!r}"
                )
            return metric

    def snapshot(self) -> dict:
        """Plain-dict view of everything (JSON-serializable).

        The ``counters``/``gauges``/``histograms`` sections carry the
        unlabeled aggregates exactly as before labels existed; a fourth
        ``labeled`` section appears only when at least one family has
        admitted a label set, keyed by the canonical rendered label set.
        """
        with self._lock:
            snap = {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.snapshot() for n, h in sorted(self._histograms.items())
                },
            }
            labeled_counters = {
                n: _labeled_values(c)
                for n, c in sorted(self._counters.items())
                if c._children
            }
            labeled_gauges = {
                n: _labeled_values(g)
                for n, g in sorted(self._gauges.items())
                if g._children
            }
            labeled_histograms = {}
            for n, h in sorted(self._histograms.items()):
                with h._lock:
                    if not h._children:
                        continue
                    labeled_histograms[n] = {
                        render_label_set(key): child.snapshot()
                        for key, child in sorted(h._children.items())
                    }
            labeled = {
                section: values
                for section, values in (
                    ("counters", labeled_counters),
                    ("gauges", labeled_gauges),
                    ("histograms", labeled_histograms),
                )
                if values
            }
            if labeled:
                snap["labeled"] = labeled
            return snap

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


METRICS = MetricsRegistry()  # repro: shared[lock=_lock] process-wide registry; mutation holds MetricsRegistry._lock
