"""Statistical quality monitors for sample streams (``repro.obs.quality``).

The paper's claims are *time-resolved statistical quality*: every figure
plots "% of the relation returned as a **valid random sample** vs. elapsed
time", and the online-aggregation payoff only holds if the Combine stream
stays uniform at every prefix.  The tracer (:mod:`repro.obs.tracer`) says
where the time went; this module observes **what statistical quality that
time bought**:

* :class:`UniformityMonitor` — a streaming chi-square over the predicate
  range, computed per *arrival-order window* of samples so a drift in the
  stream is localized in time rather than only detected at the end, plus a
  binned Kolmogorov–Smirnov statistic over the whole prefix.
* :class:`CoverageMonitor` — per-stratum arrival counts over the predicate
  range (equal-width strata by default; callers may bin however they like).
* :class:`EstimatorMonitor` — CLT running confidence intervals for the
  SUM/AVG estimators (the same math as
  ``repro.apps.online_agg.OnlineAggregator``, re-derived here because
  ``obs`` sits below ``apps`` in the layer graph) with **time-to-accuracy**:
  the simulated-clock and wall-clock time until the relative CI half-width
  first drops to each configured target ε.
* :class:`StreamQualityMonitor` — one monitored query: wraps a sampler's
  batch iterator (any :class:`repro.baselines.base.Sampler` stream, or an
  ACE :class:`~repro.acetree.query.SampleStream`) and drives the three
  monitors above from the emitted records.
* :class:`QualitySession` — a bag of monitors for a multi-query run (the
  figure harness opens one per ``(sampler, query)`` pair) plus the grouped
  summaries the trace report and JSONL export consume.

Monitors are strictly **read-only observers**: they look at the records and
the batch ``clock`` values a stream already carries, never touch the
simulated disk, RNG streams, or the stream's own state — a monitored run is
bit-identical to an unmonitored one on the simulated clock.  They also emit
first-class metrics (``quality.*`` counters/gauges/histograms) into a
:class:`~repro.obs.metrics.MetricsRegistry` so ``bench --json`` and the
text report can surface them.

Layering: this module is part of ``obs`` (rank 0 in lint rule LAY001) and
imports nothing from the rest of the library — key extraction, predicate
ranges, and population counts are passed in by the caller.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter  # repro: allow[CLK001] wall-clock TTA is an obs measurement

from scipy import stats

from .context import CONTEXT
from .flight import FLIGHT
from .metrics import METRICS, MetricsRegistry

__all__ = [
    "CoverageMonitor",
    "EstimatorMonitor",
    "QualityConfig",
    "QualitySession",
    "StreamQualityMonitor",
    "TTARecord",
    "UniformityMonitor",
    "WindowVerdict",
]

QUALITY_RECORD_VERSION = 1

_P_VALUE_BOUNDS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9)
_TTA_SIM_BOUNDS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 25.0)
_TTA_WALL_BOUNDS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                    0.025, 0.05, 0.1, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class QualityConfig:
    """Knobs shared by every monitor of a session.

    ``window`` and ``bins`` are chosen so the expected count per chi-square
    cell (``window / bins``) stays comfortably above the usual ≥5 rule of
    thumb; ``alpha`` is the per-window significance (each window is an
    independent test, so a uniform stream fails ~``alpha`` of its windows
    by chance — the verdict reports the failed count, not a hard boolean).
    """

    bins: int = 8
    window: int = 200
    alpha: float = 0.005
    min_final_window: int = 64  # partial last window is tested only past this
    ci_confidence: float = 0.95
    tta_targets: tuple[float, ...] = (0.2, 0.1, 0.05, 0.02, 0.01)
    tta_min_n: int = 30  # no TTA verdict before the CLT plausibly applies
    timeline_cap: int = 512

    def __post_init__(self) -> None:
        if self.bins < 2:
            raise ValueError(f"need at least 2 bins, got {self.bins}")
        if self.window < 2 * self.bins:
            raise ValueError(
                f"window={self.window} too small for bins={self.bins}; "
                "expected counts per cell would be unreliable"
            )
        if not 0 < self.alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if any(t <= 0 for t in self.tta_targets):
            raise ValueError("tta_targets must be positive relative widths")
        if list(self.tta_targets) != sorted(self.tta_targets, reverse=True):
            raise ValueError("tta_targets must be strictly decreasing")
        if self.tta_min_n < 2:
            raise ValueError(f"tta_min_n must be >= 2, got {self.tta_min_n}")


@dataclass(frozen=True, slots=True)
class WindowVerdict:
    """Chi-square verdict for one arrival-order window of samples."""

    index: int
    n: int
    chi2: float
    p_value: float
    ok: bool
    start_sim: float
    end_sim: float

    def as_dict(self) -> dict:
        return {
            "index": self.index, "n": self.n, "chi2": self.chi2,
            "p_value": self.p_value, "ok": self.ok,
            "start_sim": self.start_sim, "end_sim": self.end_sim,
        }


class UniformityMonitor:
    """Streaming windowed chi-square + binned KS over a 1-D predicate range.

    Values are binned into ``bins`` equal-width cells of ``[lo, hi)``.  The
    chi-square statistic of each window is computed against ``expected`` —
    per-cell probabilities, uniform by default (correct for the SALE
    workloads, whose keys are uniform; skewed callers pass their own).  A
    window that rejects at ``alpha`` pins the drift to its own arrival
    interval, which a single end-of-stream test cannot do.

    The KS statistic is computed on the binned empirical CDF of the whole
    prefix, so it is a lower bound on the exact one-sample statistic with
    resolution ``1/bins`` of the expected CDF; its p-value uses the
    asymptotic Kolmogorov distribution.
    """

    def __init__(
        self,
        lo: float,
        hi: float,
        config: QualityConfig,
        expected: tuple[float, ...] | None = None,
    ) -> None:
        if not hi > lo:
            raise ValueError(f"need hi > lo, got [{lo}, {hi})")
        self.lo = lo
        self.hi = hi
        self.config = config
        bins = config.bins
        if expected is None:
            expected = (1.0 / bins,) * bins
        if len(expected) != bins:
            raise ValueError(
                f"expected has {len(expected)} cells for {bins} bins"
            )
        total = sum(expected)
        if not math.isfinite(total) or total <= 0:
            raise ValueError("expected probabilities must sum to a positive value")
        self.expected = tuple(p / total for p in expected)
        self._scale = bins / (hi - lo)
        self._window_counts = [0] * bins
        self._window_n = 0
        self._window_start_sim = 0.0
        self._total_counts = [0] * bins
        self.samples = 0
        self.out_of_range = 0
        self.windows: list[WindowVerdict] = []  # repro: shared[confined] one monitor per observed stream

    # -- updates -------------------------------------------------------

    def observe(self, value: float, clock: float) -> None:
        """Fold one sample key in; ``clock`` is its batch's simulated time."""
        index = int((value - self.lo) * self._scale)
        bins = self.config.bins
        if value < self.lo or value > self.hi:
            # Keys outside the predicate range mean the *stream* is wrong
            # (its contract is to emit matching records only); count rather
            # than raise so the verdict carries the evidence.
            self.out_of_range += 1
            index = min(max(index, 0), bins - 1)
        elif index >= bins:  # value == hi (closed queries) or edge rounding
            index = bins - 1
        if self._window_n == 0:
            self._window_start_sim = clock
        self._window_counts[index] += 1
        self._total_counts[index] += 1
        self._window_n += 1
        self.samples += 1
        if self._window_n >= self.config.window:
            self._close_window(clock)

    def _close_window(self, end_sim: float) -> None:
        n = self._window_n
        chi2 = 0.0
        for observed, p in zip(self._window_counts, self.expected):
            expected = n * p
            if expected > 0:
                delta = observed - expected
                chi2 += delta * delta / expected
        p_value = float(stats.chi2.sf(chi2, self.config.bins - 1))
        self.windows.append(
            WindowVerdict(
                index=len(self.windows),
                n=n,
                chi2=chi2,
                p_value=p_value,
                ok=p_value >= self.config.alpha,
                start_sim=self._window_start_sim,
                end_sim=end_sim,
            )
        )
        self._window_counts = [0] * self.config.bins
        self._window_n = 0

    def finalize(self, clock: float) -> None:
        """Close the trailing partial window (if it has enough samples)."""
        if self._window_n >= self.config.min_final_window:
            self._close_window(clock)
        else:
            self._window_n = 0
            self._window_counts = [0] * self.config.bins

    # -- verdicts ------------------------------------------------------

    @property
    def windows_failed(self) -> int:
        return sum(1 for w in self.windows if not w.ok)

    @property
    def min_p_value(self) -> float:
        return min((w.p_value for w in self.windows), default=1.0)

    def overall_chi2(self) -> tuple[float, float]:
        """(statistic, p-value) over the entire prefix."""
        n = self.samples
        chi2 = 0.0
        for observed, p in zip(self._total_counts, self.expected):
            expected = n * p
            if expected > 0:
                delta = observed - expected
                chi2 += delta * delta / expected
        if n == 0:
            return 0.0, 1.0
        return chi2, float(stats.chi2.sf(chi2, self.config.bins - 1))

    def ks_statistic(self) -> tuple[float, float]:
        """Binned one-sample KS ``(D, p)`` of the prefix vs ``expected``."""
        n = self.samples
        if n == 0:
            return 0.0, 1.0
        d = 0.0
        ecdf = 0.0
        cdf = 0.0
        for observed, p in zip(self._total_counts, self.expected):
            ecdf += observed / n
            cdf += p
            d = max(d, abs(ecdf - cdf))
        p_value = float(stats.kstwobign.sf(d * math.sqrt(n)))
        return d, p_value

    @property
    def ok(self) -> bool:
        """No window rejected, no out-of-range key.

        With ``w`` windows a uniform stream still fails with probability
        ``~w * alpha``; callers that want a hard gate should also look at
        :meth:`overall_chi2` and the failed-window *count*.
        """
        return self.windows_failed == 0 and self.out_of_range == 0

    def summary(self) -> dict:
        chi2, chi2_p = self.overall_chi2()
        ks_d, ks_p = self.ks_statistic()
        return {
            "samples": self.samples,
            "bins": self.config.bins,
            "window": self.config.window,
            "alpha": self.config.alpha,
            "windows": [w.as_dict() for w in self.windows],
            "windows_failed": self.windows_failed,
            "min_window_p": self.min_p_value,
            "chi2": chi2,
            "chi2_p": chi2_p,
            "ks_d": ks_d,
            "ks_p": ks_p,
            "out_of_range": self.out_of_range,
            "ok": self.ok,
        }


class CoverageMonitor:
    """Per-stratum arrival counts over the predicate range.

    Strata default to the same equal-width cells the uniformity monitor
    uses; a custom ``stratum_of`` maps a key to a stratum index in
    ``[0, strata)`` (e.g. an ACE level ancestor index).  Coverage — the
    fraction of strata that have received at least one sample — is the
    cheap early-warning signal: a stream that never touches a stratum is
    biased long before chi-square has the power to say so.
    """

    def __init__(
        self,
        lo: float,
        hi: float,
        strata: int,
        stratum_of=None,
    ) -> None:
        if strata < 1:
            raise ValueError(f"need at least one stratum, got {strata}")
        self.strata = strata
        self.counts = [0] * strata
        if stratum_of is None:
            scale = strata / (hi - lo)
            stratum_of = lambda v: int((v - lo) * scale)  # noqa: E731
        self._stratum_of = stratum_of

    def observe(self, value: float) -> None:
        index = self._stratum_of(value)
        if 0 <= index < self.strata:
            self.counts[index] += 1
        elif index == self.strata:  # hi-edge float rounding
            self.counts[index - 1] += 1

    @property
    def hit(self) -> int:
        return sum(1 for c in self.counts if c)

    @property
    def coverage(self) -> float:
        return self.hit / self.strata

    def summary(self) -> dict:
        return {
            "strata": self.strata,
            "hit": self.hit,
            "coverage": self.coverage,
            "counts": list(self.counts),
        }


@dataclass(frozen=True, slots=True)
class TTARecord:
    """Time-to-accuracy: when the CI half-width first met one target ε."""

    epsilon: float
    n: int
    sim_seconds: float
    wall_seconds: float
    estimate: float
    half_width: float

    def as_dict(self) -> dict:
        return {
            "epsilon": self.epsilon, "n": self.n,
            "sim_seconds": self.sim_seconds, "wall_seconds": self.wall_seconds,
            "estimate": self.estimate, "half_width": self.half_width,
        }


class EstimatorMonitor:
    """Running CLT confidence interval + time-to-accuracy for AVG/SUM.

    Welford's update keeps the running mean and variance; the half-width is
    ``z * sqrt(var/n * fpc)`` with the finite-population correction
    ``(N - n)/(N - 1)`` when a population size is known — the same
    estimator ``repro.apps.online_agg`` exposes to users, re-derived here
    because ``obs`` must not import ``apps``.  After every batch the
    monitor checks the *relative* half-width against each remaining target
    ε (largest first) and records the crossing on both clocks.
    """

    def __init__(
        self,
        config: QualityConfig,
        population: float | None = None,
    ) -> None:
        if population is not None and population < 0:
            raise ValueError(f"population must be >= 0, got {population}")
        self.config = config
        self.population = population
        self._z = float(stats.norm.ppf(0.5 + config.ci_confidence / 2))
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._pending = list(config.tta_targets)
        self.tta: list[TTARecord] = []
        #: (sim clock, n, mean, half-width) per batch, stride-decimated.
        self.timeline: list[tuple[float, int, float, float]] = []
        self._timeline_stride = 1
        self._timeline_skip = 0

    # -- updates -------------------------------------------------------

    def add(self, value: float) -> None:
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def batch_end(self, clock: float, sim_elapsed: float, wall_elapsed: float) -> None:
        """Evaluate the CI once per consumed batch (never per record)."""
        half = self.half_width()
        self._timeline_point(clock, half)
        if not self._pending or not math.isfinite(half):
            return
        if self._count < self.config.tta_min_n:
            # A 2-sample CI can be arbitrarily narrow by luck; withhold the
            # time-to-accuracy verdict until the CLT plausibly applies.
            return
        mean = self._mean
        if mean == 0.0:
            return
        relative = half / abs(mean)
        while self._pending and relative <= self._pending[0]:
            self.tta.append(
                TTARecord(
                    epsilon=self._pending.pop(0),
                    n=self._count,
                    sim_seconds=sim_elapsed,
                    wall_seconds=wall_elapsed,
                    estimate=mean,
                    half_width=half,
                )
            )

    def _timeline_point(self, clock: float, half: float) -> None:
        if self._timeline_skip > 0:
            self._timeline_skip -= 1
            return
        self.timeline.append((clock, self._count, self._mean, half))
        self._timeline_skip = self._timeline_stride - 1
        if len(self.timeline) >= self.config.timeline_cap:
            # Deterministic decimation: halve the resolution, double the
            # stride.  Keeps the timeline bounded on completion runs.
            self.timeline = self.timeline[::2]
            self._timeline_stride *= 2

    # -- estimates -----------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    def half_width(self) -> float:
        if self._count < 2:
            return math.inf
        fpc = 1.0
        population = self.population
        if population is not None:
            if population > 1 and self._count < population:
                fpc = (population - self._count) / (population - 1)
            elif self._count >= population > 0:
                fpc = 0.0
        return self._z * math.sqrt(self.variance / self._count * fpc)

    def summary(self) -> dict:
        return {
            "n": self._count,
            "mean": self._mean,
            "variance": self.variance,
            "half_width": self.half_width() if self._count >= 2 else None,
            "confidence": self.config.ci_confidence,
            "population": self.population,
            "targets": list(self.config.tta_targets),
            "tta": [r.as_dict() for r in self.tta],
            "timeline": [
                # inf (n < 2) -> None: keeps the JSONL strictly RFC JSON.
                {"clock": c, "n": n, "mean": m,
                 "half_width": h if math.isfinite(h) else None}
                for c, n, m, h in self.timeline
            ],
        }


class StreamQualityMonitor:
    """All three monitors attached to one query's sample stream.

    Args:
        label: unique name for this monitored stream (e.g. ``"ACE Tree/q0"``).
        key_of: record -> the indexed key the predicate constrains (for 2-D
            queries, one marginal — a uniform sample has uniform marginals).
        lo/hi: the predicate range on that key (half-open).
        group: aggregation key for reporting (defaults to ``label``); the
            figure harness groups by sampler name.
        value_of: record -> the aggregated value for the CI/TTA monitor
            (defaults to ``key_of``).
        population: matching-record count (exact or estimated) for the
            finite-population correction; ``None`` disables the FPC.
        expected: per-bin probabilities for the uniformity test (uniform by
            default).
        metrics: registry receiving the ``quality.*`` metrics (the process
            registry by default).
    """

    def __init__(
        self,
        label: str,
        key_of,
        lo: float,
        hi: float,
        *,
        group: str | None = None,
        value_of=None,
        population: float | None = None,
        expected: tuple[float, ...] | None = None,
        config: QualityConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.label = label
        self.group = group if group is not None else label
        #: Telemetry-context baggage captured at creation time: the labels
        #: every ``quality.*`` metric of this stream carries, and the
        #: ``"labels"`` field of the exported quality record.
        self.labels = dict(CONTEXT.labels())
        self.config = config if config is not None else QualityConfig()
        self.metrics = metrics if metrics is not None else METRICS
        self._key_of = key_of
        self._value_of = value_of if value_of is not None else key_of
        self.uniformity = UniformityMonitor(lo, hi, self.config, expected)
        self.coverage = CoverageMonitor(lo, hi, self.config.bins)
        self.estimator = EstimatorMonitor(self.config, population)
        self.lo = lo
        self.hi = hi
        self.start_sim: float | None = None
        self.end_sim: float | None = None
        self._start_wall: float | None = None
        self.batches = 0
        self._finalized = False
        #: Set when the monitored stream reported itself degraded (e.g. an
        #: ACE stream that lost a leaf to a storage failure) — the prefix
        #: is then *known* non-uniform and the verdict must not certify it.
        self.degraded = False
        self.degraded_reason: str | None = None

    # -- observation ---------------------------------------------------

    def wrap(self, batches, start_sim: float):
        """Yield ``batches`` unchanged while observing records and clocks.

        ``start_sim`` is the simulated clock at which the sampler started
        (batch clocks are absolute).  The monitor finalizes itself when the
        stream is exhausted *or* abandoned early (generator close), so
        truncated races still produce verdicts.
        """
        self.start_sim = start_sim
        self._start_wall = perf_counter()
        try:
            for batch in batches:
                self.observe_batch(batch.records, batch.clock)
                yield batch
        finally:
            # A stream that lost data mid-flight (ACE Tree under storage
            # faults) exposes ``degraded``; fold it into the verdict so a
            # fault-injected run is flagged rather than certified uniform.
            if getattr(batches, "degraded", False):
                lost = getattr(batches, "lost_leaves", None)
                self.mark_degraded(
                    f"stream degraded (lost leaves: {lost})"
                    if lost else "stream degraded"
                )
            self.finalize()

    def observe_batch(self, records, clock: float) -> None:
        """Fold one emitted batch into every monitor."""
        if self.start_sim is None:
            self.start_sim = clock
        if self._start_wall is None:
            self._start_wall = perf_counter()
        key_of = self._key_of
        value_of = self._value_of
        uniformity = self.uniformity
        coverage = self.coverage
        estimator = self.estimator
        for record in records:
            key = key_of(record)
            uniformity.observe(key, clock)
            coverage.observe(key)
            estimator.add(value_of(record))
        self.batches += 1
        self.end_sim = clock
        estimator.batch_end(
            clock,
            sim_elapsed=clock - self.start_sim,
            wall_elapsed=perf_counter() - self._start_wall,
        )

    def mark_degraded(self, reason: str) -> None:
        """Flag the monitored stream as known non-uniform (data was lost)."""
        if not self.degraded:
            self.degraded = True
            self.degraded_reason = reason
            self.metrics.counter("quality.degraded_streams").labels(
                **self.labels
            ).inc()

    def finalize(self) -> None:
        """Close the trailing window and publish the ``quality.*`` metrics."""
        if self._finalized:
            return
        self._finalized = True
        end = self.end_sim if self.end_sim is not None else 0.0
        self.uniformity.finalize(end)
        metrics = self.metrics
        labels = self.labels
        metrics.counter("quality.streams").labels(**labels).inc()
        metrics.counter("quality.samples").labels(**labels).inc(
            self.uniformity.samples
        )
        metrics.counter("quality.windows").labels(**labels).inc(
            len(self.uniformity.windows)
        )
        metrics.counter("quality.windows_failed").labels(**labels).inc(
            self.uniformity.windows_failed
        )
        if self.uniformity.out_of_range:
            metrics.counter("quality.out_of_range").labels(**labels).inc(
                self.uniformity.out_of_range
            )
        p_hist = metrics.histogram(
            "quality.window_p_value", _P_VALUE_BOUNDS
        ).labels(**labels)
        for window in self.uniformity.windows:
            p_hist.observe(window.p_value)
        ks_d, _ = self.uniformity.ks_statistic()
        gauge = metrics.gauge("quality.ks_d_max")
        aggregate_max = max(gauge.value, ks_d)
        if labels:
            child = gauge.labels(**labels)
            child.set(max(child.value, ks_d))
        # Restore the aggregate *after* the child write: a labeled set also
        # writes the parent, which would replace the cross-stream max with
        # this stream's — the unlabeled aggregate must stay the global max.
        gauge.set(aggregate_max)
        sim_hist = metrics.histogram(
            "quality.tta_sim_s", _TTA_SIM_BOUNDS
        ).labels(**labels)
        wall_hist = metrics.histogram(
            "quality.tta_wall_s", _TTA_WALL_BOUNDS
        ).labels(**labels)
        for record in self.estimator.tta:
            sim_hist.observe(record.sim_seconds)
            wall_hist.observe(record.wall_seconds)
        if FLIGHT.enabled:
            FLIGHT.record_quality(self.summary())

    # -- export --------------------------------------------------------

    def summary(self) -> dict:
        """The versioned quality record the JSONL export carries."""
        self.finalize()
        record = {
            "kind": "quality",
            "v": QUALITY_RECORD_VERSION,
            "label": self.label,
            "group": self.group,
            "lo": self.lo,
            "hi": self.hi,
            "batches": self.batches,
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "uniformity": self.uniformity.summary(),
            "coverage": self.coverage.summary(),
            "estimator": self.estimator.summary(),
        }
        if self.labels:
            record["labels"] = dict(self.labels)
        return record


@dataclass
class QualitySession:
    """Monitors for one run (one per monitored stream), plus aggregation."""

    config: QualityConfig = field(default_factory=QualityConfig)
    metrics: MetricsRegistry | None = None
    monitors: list[StreamQualityMonitor] = field(default_factory=list)

    def monitor(self, label: str, key_of, lo: float, hi: float, **kwargs):
        """Create, register, and return one :class:`StreamQualityMonitor`."""
        kwargs.setdefault("config", self.config)
        kwargs.setdefault("metrics", self.metrics)
        mon = StreamQualityMonitor(label, key_of, lo, hi, **kwargs)
        self.monitors.append(mon)
        return mon

    def finalize(self) -> None:
        for mon in self.monitors:
            mon.finalize()

    def records(self) -> list[dict]:
        """One versioned quality record per monitored stream."""
        return [mon.summary() for mon in self.monitors]

    def groups(self) -> dict[str, list[StreamQualityMonitor]]:
        """Monitors keyed by their aggregation group, insertion-ordered."""
        out: dict[str, list[StreamQualityMonitor]] = {}
        for mon in self.monitors:
            out.setdefault(mon.group, []).append(mon)
        return out
