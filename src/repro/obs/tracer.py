"""Hierarchical dual-clock span tracer.

A *span* brackets one operation and records, at entry and exit:

* the **wall clock** (``time.perf_counter`` — this module is one of the
  three sanctioned wall-clock sites, see lint rule CLK001), and
* the **simulated clock** of the :class:`~repro.storage.disk.SimulatedDisk`
  the operation runs against — ``disk.clock`` plus the page-read/write
  deltas of ``disk.stats``.

The tracer never *charges* the simulated disk; it only reads the clock and
counters at span boundaries, so a traced run is bit-identical to an
untraced one on the simulated timeline.

``Tracer.span()`` has a three-tier fast path chosen per call:

1. **tracing enabled** — a full :class:`SpanRecord` is built, linked into
   the current thread's span stack (parent/child), and dispatched to every
   listener on exit;
2. **tracing disabled, aggregate profile attached and enabled** — a
   lightweight timer object measures wall time only and folds it into the
   attached :class:`~repro.core.profile.Profiler` under the span name,
   exactly like the legacy ``PROFILE.timer(name)`` path (skipped for
   ``detail=True`` hot-loop spans, which only record while tracing);
3. **both off** — the shared :data:`NOOP_SPAN` singleton is returned, whose
   ``__enter__`` yields ``None``.  This path allocates nothing and is the
   reason instrumentation may live in hot loops (the ``bench`` micro suite
   asserts its per-call cost).

Call sites therefore follow the pattern::

    with TRACER.span("ace_query.stab", disk=tree.disk) as sp:
        ...
        if sp is not None:          # only pay for attributes when tracing
            sp.attrs["leaf"] = leaf_index

The span stack is thread-local: concurrent threads build disjoint trace
trees.  Listener registration and span-id allocation are lock-protected.
Do not toggle ``enable()``/``disable()`` while spans are open.
"""

from __future__ import annotations

from threading import Lock, local
from time import perf_counter

from .context import CONTEXT

__all__ = ["NOOP_SPAN", "SpanRecord", "TRACER", "Tracer"]


class SpanRecord:
    """One finished (or in-flight) span: both clocks, disk deltas, attrs.

    ``start_sim``/``end_sim`` are ``None`` when the span had no simulated
    disk in scope.  ``children`` holds nested records in completion order;
    ``parent_id`` is ``None`` for a trace root.  ``page_reads`` and
    ``page_writes`` are *cumulative* over the span (children included);
    subtract the children's counts for self-cost.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start_wall",
        "end_wall",
        "start_sim",
        "end_sim",
        "page_reads",
        "page_writes",
        "attrs",
        "children",
    )

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.span_id = 0
        self.parent_id: int | None = None
        self.start_wall = 0.0
        self.end_wall = 0.0
        self.start_sim: float | None = None
        self.end_sim: float | None = None
        self.page_reads = 0
        self.page_writes = 0
        self.attrs: dict = attrs if attrs is not None else {}
        self.children: list[SpanRecord] = []

    @property
    def wall_seconds(self) -> float:
        return max(0.0, self.end_wall - self.start_wall)

    @property
    def sim_seconds(self) -> float:
        """Simulated seconds elapsed inside the span (0.0 without a disk).

        Clamped at zero so a ``reset_clock()`` inside the span (the figure
        harness does this once after context setup) cannot yield negative
        durations.
        """
        if self.start_sim is None or self.end_sim is None:
            return 0.0
        return max(0.0, self.end_sim - self.start_sim)

    @property
    def self_page_reads(self) -> int:
        reads = self.page_reads - sum(c.page_reads for c in self.children)
        return max(0, reads)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, id={self.span_id}, "
            f"wall={self.wall_seconds:.6f}s, sim={self.sim_seconds:.6f}s, "
            f"reads={self.page_reads}, children={len(self.children)})"
        )


class _NoopSpan:
    """Shared do-nothing context manager returned when nothing listens."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


NOOP_SPAN = _NoopSpan()  # repro: shared[frozen] stateless sentinel span


class _TimerSpan:
    """Aggregate-only span: wall time folded into the attached profiler.

    Used when tracing is off but the legacy ``PROFILE`` registry is
    enabled — semantically identical to ``Profiler.timer(name)``.
    """

    __slots__ = ("_profile", "_name", "_start")

    def __init__(self, profile, name: str) -> None:
        self._profile = profile
        self._name = name

    def __enter__(self):
        self._start = perf_counter()
        return None

    def __exit__(self, exc_type, exc, tb):
        self._profile.add_time(self._name, perf_counter() - self._start)
        return False


class _LiveSpan:
    """Full recording span: dual clocks, disk deltas, tree linkage."""

    __slots__ = ("_tracer", "_disk", "_reads0", "_writes0", "record")

    def __init__(self, tracer: "Tracer", name: str, disk, attrs: dict) -> None:
        self._tracer = tracer
        self._disk = disk
        self.record = SpanRecord(name, attrs)

    def __enter__(self) -> SpanRecord:
        tracer = self._tracer
        record = self.record
        stack = tracer._span_stack()
        if stack:
            parent_record, parent_disk = stack[-1]
            record.parent_id = parent_record.span_id
            if self._disk is None:
                self._disk = parent_disk
        baggage = CONTEXT.current()
        if baggage:
            # Telemetry-context propagation: the live path only — explicit
            # span attributes win over ambient baggage.
            attrs = record.attrs
            for key, value in baggage.items():
                attrs.setdefault(key, value)
        record.span_id = tracer._next_span_id()
        disk = self._disk
        if disk is not None:
            record.start_sim = disk.clock
            stats = disk.stats
            self._reads0 = stats.page_reads
            self._writes0 = stats.page_writes
        stack.append((record, disk))
        record.start_wall = perf_counter()
        return record

    def __exit__(self, exc_type, exc, tb):
        record = self.record
        record.end_wall = perf_counter()
        disk = self._disk
        if disk is not None:
            record.end_sim = disk.clock
            stats = disk.stats
            # Clamped: disk.reset_clock() swaps in a fresh stats object, so
            # a span deliberately straddling a reset must not go negative.
            record.page_reads = max(0, stats.page_reads - self._reads0)
            record.page_writes = max(0, stats.page_writes - self._writes0)
        tracer = self._tracer
        stack = tracer._span_stack()
        stack.pop()
        if stack:
            stack[-1][0].children.append(record)
        tracer._dispatch(record)
        profile = tracer._profile
        if profile is not None:
            profile.add_time(record.name, record.end_wall - record.start_wall)
        return False


class Tracer:
    """Span factory + listener hub.  One process-wide instance: :data:`TRACER`."""

    __slots__ = ("enabled", "_profile", "_listeners", "_lock", "_span_ids", "_tls")

    def __init__(self) -> None:
        self.enabled = False
        self._profile = None
        self._listeners: list = []
        self._lock = Lock()
        self._span_ids = 0
        self._tls = local()

    # -- configuration -------------------------------------------------

    def attach_profile(self, profile) -> None:
        """Make *profile* a consumer of the span stream.

        Every measured span (live or aggregate-only) folds its wall time
        into ``profile.add_time(span_name, seconds)``, and
        :meth:`count` forwards to ``profile.count`` — this is how the
        legacy ``PROFILE`` registry keeps working on top of the tracer.
        """
        self._profile = profile

    def add_listener(self, listener) -> None:
        """Register ``listener(record)`` to run on every finished live span."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def enable(self) -> None:
        """Turn on full span recording (resets this thread's span stack)."""
        self._tls.stack = []
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- span creation -------------------------------------------------

    def span(self, name: str, disk=None, detail=False, **attrs):
        """Open a span named *name*, optionally bound to a simulated *disk*.

        When *disk* is omitted the span inherits the enclosing live span's
        disk (if any), so call sites deep in the stack need not thread the
        disk handle through.  Extra keyword arguments become initial span
        attributes (only materialized when tracing is enabled).

        ``detail=True`` marks a hot-loop span (per stab, per page, per
        batch): it records normally while tracing but skips the aggregate
        timer tier when tracing is off, so instrumenting a hot loop costs
        one call + branch rather than a ``perf_counter`` pair.  Phase-level
        spans (the legacy ``PROFILE`` names) stay ``detail=False``.
        """
        if self.enabled:
            return _LiveSpan(self, name, disk, attrs)
        if detail:
            return NOOP_SPAN
        profile = self._profile
        if profile is not None and profile.enabled:
            return _TimerSpan(profile, name)
        return NOOP_SPAN

    def count(self, name: str, value: int = 1) -> None:
        """Bump the aggregate counter *name* (no-op without a profile)."""
        profile = self._profile
        if profile is not None:
            profile.count(name, value)

    def current_span_id(self) -> int | None:
        """The id of this thread's innermost live span, if any.

        This is the sanctioned way for exemplar capture to learn which
        span an observation belongs to (lint rule OBS002); it touches
        only thread-local state, so no lock is taken.
        """
        stack = self._span_stack()
        return stack[-1][0].span_id if stack else None

    # -- internals -----------------------------------------------------

    def _span_stack(self) -> list:
        try:
            return self._tls.stack
        except AttributeError:
            stack = self._tls.stack = []
            return stack

    def _next_span_id(self) -> int:
        with self._lock:
            self._span_ids += 1
            return self._span_ids

    def _dispatch(self, record: SpanRecord) -> None:
        for listener in self._listeners:
            listener(record)


TRACER = Tracer()  # repro: shared[owner=serve.scheduler] span sink; interleaved traversals emit spans only inside the owner's quanta
