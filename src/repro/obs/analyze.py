"""Trace analytics: run diffing, critical paths, flamegraphs, exemplars.

The telemetry substrate records everything — spans with dual clocks
(PR 3), labeled metrics and flight rings (PRs 4/8) — but raw JSONL is a
poor debugging surface.  This module turns the repro's *bit-identical
simulated clock* invariant into tools:

* **Stable span path keys** (:func:`span_paths`): every span gets a
  wall-free key ``parent-path/name#ordinal`` where the ordinal counts
  same-named siblings in child order.  Two runs of the same seed produce
  identical key sets even though raw span ids differ (the tracer's id
  counter is process-global), so keys — not ids — are the join column
  for everything below.
* **Trace diff** (:func:`diff_traces`): aligns two traces by path key,
  compares each aligned span on its replay-stable fields (the
  :func:`~repro.obs.export.strip_wall_keys` projection shared with the
  flight recorder), reports per-subtree simulated-clock / page-read
  deltas, and names the *first divergent span* in preorder.  The CLI
  (``python -m repro trace diff A.jsonl B.jsonl``) exits 0 when
  identical, 1 on divergence, 2 on malformed input; ``bench --compare``
  and the testkit oracle invoke it automatically on deterministic
  failures.
* **Critical path** (:func:`critical_path`) and **flamegraphs**
  (:func:`flamegraph_lines`): max-cost root-to-leaf descent and
  collapsed-stack export (``name;child;... value``), on either clock or
  raw page reads; page-read attribution rides along so the flame totals
  reconcile with the disks' charged counters.
* **Flight-dump diffing** (:func:`diff_event_views`): the same lockstep
  comparison over ``deterministic_view`` projections of two flight
  event sequences — used by the testkit to classify an oracle failure
  as deterministic (replay diffs empty) or not.

Verdicts serialize as ``"kind": "diff"`` records
(:data:`~repro.obs.export.DIFF_SCHEMA`), exemplar retention as
``"kind": "exemplar"`` records built from registry snapshots
(:func:`exemplar_records`), and cost-accountant ledgers as
``"kind": "cost"`` records (:func:`cost_record`) — all validated by
``trace validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .export import span_to_dict, strip_wall_keys
from .flight import deterministic_view

__all__ = [
    "CLOCKS",
    "SpanDivergence",
    "TraceDiff",
    "cost_record",
    "critical_path",
    "diff_event_views",
    "diff_traces",
    "diff_verdict_record",
    "exemplar_records",
    "flamegraph_lines",
    "normalize_span",
    "render_critical_path",
    "render_flamegraph_summary",
    "render_trace_diff",
    "span_paths",
    "trace_roots",
]

#: Cost dimensions understood by the analytics: the two clocks plus raw
#: charged page reads.
CLOCKS = ("sim", "wall", "reads")

#: Span-record keys excluded from divergence comparison on top of the
#: wall keys: ids are process-global counters, not replay-stable.
_ID_KEYS = ("span_id", "parent_id")


def trace_roots(records) -> list:
    """The root spans of a loaded trace, in file order.

    A span is a root when it has no parent or its parent is not in the
    file (a flight ring may have evicted it).
    """
    ids = {record.span_id for record in records}
    return [
        record for record in records
        if record.parent_id is None or record.parent_id not in ids
    ]


def span_paths(records) -> dict:
    """Stable path key -> span record, in preorder.

    Keys are ``parent-path/name#ordinal`` with the ordinal counting
    same-named siblings in child order — no wall values, no raw ids —
    so two same-seed runs produce the same key set.
    """
    out: dict = {}

    def assign(children, prefix: str) -> None:
        ordinals: dict[str, int] = {}
        for child in children:
            ordinal = ordinals.get(child.name, 0)
            ordinals[child.name] = ordinal + 1
            path = f"{prefix}{child.name}#{ordinal}"
            out[path] = child
            assign(child.children, path + "/")

    assign(trace_roots(records), "")
    return out


def normalize_span(record) -> dict:
    """The replay-stable projection of one span (diff comparison basis)."""
    cleaned = strip_wall_keys(span_to_dict(record))
    for key in _ID_KEYS:
        cleaned.pop(key, None)
    return cleaned


@dataclass(frozen=True, slots=True)
class SpanDivergence:
    """One aligned span whose replay-stable fields differ."""

    path: str
    fields: tuple
    a: dict
    b: dict


@dataclass
class TraceDiff:
    """Everything :func:`diff_traces` found between two traces.

    ``divergences`` and the ``only_a``/``only_b`` path lists are in
    A's / B's preorder; ``deltas`` holds ``(path, sim_delta,
    reads_delta)`` for every aligned subtree whose cumulative simulated
    seconds or page reads moved (B minus A).
    """

    aligned: int = 0
    only_a: list = field(default_factory=list)
    only_b: list = field(default_factory=list)
    divergences: list = field(default_factory=list)
    deltas: list = field(default_factory=list)
    first_divergent: str | None = None

    @property
    def identical(self) -> bool:
        return not (self.only_a or self.only_b or self.divergences)


def diff_traces(records_a, records_b) -> TraceDiff:
    """Align two loaded traces by span path key and compare them.

    The walk is A's preorder, so ``first_divergent`` is the earliest
    span (structural or value) where the runs split — the place to start
    debugging, since everything after it may be downstream fallout.
    """
    diff = TraceDiff()
    paths_a = span_paths(records_a)
    paths_b = span_paths(records_b)
    for path, node_a in paths_a.items():  # dict preserves preorder
        node_b = paths_b.get(path)
        if node_b is None:
            diff.only_a.append(path)
            if diff.first_divergent is None:
                diff.first_divergent = path
            continue
        diff.aligned += 1
        norm_a = normalize_span(node_a)
        norm_b = normalize_span(node_b)
        changed = tuple(
            key for key in sorted(norm_a.keys() | norm_b.keys())
            if norm_a.get(key) != norm_b.get(key)
        )
        if changed:
            diff.divergences.append(
                SpanDivergence(
                    path,
                    changed,
                    {key: norm_a.get(key) for key in changed},
                    {key: norm_b.get(key) for key in changed},
                )
            )
            if diff.first_divergent is None:
                diff.first_divergent = path
        sim_delta = node_b.sim_seconds - node_a.sim_seconds
        reads_delta = node_b.page_reads - node_a.page_reads
        if sim_delta or reads_delta:
            diff.deltas.append((path, sim_delta, reads_delta))
    diff.only_b = [path for path in paths_b if path not in paths_a]
    if diff.first_divergent is None and diff.only_b:
        diff.first_divergent = diff.only_b[0]
    return diff


def diff_verdict_record(diff: TraceDiff, a=None, b=None, reason=None) -> dict:
    """The ``"kind": "diff"`` JSONL record for *diff* (DIFF_SCHEMA)."""
    record = {
        "kind": "diff",
        "v": 1,
        "identical": diff.identical,
        "aligned": diff.aligned,
        "only_a": len(diff.only_a),
        "only_b": len(diff.only_b),
        "divergences": len(diff.divergences),
        "first_divergent": diff.first_divergent,
    }
    if a is not None:
        record["a"] = str(a)
    if b is not None:
        record["b"] = str(b)
    if reason is not None:
        record["reason"] = str(reason)
    return record


def diff_event_views(events_a, events_b) -> dict:
    """Lockstep-compare the deterministic views of two flight event lists.

    Returns a verdict dict shaped like the :class:`TraceDiff` summary:
    ``identical`` / ``aligned`` / ``only_a`` / ``only_b`` /
    ``divergences`` / ``first_divergent`` (a human-readable event
    description, since ring events have no span-tree paths).
    """
    view_a = deterministic_view(events_a)
    view_b = deterministic_view(events_b)
    first = None
    diverging = 0
    for index, (event_a, event_b) in enumerate(zip(view_a, view_b)):
        if event_a == event_b:
            continue
        diverging += 1
        if first is None:
            changed = [
                key for key in sorted(event_a.keys() | event_b.keys())
                if event_a.get(key) != event_b.get(key)
            ]
            label = event_a.get("name") or event_a.get("kind", "span")
            first = f"event #{index} ({label}): {', '.join(changed)}"
    only_a = max(0, len(view_a) - len(view_b))
    only_b = max(0, len(view_b) - len(view_a))
    if first is None and only_a:
        first = f"event #{len(view_b)} onward only in A ({only_a} event(s))"
    if first is None and only_b:
        first = f"event #{len(view_a)} onward only in B ({only_b} event(s))"
    return {
        "identical": first is None,
        "aligned": min(len(view_a), len(view_b)),
        "only_a": only_a,
        "only_b": only_b,
        "divergences": diverging,
        "first_divergent": first,
    }


# -- cost dimensions ---------------------------------------------------


def _span_cost(record, clock: str) -> float:
    if clock == "sim":
        return record.sim_seconds
    if clock == "wall":
        return record.wall_seconds
    if clock == "reads":
        return record.page_reads
    raise ValueError(f"unknown clock {clock!r}; choose from {', '.join(CLOCKS)}")


def critical_path(records, clock: str = "sim") -> list[dict]:
    """Max-cost root-to-leaf descent, one row per step.

    Starts at the most expensive root and repeatedly descends into the
    most expensive child (ties break to the first in child order, which
    is deterministic).  Each row carries the span's stable path key, its
    cumulative and self cost on *clock*, and its cumulative page reads
    so cost attribution survives into the report.
    """
    roots = trace_roots(records)
    if not roots:
        return []
    path_of = {
        record.span_id: path for path, record in span_paths(records).items()
    }
    node = max(roots, key=lambda r: _span_cost(r, clock))
    rows = []
    while node is not None:
        cumulative = _span_cost(node, clock)
        child_sum = sum(_span_cost(c, clock) for c in node.children)
        rows.append({
            "path": path_of[node.span_id],
            "cumulative": cumulative,
            "self": max(0.0, cumulative - child_sum),
            "page_reads": node.page_reads,
            "self_page_reads": node.self_page_reads,
        })
        node = (
            max(node.children, key=lambda c: _span_cost(c, clock))
            if node.children else None
        )
    return rows


def flamegraph_lines(records, clock: str = "sim") -> list[str]:
    """Collapsed-stack flamegraph lines: ``root;child;leaf value``.

    Stacks are semicolon-joined span *names* (ordinals collapse, which
    is what aggregating flame tooling expects); the value is the integer
    self cost — microseconds for the clocks, raw count for ``reads`` —
    summed over every span sharing the stack.  Lines are sorted, so the
    output is deterministic; zero-valued stacks are dropped.  Feed the
    result to any ``flamegraph.pl``-compatible renderer.
    """
    totals: dict[str, int] = {}

    def walk(node, stack: str) -> None:
        stack = f"{stack};{node.name}" if stack else node.name
        cumulative = _span_cost(node, clock)
        child_sum = sum(_span_cost(c, clock) for c in node.children)
        self_cost = max(0.0, cumulative - child_sum)
        value = int(self_cost) if clock == "reads" else int(round(self_cost * 1e6))
        totals[stack] = totals.get(stack, 0) + value
        for child in node.children:
            walk(child, stack)

    for root in trace_roots(records):
        walk(root, "")
    return [f"{stack} {value}" for stack, value in sorted(totals.items()) if value]


# -- record builders ---------------------------------------------------


def exemplar_records(snapshot: dict | None) -> list[dict]:
    """``"kind": "exemplar"`` JSONL records from a registry snapshot."""
    records = []
    for name, hist in sorted((snapshot or {}).get("histograms", {}).items()):
        for row in hist.get("exemplars", ()):
            records.append({
                "kind": "exemplar",
                "v": 1,
                "metric": name,
                "bucket": row["bucket"],
                "le": row["le"],
                "value": row["value"],
                "span_id": row["span_id"],
                "labels": dict(row.get("labels") or {}),
            })
    return records


def cost_record(snapshot: dict) -> dict:
    """The ``"kind": "cost"`` JSONL record for a cost-ledger snapshot."""
    return {"kind": "cost", "v": 1, **snapshot}


# -- rendering ---------------------------------------------------------


def _fmt_cost(value: float, clock: str) -> str:
    if clock == "reads":
        return f"{int(value)}"
    return f"{value:.6f}s"


def render_trace_diff(diff: TraceDiff, a: str = "A", b: str = "B") -> str:
    """Human-readable diff report (verdict first, then the evidence)."""
    from .report import format_table

    verdict = "identical" if diff.identical else "DIVERGENT"
    lines = [f"== trace diff: {verdict} ({a} vs {b}) =="]
    lines.append(
        f"{diff.aligned} aligned span(s), {len(diff.only_a)} only in {a}, "
        f"{len(diff.only_b)} only in {b}, "
        f"{len(diff.divergences)} value divergence(s)"
    )
    if diff.first_divergent is not None:
        lines.append(f"first divergent span: {diff.first_divergent}")
    for title, paths in ((f"only in {a}", diff.only_a),
                         (f"only in {b}", diff.only_b)):
        if paths:
            shown = paths[:8]
            lines.append(f"-- {title} ({len(paths)}) --")
            lines.extend(f"  {path}" for path in shown)
            if len(paths) > len(shown):
                lines.append(f"  ... and {len(paths) - len(shown)} more")
    if diff.divergences:
        rows = []
        for div in diff.divergences[:12]:
            for fld in div.fields:
                rows.append([div.path, fld, repr(div.a[fld]), repr(div.b[fld])])
        lines.append(format_table(["span path", "field", a, b], rows))
        if len(diff.divergences) > 12:
            lines.append(
                f"... and {len(diff.divergences) - 12} more divergent span(s)"
            )
    if diff.deltas:
        ranked = sorted(
            diff.deltas, key=lambda d: (-abs(d[2]), -abs(d[1]), d[0])
        )[:12]
        lines.append(format_table(
            ["subtree", "sim delta", "page-read delta"],
            [[path, f"{sim:+.6f}s", f"{reads:+d}"]
             for path, sim, reads in ranked],
        ))
    return "\n".join(lines) + "\n"


def render_critical_path(rows: list[dict], clock: str = "sim") -> str:
    """Table form of :func:`critical_path` with page-read attribution."""
    from .report import format_table

    if not rows:
        return "== critical path ==\n(no spans)\n"
    lines = [f"== critical path ({clock}) =="]
    lines.append(format_table(
        ["span path", "cumulative", "self", "reads", "self reads"],
        [[row["path"], _fmt_cost(row["cumulative"], clock),
          _fmt_cost(row["self"], clock), f"{row['page_reads']}",
          f"{row['self_page_reads']}"] for row in rows],
    ))
    total = rows[0]["cumulative"]
    self_sum = sum(row["self"] for row in rows)
    share = (self_sum / total) if total else 1.0
    lines.append(
        f"{len(rows)} step(s); path self cost covers "
        f"{_fmt_cost(self_sum, clock)} of {_fmt_cost(total, clock)} "
        f"({100 * share:.1f}% of the dominant root)"
    )
    return "\n".join(lines) + "\n"


def render_flamegraph_summary(lines: list[str], clock: str = "sim") -> str:
    """One-line summary printed to stderr alongside the collapsed stacks."""
    total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
    unit = "page reads" if clock == "reads" else "us"
    return (
        f"{len(lines)} collapsed stack(s), {total} {unit} total "
        f"({clock} clock)"
    )
