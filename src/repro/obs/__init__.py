"""Dual-clock observability: hierarchical tracing + metrics (``repro.obs``).

The paper's whole evaluation is *time-resolved* — "% of the relation
returned as a valid sample vs. elapsed time" — so understanding a run means
knowing **where the time went on both clocks**: real wall-clock seconds
(what the Python implementation costs us) and simulated-disk seconds (what
the modeled hardware would charge).  This package provides that view:

* :mod:`repro.obs.tracer` — a hierarchical span tracer.  A *span* wraps one
  operation (a build phase, a sort run, a Shuttle stab, a leaf read) and
  records both clocks at entry/exit plus the simulated page-read/write
  deltas, structured attributes, and its position in the per-operation
  trace tree.  When tracing is disabled the ``span()`` call degrades to the
  wall-clock aggregate path (feeding :data:`repro.core.profile.PROFILE`) or
  to a shared no-op object, so instrumentation can stay in hot paths.
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket histograms
  (records-per-page-read, stab depth, time-to-first-k-samples, ...), each
  a *family* whose ``labels()`` children break the value down by dimension
  while the unlabeled aggregate stays bit-identical.
* :mod:`repro.obs.context` — the thread-local telemetry context:
  ``CONTEXT.push(tenant=..., query=...)`` scopes baggage that labeled
  metrics and spans pick up automatically (bounded key vocabulary).
* :mod:`repro.obs.flight` — the flight recorder: a bounded ring of recent
  spans/metric updates/faults/quality records, auto-dumped (valid JSONL)
  when the oracle, storage recovery, or the regression gate trips.
* :mod:`repro.obs.slo` — multi-window burn-rate SLO evaluation on the
  simulated clock, per label set (deterministic per seed).
* :mod:`repro.obs.expose` — Prometheus text exposition (with a strict
  parser for CI round-trips) and the terminal dashboard behind
  ``python -m repro obs expose``.
* :mod:`repro.obs.recorder` — :class:`TraceRecorder` collects finished
  spans and derives histogram observations from them.
* :mod:`repro.obs.export` — JSONL and Chrome ``trace_event`` exporters
  (load the latter in ``chrome://tracing`` or Perfetto), plus a schema
  validator for the JSONL form.
* :mod:`repro.obs.report` — the text report behind ``python -m repro
  trace``: top spans by wall and simulated cost, page-read attribution,
  the per-level stab table, and the sampling-rate timeline.
* :mod:`repro.obs.analyze` — trace analytics: stable span path keys, the
  run-divergence diff behind ``python -m repro trace diff``, critical-path
  extraction, and collapsed-stack flamegraph export on either clock.
* :mod:`repro.obs.cost` — the cost accountant: attributes every charged
  page read/write to the ambient tenant/query/sampler context with a
  conservation check against the simulated disks' own totals.

Layering: ``obs`` sits beside ``core`` at the bottom of the package graph
(lint rule LAY001) and imports nothing from the rest of the library — every
layer reports into it, so it must not depend on any of them.  The simulated
clock is only ever *read* (``disk.clock`` / ``disk.stats`` deltas at span
boundaries), never charged: a traced run is bit-identical to an untraced
one on the simulated clock, and golden figure outputs do not move.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and how to read traces.
"""

from .analyze import (
    TraceDiff,
    cost_record,
    critical_path,
    diff_event_views,
    diff_traces,
    diff_verdict_record,
    exemplar_records,
    flamegraph_lines,
    render_critical_path,
    render_flamegraph_summary,
    render_trace_diff,
    span_paths,
    trace_roots,
)
from .context import CONTEXT, LABEL_KEYS, TelemetryContext
from .cost import COST, CostAccountant
from .export import (
    export_chrome_trace,
    export_jsonl,
    load_cost_record,
    load_jsonl,
    load_metrics_snapshot,
    load_quality_jsonl,
    strip_wall_keys,
    to_chrome_trace,
    validate_jsonl,
)
from .expose import parse_prometheus_text, prometheus_text, render_dashboard
from .flight import FLIGHT, FlightRecorder
from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .quality import (
    QualityConfig,
    QualitySession,
    StreamQualityMonitor,
)
from .recorder import TraceRecorder
from .regress import RegressionReport, compare_benchmarks, render_diff
from .report import (
    page_read_attribution,
    quality_sections,
    render_report,
    span_aggregates,
)
from .slo import BurnWindow, Objective, SloStatus, default_objectives, evaluate_slos
from .tracer import NOOP_SPAN, TRACER, SpanRecord, Tracer

__all__ = [
    "BurnWindow",
    "CONTEXT",
    "COST",
    "CostAccountant",
    "Counter",
    "FLIGHT",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LABEL_KEYS",
    "METRICS",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Objective",
    "QualityConfig",
    "QualitySession",
    "RegressionReport",
    "SloStatus",
    "SpanRecord",
    "StreamQualityMonitor",
    "TRACER",
    "TelemetryContext",
    "TraceDiff",
    "TraceRecorder",
    "Tracer",
    "compare_benchmarks",
    "cost_record",
    "critical_path",
    "default_objectives",
    "diff_event_views",
    "diff_traces",
    "diff_verdict_record",
    "evaluate_slos",
    "exemplar_records",
    "export_chrome_trace",
    "export_jsonl",
    "flamegraph_lines",
    "load_cost_record",
    "load_jsonl",
    "load_metrics_snapshot",
    "load_quality_jsonl",
    "page_read_attribution",
    "parse_prometheus_text",
    "prometheus_text",
    "quality_sections",
    "render_critical_path",
    "render_dashboard",
    "render_flamegraph_summary",
    "render_diff",
    "render_report",
    "render_trace_diff",
    "span_aggregates",
    "span_paths",
    "strip_wall_keys",
    "to_chrome_trace",
    "trace_roots",
    "validate_jsonl",
]
