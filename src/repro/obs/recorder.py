"""Trace collection: gather finished spans and derive metric observations.

:class:`TraceRecorder` is a tracer listener.  Installing it enables the
process tracer and appends every finished span (in completion order) to
``recorder.spans`` — a *flat* list; the tree is still reachable because
each record keeps its ``children``/``parent_id`` linkage.  On top of raw
collection the recorder derives fixed-bucket histogram observations that
the text report and ``bench --json`` surface:

* ``query.pages_per_stab``   — simulated page reads per root→leaf stab;
* ``query.records_per_page_read`` — samples emitted per page read, per stab
  (the paper's central efficiency ratio);
* ``leaf.pages_per_read``    — page span of each decoded leaf.

(The stab-depth and time-to-first-k histograms are observed at the query
call sites themselves, where the values are in scope.)

The recorder also brackets the cost accountant
(:data:`~repro.obs.cost.COST`): ``install`` arms it so the storage
charge points attribute every page read to the ambient
tenant/query/sampler context, and ``uninstall`` publishes the ledger as
``obs.cost.*`` labeled counters before disarming (the ledger itself
stays readable for reports).  Derived histogram observations pass the
finished span's own id so exemplars point at the span that produced the
value — the listener runs after the span popped off the stack, so the
ambient ``current_span_id`` would name the parent instead.
"""

from __future__ import annotations

from .cost import COST
from .metrics import METRICS, MetricsRegistry
from .tracer import TRACER, SpanRecord, Tracer

__all__ = ["TraceRecorder"]

_PAGES_PER_STAB_BOUNDS = (1, 2, 4, 8, 16, 32, 64)
_RECORDS_PER_PAGE_BOUNDS = (0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128)
_LEAF_PAGES_BOUNDS = (1, 2, 4, 8, 16, 32)


class TraceRecorder:
    """Collect finished spans from a tracer and feed derived histograms."""

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self.spans: list[SpanRecord] = []  # repro: shared[confined] one recorder per capture session
        self.metrics = metrics if metrics is not None else METRICS
        self._tracer: Tracer | None = None
        self._was_enabled = False

    # -- lifecycle -----------------------------------------------------

    def install(self, tracer: Tracer | None = None) -> "TraceRecorder":
        """Attach to *tracer* (default: the process tracer) and enable it."""
        tracer = tracer if tracer is not None else TRACER
        self._tracer = tracer
        self._was_enabled = tracer.enabled
        tracer.add_listener(self.on_span)
        tracer.enable()
        COST.arm()
        return self

    def uninstall(self) -> None:
        """Detach; tracing returns to its pre-install state."""
        tracer = self._tracer
        if tracer is None:
            return
        tracer.remove_listener(self.on_span)
        if not self._was_enabled:
            tracer.disable()
        self._tracer = None
        COST.publish(self.metrics)
        COST.disarm()

    def __enter__(self) -> "TraceRecorder":
        return self.install()

    def __exit__(self, exc_type, exc, tb):
        self.uninstall()
        return False

    def clear(self) -> None:
        self.spans.clear()

    # -- listener ------------------------------------------------------

    def on_span(self, record: SpanRecord) -> None:
        self.spans.append(record)
        name = record.name
        if name == "ace_query.stab":
            metrics = self.metrics
            reads = record.page_reads
            metrics.histogram("query.pages_per_stab", _PAGES_PER_STAB_BOUNDS).observe(
                reads, span_id=record.span_id
            )
            emitted = record.attrs.get("emitted")
            if emitted is not None and reads > 0:
                metrics.histogram(
                    "query.records_per_page_read", _RECORDS_PER_PAGE_BOUNDS
                ).observe(emitted / reads, span_id=record.span_id)
        elif name == "leaf_store.read_leaf":
            pages = record.attrs.get("pages")
            if pages is not None:
                self.metrics.histogram(
                    "leaf.pages_per_read", _LEAF_PAGES_BOUNDS
                ).observe(pages, span_id=record.span_id)

    # -- views ---------------------------------------------------------

    def roots(self) -> list[SpanRecord]:
        """Top-level spans (those finished with no enclosing span)."""
        return [span for span in self.spans if span.parent_id is None]
