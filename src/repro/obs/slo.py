"""SLO objectives with multi-window burn-rate evaluation (simulated clock).

The paper's contract is statistical: *accuracy delivered per unit of
simulated I/O* (BlinkDB states the same surface as "within 5% error at
95% confidence by time T").  This module turns that contract into
declared **objectives** over the signals the observability layer already
produces, and evaluates them deterministically — every timestamp is the
simulated disk clock, so an attached SLO evaluation is bit-identical run
to run and safe to gate on.

Three objective kinds:

* ``tta`` — over quality-record estimator timelines: an event is *good*
  when the CLT half-width is within ``target`` (relative to the running
  estimate).  Burn rates are computed over trailing windows of the
  observed simulated-time span; ``deadline_sim_s`` optionally checks the
  stream's time-to-accuracy record against a deadline.
* ``ratio`` — over counters: ``numerator / sum(denominator)`` must reach
  ``minimum`` (e.g. ``sample_cache.hits / (hits + misses)``).
* ``threshold`` — a counter must stay at or below ``bound``
  (e.g. ``storage.read_retries``).

**Burn rate** follows the SRE multi-window form: with error budget
``1 - goal``, a window's burn rate is ``bad_fraction / budget`` — burn 1
means exactly consuming budget, burn 10 means consuming it ten times as
fast.  An objective **fires** only when *every* configured window burns
at or above its threshold (the long window filters blips, the short
window guarantees the problem is still live).  ``ratio``/``threshold``
objectives have no time series; they simply fire when out of compliance.

Results are reported **per label set**: quality records carry their
monitor's telemetry-context labels, counters carry the registry's
``labeled`` snapshot section, and an unlabeled aggregate row (label
``""``) always covers the whole population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .context import canonical_label_set, render_label_set

__all__ = [
    "DEFAULT_WINDOWS",
    "BurnWindow",
    "Objective",
    "SloStatus",
    "default_objectives",
    "evaluate_slos",
]


@dataclass(frozen=True, slots=True)
class BurnWindow:
    """One evaluation window: a trailing fraction of the observed span."""

    fraction: float
    threshold: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"window fraction must be in (0, 1]: {self.fraction}")
        if self.threshold <= 0.0:
            raise ValueError(f"burn threshold must be positive: {self.threshold}")


#: Long/medium/short trailing windows with SRE-style escalating thresholds.
DEFAULT_WINDOWS: tuple[BurnWindow, ...] = (
    BurnWindow(1.0, 1.0),
    BurnWindow(0.25, 2.0),
    BurnWindow(0.05, 10.0),
)

_KINDS = ("tta", "ratio", "threshold")


@dataclass(frozen=True, slots=True)
class Objective:
    """One declared objective (see module docstring for the kinds)."""

    name: str
    kind: str
    goal: float = 0.95
    # tta
    target: float | None = None
    deadline_sim_s: float | None = None
    # ratio
    numerator: str | None = None
    denominator: tuple = ()
    minimum: float | None = None
    # threshold
    metric: str | None = None
    bound: float | None = None
    windows: tuple = DEFAULT_WINDOWS

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown objective kind {self.kind!r}; one of {_KINDS}")
        if not 0.0 < self.goal < 1.0:
            raise ValueError(f"goal must be in (0, 1): {self.goal}")
        if self.kind == "tta" and self.target is None:
            raise ValueError("tta objectives need target=<relative half-width>")
        if self.kind == "ratio" and (self.numerator is None or not self.denominator
                                     or self.minimum is None):
            raise ValueError("ratio objectives need numerator/denominator/minimum")
        if self.kind == "threshold" and (self.metric is None or self.bound is None):
            raise ValueError("threshold objectives need metric/bound")


@dataclass(slots=True)
class SloStatus:
    """Evaluation outcome for one (objective, label set) pair."""

    objective: str
    kind: str
    labels: str  # rendered label set; "" is the aggregate row
    value: float | None  # compliance (tta) / ratio / counter value
    events: int = 0
    bad: int = 0
    firing: bool = False
    windows: list = field(default_factory=list)
    detail: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "objective": self.objective,
            "kind": self.kind,
            "labels": self.labels,
            "value": self.value,
            "events": self.events,
            "bad": self.bad,
            "firing": self.firing,
            "windows": list(self.windows),
            "detail": dict(self.detail),
        }


def default_objectives() -> tuple[Objective, ...]:
    """The stock objectives: the paper's contract plus the serve hot spots."""
    return (
        Objective(
            name="tta_rel_halfwidth_5pct",
            kind="tta",
            goal=0.9,
            target=0.05,
        ),
        Objective(
            name="sample_cache_hit_rate",
            kind="ratio",
            goal=0.95,
            numerator="sample_cache.hits",
            denominator=("sample_cache.hits", "sample_cache.misses"),
            minimum=0.5,
        ),
        Objective(
            name="storage_read_retries",
            kind="threshold",
            goal=0.99,
            metric="storage.read_retries",
            bound=0.0,
        ),
    )


# ---------------------------------------------------------------------------
# tta evaluation over quality records
# ---------------------------------------------------------------------------


def _record_label(record: dict) -> str:
    labels = record.get("labels")
    if not labels:
        return ""
    return render_label_set(canonical_label_set(labels))


def _tta_events(record: dict, target: float) -> list[tuple[float, bool]]:
    """(sim clock, good?) per estimator timeline point of one record."""
    events = []
    for point in record.get("estimator", {}).get("timeline", ()):
        half = point.get("half_width")
        if half is None or point.get("n", 0) < 2:
            continue
        mean = point.get("mean", 0.0)
        good = abs(mean) > 0.0 and half <= target * abs(mean)
        events.append((point["clock"], good))
    return events


def _burn_windows(
    events: list[tuple[float, bool]], goal: float, windows: tuple
) -> tuple[list[dict], bool]:
    budget = 1.0 - goal
    t_min = min(t for t, _ in events)
    t_max = max(t for t, _ in events)
    span = t_max - t_min
    rows = []
    firing = bool(windows)
    for window in windows:
        cutoff = t_max - window.fraction * span
        in_window = [good for t, good in events if t >= cutoff]
        bad = sum(1 for good in in_window if not good)
        bad_fraction = bad / len(in_window) if in_window else 0.0
        burn = bad_fraction / budget if budget > 0 else (0.0 if bad == 0 else float("inf"))
        window_firing = bool(in_window) and burn >= window.threshold
        rows.append({
            "fraction": window.fraction,
            "threshold": window.threshold,
            "events": len(in_window),
            "bad": bad,
            "burn": burn,
            "firing": window_firing,
        })
        firing = firing and window_firing
    return rows, firing


def _eval_tta(objective: Objective, quality: list[dict]) -> list[SloStatus]:
    groups: dict[str, list[tuple[int, dict]]] = {}
    for index, record in enumerate(quality):
        entry = (index, record)
        groups.setdefault("", []).append(entry)
        label = _record_label(record)
        if label:
            groups.setdefault(label, []).append(entry)
    statuses = []
    for label, entries in sorted(groups.items()):
        events: list[tuple[float, bool, int]] = []
        deadline_hits = 0
        for index, record in entries:
            events.extend(
                (t, good, index) for t, good in _tta_events(record, objective.target)
            )
            if objective.deadline_sim_s is not None:
                met = any(
                    tta["epsilon"] <= objective.target
                    and tta["sim_seconds"] <= objective.deadline_sim_s
                    for tta in record.get("estimator", {}).get("tta", ())
                )
                deadline_hits += 1 if met else 0
        status = SloStatus(objective.name, "tta", label, None)
        status.detail["streams"] = len(entries)
        if objective.deadline_sim_s is not None:
            status.detail["deadline_sim_s"] = objective.deadline_sim_s
            status.detail["deadline_met"] = deadline_hits
        if not events:
            statuses.append(status)
            continue
        events.sort(key=lambda e: (e[0], e[2]))
        flat = [(t, good) for t, good, _ in events]
        bad = sum(1 for _, good in flat if not good)
        status.events = len(flat)
        status.bad = bad
        status.value = 1.0 - bad / len(flat)
        status.windows, status.firing = _burn_windows(
            flat, objective.goal, objective.windows
        )
        statuses.append(status)
    return statuses


# ---------------------------------------------------------------------------
# counter-based evaluation (ratio / threshold)
# ---------------------------------------------------------------------------


def _counter_views(snapshot: dict, name: str) -> dict[str, float]:
    """``label -> value`` for one counter, ``""`` being the aggregate."""
    views = {"": float(snapshot.get("counters", {}).get(name, 0.0))}
    labeled = snapshot.get("labeled", {}).get("counters", {}).get(name, {})
    for label, value in labeled.items():
        views[label] = float(value)
    return views


def _eval_ratio(objective: Objective, snapshot: dict) -> list[SloStatus]:
    num_views = _counter_views(snapshot, objective.numerator)
    den_views: dict[str, float] = {}
    for part in objective.denominator:
        for label, value in _counter_views(snapshot, part).items():
            den_views[label] = den_views.get(label, 0.0) + value
    statuses = []
    for label in sorted(set(num_views) | set(den_views)):
        numerator = num_views.get(label, 0.0)
        denominator = den_views.get(label, 0.0)
        value = numerator / denominator if denominator else None
        firing = value is not None and value < objective.minimum
        status = SloStatus(objective.name, "ratio", label, value, firing=firing)
        status.events = int(denominator)
        status.detail["minimum"] = objective.minimum
        statuses.append(status)
    return statuses


def _eval_threshold(objective: Objective, snapshot: dict) -> list[SloStatus]:
    statuses = []
    for label, value in sorted(_counter_views(snapshot, objective.metric).items()):
        firing = value > objective.bound
        status = SloStatus(objective.name, "threshold", label, value, firing=firing)
        status.detail["bound"] = objective.bound
        statuses.append(status)
    return statuses


def evaluate_slos(
    objectives=None,
    quality: list[dict] | None = None,
    metrics: dict | None = None,
) -> list[SloStatus]:
    """Evaluate *objectives* against quality records and a metrics snapshot.

    ``quality`` feeds ``tta`` objectives; ``metrics`` (a registry snapshot
    dict) feeds ``ratio``/``threshold`` ones.  Objectives whose inputs are
    absent evaluate to a single empty aggregate row rather than erroring,
    so one call works for partial data (e.g. a metrics-only bench run).
    """
    if objectives is None:
        objectives = default_objectives()
    statuses: list[SloStatus] = []
    for objective in objectives:
        if objective.kind == "tta":
            if quality:
                statuses.extend(_eval_tta(objective, quality))
            else:
                statuses.append(SloStatus(objective.name, "tta", "", None))
        elif objective.kind == "ratio":
            statuses.extend(_eval_ratio(objective, metrics or {}))
        else:
            statuses.extend(_eval_threshold(objective, metrics or {}))
    return statuses
