"""Thread-local telemetry context: tenant/query/sampler baggage.

Dimensional metrics only pay off if the *same* label values reach every
signal a request touches — the ``ace_query`` spans, the ``sample_cache``
counters, the recovery retries, the quality record.  Threading a
``tenant=`` argument through every call site would couple the whole
engine to the telemetry layer, so instead the baggage rides here: a
per-thread stack of label dicts that instrumented call sites read
ambiently.

::

    with CONTEXT.push(tenant="t0", query="q3"):
        run_query(...)            # every labeled metric inside gets both labels

* Pushes **merge**: an inner ``push(sampler="ace")`` sees the outer
  tenant/query too; the inner frame pops on exit.
* Keys are validated against the registered label vocabulary
  (:data:`LABEL_KEYS`) — the same vocabulary the metrics registry and the
  OBS001 lint rule enforce.  Values are stringified on push.
* The stack is ``threading.local``: concurrent request threads carry
  disjoint baggage, which is exactly the propagation model ROADMAP
  item 1's scheduler needs (one tenant per traversal step).

An empty context yields an empty label dict, and
``metric.labels()`` with no labels returns the unlabeled aggregate — so
code instrumented with ``.labels(**CONTEXT.labels())`` behaves
bit-identically to the unlabeled PR 3 form when nothing was pushed.
"""

from __future__ import annotations

from contextlib import contextmanager
from threading import local

__all__ = [
    "CONTEXT",
    "LABEL_KEYS",
    "TelemetryContext",
    "canonical_label_set",
    "render_label_set",
]

#: The registered label vocabulary, in canonical rendering order.  The
#: order is fixed (not alphabetical) so label sets serialize identically
#: everywhere: ``tenant=t0,query=q1,sampler=ace`` never permutes.
LABEL_KEYS = ("tenant", "query", "sampler", "shard", "section")

_LABEL_RANK = {key: rank for rank, key in enumerate(LABEL_KEYS)}  # repro: shared[frozen] derived vocabulary index, read-only


def canonical_label_set(labels: dict) -> tuple:
    """Validate *labels* and return the canonical ``((key, str(value)), ...)``.

    Raises :class:`ValueError` for keys outside :data:`LABEL_KEYS`; the
    result tuple is ordered by vocabulary rank, so equal label dicts map
    to equal (hashable) tuples regardless of construction order.
    """
    for key in labels:
        if key not in _LABEL_RANK:
            raise ValueError(
                f"unknown label key {key!r}; the registered vocabulary is "
                f"{', '.join(LABEL_KEYS)}"
            )
    return tuple(
        sorted(
            ((key, str(value)) for key, value in labels.items()),
            key=lambda pair: _LABEL_RANK[pair[0]],
        )
    )


def render_label_set(label_set: tuple) -> str:
    """Canonical text form of a label-set tuple: ``tenant=t0,query=q1``."""
    return ",".join(f"{key}={value}" for key, value in label_set)


class TelemetryContext:
    """Per-thread stack of merged label dicts (see module docstring)."""

    __slots__ = ("_local",)

    def __init__(self) -> None:
        self._local = local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = [{}]
        return stack

    def current(self) -> dict:
        """The active merged baggage (treat as read-only; ``{}`` when empty)."""
        return self._stack()[-1]

    #: Alias: the baggage *is* the label dict instrumented sites splat
    #: into ``metric.labels(**CONTEXT.labels())``.
    labels = current

    @contextmanager
    def push(self, **baggage):
        """Push *baggage* merged over the current frame for the ``with`` body."""
        canonical_label_set(baggage)  # validate keys before mutating the stack
        stack = self._stack()
        merged = {**stack[-1], **{k: str(v) for k, v in baggage.items()}}
        stack.append(merged)
        try:
            yield merged
        finally:
            stack.pop()

    def clear(self) -> None:
        """Drop every frame on the calling thread (test isolation hook)."""
        self._local.stack = [{}]


CONTEXT = TelemetryContext()  # repro: shared[confined] per-thread baggage stack (threading.local)
