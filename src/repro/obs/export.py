"""Trace serialization: JSONL spans + quality records, Chrome JSON.

JSONL format — one record object per line.  The format is *versioned by
kind*: a line without a ``"kind"`` key (or with ``"kind": "span"``) is a
span record under :data:`SPAN_SCHEMA` (children are reconstructed from
``parent_id`` on load); ``"kind": "quality"`` lines carry the statistical
quality summaries of :mod:`repro.obs.quality` under
:data:`QUALITY_SCHEMA`, with their own ``"v"`` record version.  Flight
dumps (:mod:`repro.obs.flight`) add four more kinds, each with its own
``"v"``: a ``"flight"`` header (:data:`FLIGHT_SCHEMA`), per-update
``"metric"`` events (:data:`METRIC_EVENT_SCHEMA`), injected-storage
``"fault"`` events (:data:`FAULT_EVENT_SCHEMA`), and a full registry
``"metrics"`` snapshot (:data:`METRICS_SNAPSHOT_SCHEMA` — also appended
to ordinary traces so ``python -m repro obs expose --from FILE`` can
re-render a finished run).  The trace-analytics layer
(:mod:`repro.obs.analyze` / :mod:`repro.obs.cost`) adds three more
kinds, each ``v`` = 1: ``"exemplar"`` tail-sample records linking
histogram buckets to span ids (:data:`EXEMPLAR_SCHEMA`), a ``"cost"``
per-label-set page-cost attribution record with its conservation verdict
(:data:`COST_SCHEMA`), and a ``"diff"`` trace-diff verdict
(:data:`DIFF_SCHEMA`).  Any other ``kind`` is a validation error —
readers of version-1 files (spans only) keep working unchanged.
:func:`validate_jsonl` checks a file against the schemas (the CI trace
smoke job and ``python -m repro trace validate`` run this).

Wall-clock keys (:data:`WALL_KEYS`) are the one part of a record that is
*not* replay-stable; :func:`strip_wall_keys` is the shared projection
used both by the flight recorder's deterministic view and by the
trace-diff normalizer, so the two layers can never disagree about what
"deterministic" means.

Chrome format — a ``{"traceEvents": [...]}`` object of complete (``"X"``)
events, loadable in ``chrome://tracing`` or https://ui.perfetto.dev.  Each
span yields up to two events on two synthetic processes:

* ``pid 1`` — the **wall clock** timeline (perf_counter, rebased to the
  earliest span start);
* ``pid 2`` — the **simulated disk** timeline (``disk.clock`` seconds),
  emitted only for spans that had a disk in scope.

Timestamps and durations are microseconds, per the trace_event spec.  Span
attributes and page-read/write deltas ride along in ``args``.
"""

from __future__ import annotations

import json
from pathlib import Path

from .tracer import SpanRecord

__all__ = [
    "COST_SCHEMA",
    "DIFF_SCHEMA",
    "EXEMPLAR_SCHEMA",
    "FAULT_EVENT_SCHEMA",
    "FLIGHT_SCHEMA",
    "METRIC_EVENT_SCHEMA",
    "METRICS_SNAPSHOT_SCHEMA",
    "QUALITY_SCHEMA",
    "SPAN_SCHEMA",
    "WALL_KEYS",
    "export_chrome_trace",
    "export_jsonl",
    "load_cost_record",
    "load_jsonl",
    "load_metrics_snapshot",
    "load_quality_jsonl",
    "strip_wall_keys",
    "to_chrome_trace",
    "validate_jsonl",
]

#: Record keys whose values are wall-clock measurements (never
#: replay-stable).  Shared by ``flight.deterministic_view`` and the
#: trace-diff normalizer so both strip exactly the same fields.
WALL_KEYS = ("start_wall", "end_wall", "wall_seconds")


def strip_wall_keys(record: dict) -> dict:
    """A copy of *record* without any :data:`WALL_KEYS` entries."""
    return {key: value for key, value in record.items() if key not in WALL_KEYS}

# key -> (required, allowed types); floats accept ints too (JSON round-trip).
SPAN_SCHEMA: dict = {  # repro: shared[frozen] constant validation table
    "kind": (False, (str,)),
    "name": (True, (str,)),
    "span_id": (True, (int,)),
    "parent_id": (True, (int, type(None))),
    "start_wall": (True, (float, int)),
    "end_wall": (True, (float, int)),
    "start_sim": (False, (float, int, type(None))),
    "end_sim": (False, (float, int, type(None))),
    "page_reads": (False, (int,)),
    "page_writes": (False, (int,)),
    "attrs": (False, (dict,)),
}

#: Schema for ``"kind": "quality"`` lines (record version inside ``"v"``).
QUALITY_SCHEMA: dict = {  # repro: shared[frozen] constant validation table
    "kind": (True, (str,)),
    "v": (True, (int,)),
    "label": (True, (str,)),
    "group": (True, (str,)),
    "lo": (False, (float, int)),
    "hi": (False, (float, int)),
    "batches": (False, (int,)),
    "start_sim": (False, (float, int, type(None))),
    "end_sim": (False, (float, int, type(None))),
    "degraded": (False, (bool,)),
    "degraded_reason": (False, (str, type(None))),
    "uniformity": (True, (dict,)),
    "coverage": (True, (dict,)),
    "estimator": (True, (dict,)),
    "labels": (False, (dict,)),
}

#: Schema for the ``"kind": "flight"`` dump header line.
FLIGHT_SCHEMA: dict = {  # repro: shared[frozen] constant validation table
    "kind": (True, (str,)),
    "v": (True, (int,)),
    "reason": (True, (str,)),
    "events": (True, (int,)),
    "dropped": (True, (int,)),
}

#: Schema for ``"kind": "metric"`` flight events (one metric update).
METRIC_EVENT_SCHEMA: dict = {  # repro: shared[frozen] constant validation table
    "kind": (True, (str,)),
    "v": (True, (int,)),
    "name": (True, (str,)),
    "metric": (True, (str,)),
    "value": (True, (float, int)),
    "labels": (False, (dict,)),
}

#: Schema for ``"kind": "fault"`` flight events (one injected fault; the
#: fault's own kind — transient/corrupt/torn/latency — rides in ``fault``).
FAULT_EVENT_SCHEMA: dict = {  # repro: shared[frozen] constant validation table
    "kind": (True, (str,)),
    "v": (True, (int,)),
    "op": (True, (str,)),
    "ordinal": (True, (int,)),
    "fault": (True, (str,)),
    "page": (True, (int,)),
    "detail": (False, (dict,)),
}

#: Schema for the ``"kind": "metrics"`` whole-registry snapshot record.
METRICS_SNAPSHOT_SCHEMA: dict = {  # repro: shared[frozen] constant validation table
    "kind": (True, (str,)),
    "v": (True, (int,)),
    "counters": (True, (dict,)),
    "gauges": (True, (dict,)),
    "histograms": (True, (dict,)),
    "labeled": (False, (dict,)),
}

#: Schema for ``"kind": "exemplar"`` records: one retained histogram
#: observation linking a bucket (``le`` upper bound, ``"+Inf"`` for the
#: overflow bucket) to the span that produced it and the label set it
#: carried.
EXEMPLAR_SCHEMA: dict = {  # repro: shared[frozen] constant validation table
    "kind": (True, (str,)),
    "v": (True, (int,)),
    "metric": (True, (str,)),
    "bucket": (True, (int,)),
    "le": (True, (str,)),
    "value": (True, (float, int)),
    "span_id": (True, (int,)),
    "labels": (False, (dict,)),
}

#: Schema for the ``"kind": "cost"`` attribution record: charged page
#: reads/writes broken down by rendered label set, plus the conservation
#: verdict against the simulated disks' own counters.
COST_SCHEMA: dict = {  # repro: shared[frozen] constant validation table
    "kind": (True, (str,)),
    "v": (True, (int,)),
    "page_reads": (True, (dict,)),
    "page_writes": (False, (dict,)),
    "retry_io_seconds": (False, (dict,)),
    "attributed_reads": (True, (int,)),
    "charged_reads": (True, (int,)),
    "attributed_writes": (False, (int,)),
    "charged_writes": (False, (int,)),
    "conserved": (True, (bool,)),
}

#: Schema for the ``"kind": "diff"`` trace-diff verdict record.
DIFF_SCHEMA: dict = {  # repro: shared[frozen] constant validation table
    "kind": (True, (str,)),
    "v": (True, (int,)),
    "a": (False, (str,)),
    "b": (False, (str,)),
    "identical": (True, (bool,)),
    "aligned": (True, (int,)),
    "only_a": (True, (int,)),
    "only_b": (True, (int,)),
    "divergences": (True, (int,)),
    "first_divergent": (True, (str, type(None))),
    "reason": (False, (str, type(None))),
}


def span_to_dict(record: SpanRecord) -> dict:
    """Flat JSON-serializable view of one span (children omitted)."""
    out = {
        "name": record.name,
        "span_id": record.span_id,
        "parent_id": record.parent_id,
        "start_wall": record.start_wall,
        "end_wall": record.end_wall,
    }
    if record.start_sim is not None:
        out["start_sim"] = record.start_sim
        out["end_sim"] = record.end_sim
        out["page_reads"] = record.page_reads
        out["page_writes"] = record.page_writes
    if record.attrs:
        out["attrs"] = record.attrs
    return out


def export_jsonl(spans, path, quality=None, metrics=None, extra=None) -> int:
    """Write *spans* (plus optional quality records) to *path*.

    ``quality`` is an iterable of already-serializable quality record
    dictionaries (:meth:`~repro.obs.quality.StreamQualityMonitor.summary`);
    they are appended after the spans.  ``extra`` is an iterable of
    further kind-versioned record dicts (exemplar/cost/diff) appended
    next.  ``metrics`` is an optional registry snapshot dict
    (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`), appended last
    as one ``"kind": "metrics"`` record so the exposition CLI can
    re-render the run.  Returns the total line count.
    """
    lines = [json.dumps(span_to_dict(span), sort_keys=True) for span in spans]
    if quality:
        lines.extend(json.dumps(record, sort_keys=True) for record in quality)
    if extra:
        lines.extend(json.dumps(record, sort_keys=True) for record in extra)
    if metrics is not None:
        lines.append(
            json.dumps({"kind": "metrics", "v": 1, **metrics}, sort_keys=True)
        )
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def load_jsonl(path) -> list[SpanRecord]:
    """Rebuild span records (with children re-linked) from a JSONL file."""
    records: list[SpanRecord] = []
    by_id: dict[int, SpanRecord] = {}
    text = Path(path).read_text()
    for line in text.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        if isinstance(obj, dict) and obj.get("kind", "span") != "span":
            continue  # quality (or future) records; see load_quality_jsonl
        record = SpanRecord(obj["name"], obj.get("attrs") or {})
        record.span_id = obj["span_id"]
        record.parent_id = obj.get("parent_id")
        record.start_wall = obj["start_wall"]
        record.end_wall = obj["end_wall"]
        record.start_sim = obj.get("start_sim")
        record.end_sim = obj.get("end_sim")
        record.page_reads = obj.get("page_reads", 0)
        record.page_writes = obj.get("page_writes", 0)
        records.append(record)
        by_id[record.span_id] = record
    for record in records:
        parent = by_id.get(record.parent_id) if record.parent_id is not None else None
        if parent is not None:
            parent.children.append(record)
    return records


def _check_schema(obj: dict, schema: dict, where: str) -> list[str]:
    errors = []
    for key, (required, types) in schema.items():
        if key not in obj:
            if required:
                errors.append(f"{where}missing required key {key!r}")
            continue
        value = obj[key]
        # bool subclasses int: reject it for numeric keys unless the schema
        # names bool explicitly.
        if (isinstance(value, bool) and bool not in types) or not isinstance(
            value, types
        ):
            expected = "/".join(t.__name__ for t in types)
            errors.append(
                f"{where}key {key!r} must be {expected}, "
                f"got {type(value).__name__}"
            )
    for key in obj:
        if key not in schema:
            errors.append(f"{where}unknown key {key!r}")
    return errors


def validate_span_dict(obj, line_no: int = 0) -> list[str]:
    """Schema-check one decoded JSONL record (span or quality kind)."""
    where = f"line {line_no}: " if line_no else ""
    if not isinstance(obj, dict):
        return [f"{where}record must be a JSON object, got {type(obj).__name__}"]
    kind = obj.get("kind", "span")
    if kind == "quality":
        return _check_schema(obj, QUALITY_SCHEMA, where)
    if kind == "flight":
        return _check_schema(obj, FLIGHT_SCHEMA, where)
    if kind == "metric":
        return _check_schema(obj, METRIC_EVENT_SCHEMA, where)
    if kind == "fault":
        return _check_schema(obj, FAULT_EVENT_SCHEMA, where)
    if kind == "metrics":
        return _check_schema(obj, METRICS_SNAPSHOT_SCHEMA, where)
    if kind == "exemplar":
        return _check_schema(obj, EXEMPLAR_SCHEMA, where)
    if kind == "cost":
        errors = _check_schema(obj, COST_SCHEMA, where)
        if not errors and obj["conserved"] and (
            obj["attributed_reads"] != obj["charged_reads"]
        ):
            errors.append(
                f"{where}cost record claims conservation but attributed "
                f"({obj['attributed_reads']}) != charged "
                f"({obj['charged_reads']})"
            )
        return errors
    if kind == "diff":
        return _check_schema(obj, DIFF_SCHEMA, where)
    if kind != "span":
        return [f"{where}unknown record kind {kind!r}"]
    errors = _check_schema(obj, SPAN_SCHEMA, where)
    if not errors and obj["end_wall"] < obj["start_wall"]:
        errors.append(f"{where}end_wall precedes start_wall")
    return errors


def validate_jsonl(path) -> list[str]:
    """Validate every line of a JSONL trace file; empty list means valid."""
    errors: list[str] = []
    seen_ids: set[int] = set()
    for line_no, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {line_no}: not valid JSON ({exc.msg})")
            continue
        errors.extend(validate_span_dict(obj, line_no))
        # Only span records *declare* ids; exemplar records carry a
        # span_id that references an existing span, so they are exempt
        # from the uniqueness check.
        if (
            isinstance(obj, dict)
            and obj.get("kind", "span") == "span"
            and isinstance(obj.get("span_id"), int)
        ):
            if obj["span_id"] in seen_ids:
                errors.append(f"line {line_no}: duplicate span_id {obj['span_id']}")
            seen_ids.add(obj["span_id"])
    return errors


def load_metrics_snapshot(path) -> dict | None:
    """The last ``"kind": "metrics"`` snapshot in a JSONL file, if any."""
    snapshot = None
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        if isinstance(obj, dict) and obj.get("kind") == "metrics":
            snapshot = {
                key: value for key, value in obj.items()
                if key not in ("kind", "v")
            }
    return snapshot


def load_cost_record(path) -> dict | None:
    """The last ``"kind": "cost"`` record in a JSONL file, if any."""
    record = None
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        if isinstance(obj, dict) and obj.get("kind") == "cost":
            record = {
                key: value for key, value in obj.items()
                if key not in ("kind", "v")
            }
    return record


def load_quality_jsonl(path) -> list[dict]:
    """The ``"kind": "quality"`` records of a JSONL trace file, in order."""
    records: list[dict] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        if isinstance(obj, dict) and obj.get("kind") == "quality":
            records.append(obj)
    return records


def to_chrome_trace(spans, quality=None) -> dict:
    """Build the Chrome trace_event object for a flat span iterable.

    Quality records contribute counter (``"C"``) events on the simulated
    timeline: the running CI half-width of each monitored stream, so the
    statistical convergence renders alongside the I/O spans in Perfetto.
    """
    spans = list(spans)
    events = [
        {"ph": "M", "pid": 1, "tid": 1, "name": "process_name",
         "args": {"name": "wall clock"}},
        {"ph": "M", "pid": 2, "tid": 1, "name": "process_name",
         "args": {"name": "simulated disk"}},
    ]
    base_wall = min((s.start_wall for s in spans), default=0.0)
    for span in spans:
        args = dict(span.attrs)
        if span.start_sim is not None:
            args["page_reads"] = span.page_reads
            args["page_writes"] = span.page_writes
        events.append({
            "name": span.name,
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": (span.start_wall - base_wall) * 1e6,
            "dur": span.wall_seconds * 1e6,
            "args": args,
        })
        if span.start_sim is not None:
            events.append({
                "name": span.name,
                "ph": "X",
                "pid": 2,
                "tid": 1,
                "ts": span.start_sim * 1e6,
                "dur": span.sim_seconds * 1e6,
                "args": args,
            })
    for record in quality or ():
        name = f"ci_half_width:{record.get('label', record.get('group', '?'))}"
        for point in record.get("estimator", {}).get("timeline", ()):
            half = point.get("half_width")
            if half is None:
                continue
            events.append({
                "name": name,
                "ph": "C",
                "pid": 2,
                "tid": 1,
                "ts": point["clock"] * 1e6,
                "args": {"half_width": half},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(spans, path, quality=None) -> int:
    """Write the Chrome trace for *spans* to *path*; returns the event count."""
    trace = to_chrome_trace(spans, quality=quality)
    Path(path).write_text(json.dumps(trace) + "\n")
    return len(trace["traceEvents"])
