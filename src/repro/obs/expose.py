"""Telemetry exposition: Prometheus text format + a terminal dashboard.

Two render targets over a :meth:`~repro.obs.metrics.MetricsRegistry.
snapshot` dict (live registry or the ``"kind": "metrics"`` record of a
trace file):

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# TYPE`` comments, labeled series, cumulative ``_bucket``/``_sum``/
  ``_count`` histogram series with an ``+Inf`` bucket).  Metric names are
  sanitized (dots become underscores); label values are escaped per the
  spec.  Histogram snapshots that retained exemplars emit them in
  OpenMetrics syntax on the matching ``_bucket`` line —
  ``name_bucket{le="4"} 7 # {span_id="42",tenant="t0"} 3.5`` — one (the
  most recently retained) per bucket.  :func:`parse_prometheus_text` is
  the matching strict parser — the test suite and the CI smoke job
  round-trip through it, so the emitted format is verified, not assumed.
* :func:`render_dashboard` — the ``obs expose --watch`` terminal view:
  top-k counter tables (aggregate and per label set), gauges, SLO status
  rows, and the flight-recorder tail.

Everything here is pure rendering — no clocks, no I/O — so the module
stays at obs rank 0; the ``--watch`` refresh loop (the only wall-clock
sleep) lives in the CLI layer.
"""

from __future__ import annotations

import re

from .report import format_table

__all__ = [
    "parse_prometheus_text",
    "prometheus_text",
    "render_dashboard",
]

_NAME_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*?)\})?\s+(\S+)"
    r"(?:\s+#\s+\{(.*)\}\s+(\S+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_TYPE_RE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$"
)


def _prom_name(name: str) -> str:
    out = _NAME_SANITIZE_RE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_value(value) -> str:
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _label_pairs(rendered: str) -> list[tuple[str, str]]:
    """Split a canonical rendered label set (``k=v,k=v``) back into pairs."""
    if not rendered:
        return []
    pairs = []
    for part in rendered.split(","):
        key, _, value = part.partition("=")
        pairs.append((key, value))
    return pairs


def _prom_labels(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_prom_escape(value)}"' for key, value in pairs)
    return "{" + body + "}"


def _exemplar_suffixes(hist: dict) -> dict[int, str]:
    """Bucket index -> OpenMetrics exemplar suffix (last retained wins)."""
    suffixes: dict[int, str] = {}
    for row in hist.get("exemplars", ()):
        pairs = [("span_id", str(row["span_id"]))]
        pairs.extend((key, value) for key, value in (row.get("labels") or {}).items())
        suffixes[row["bucket"]] = (
            f" # {_prom_labels(pairs)} {_prom_value(row['value'])}"
        )
    return suffixes


def _histogram_lines(name: str, hist: dict, pairs: list[tuple[str, str]]) -> list[str]:
    exemplars = _exemplar_suffixes(hist)
    lines = []
    cumulative = 0
    for bucket, (bound, count) in enumerate(zip(hist["bounds"], hist["counts"])):
        cumulative += count
        le_pairs = pairs + [("le", _prom_value(bound))]
        lines.append(
            f"{name}_bucket{_prom_labels(le_pairs)} {cumulative}"
            f"{exemplars.get(bucket, '')}"
        )
    cumulative += hist["counts"][-1]
    lines.append(
        f"{name}_bucket{_prom_labels(pairs + [('le', '+Inf')])} {cumulative}"
        f"{exemplars.get(len(hist['bounds']), '')}"
    )
    lines.append(f"{name}_sum{_prom_labels(pairs)} {_prom_value(hist['total'])}")
    lines.append(f"{name}_count{_prom_labels(pairs)} {hist['count']}")
    return lines


def prometheus_text(snapshot: dict) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format."""
    labeled = snapshot.get("labeled", {})
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
        for rendered, child_value in sorted(
            labeled.get("counters", {}).get(name, {}).items()
        ):
            pairs = _label_pairs(rendered)
            lines.append(f"{prom}{_prom_labels(pairs)} {_prom_value(child_value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
        for rendered, child_value in sorted(
            labeled.get("gauges", {}).get(name, {}).items()
        ):
            pairs = _label_pairs(rendered)
            lines.append(f"{prom}{_prom_labels(pairs)} {_prom_value(child_value)}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        lines.extend(_histogram_lines(prom, hist, []))
        for rendered, child in sorted(
            labeled.get("histograms", {}).get(name, {}).items()
        ):
            lines.extend(_histogram_lines(prom, child, _label_pairs(rendered)))
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(body: str, line_no: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(body):
        match = _LABEL_RE.match(body, pos)
        if match is None:
            raise ValueError(f"line {line_no}: malformed label at offset {pos}: {body!r}")
        key, raw = match.group(1), match.group(2)
        labels[key] = (
            raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        pos = match.end()
        if pos < len(body):
            if body[pos] != ",":
                raise ValueError(f"line {line_no}: expected ',' in labels: {body!r}")
            pos += 1
    return labels


def parse_prometheus_text(text: str) -> dict:
    """Strictly parse Prometheus text format.

    Returns ``{"types": {name: type}, "samples": [(name, labels, value)],
    "exemplars": [(name, labels, exemplar_labels, exemplar_value)]}`` and
    raises :class:`ValueError` on any line that is neither a valid
    comment nor a valid sample — the CI smoke job feeds ``obs expose
    --text`` output through this.  OpenMetrics exemplar suffixes
    (``... # {span_id="42"} 3.5``) are accepted on any sample line and
    land in the ``exemplars`` list.
    """
    types: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    exemplars: list[tuple[str, dict, dict, float]] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                match = _TYPE_RE.match(line)
                if match is None:
                    raise ValueError(f"line {line_no}: malformed TYPE comment: {line!r}")
                types[match.group(1)] = match.group(2)
            continue  # HELP and free comments are legal and ignored
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample: {line!r}")
        name, label_body, raw_value, exemplar_body, exemplar_raw = match.groups()
        labels = _parse_labels(label_body, line_no) if label_body else {}
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ValueError(
                f"line {line_no}: malformed sample value {raw_value!r}"
            ) from exc
        samples.append((name, labels, value))
        if exemplar_raw is not None:
            exemplar_labels = (
                _parse_labels(exemplar_body, line_no) if exemplar_body else {}
            )
            try:
                exemplar_value = float(exemplar_raw)
            except ValueError as exc:
                raise ValueError(
                    f"line {line_no}: malformed exemplar value {exemplar_raw!r}"
                ) from exc
            exemplars.append((name, labels, exemplar_labels, exemplar_value))
    return {"types": types, "samples": samples, "exemplars": exemplars}


# ---------------------------------------------------------------------------
# terminal dashboard
# ---------------------------------------------------------------------------


def _format_event(event: dict) -> str:
    kind = event.get("kind", "span")
    if kind == "span":
        sim = ""
        if event.get("start_sim") is not None and event.get("end_sim") is not None:
            sim = f" sim={event['end_sim'] - event['start_sim']:.6f}s"
        return f"span    {event.get('name', '?')}{sim}"
    if kind == "metric":
        labels = event.get("labels")
        rendered = (
            "{" + ",".join(f"{k}={v}" for k, v in labels.items()) + "}"
            if labels else ""
        )
        return (f"metric  {event.get('name', '?')}{rendered} "
                f"{event.get('metric', '?')}={event.get('value', 0):g}")
    if kind == "fault":
        return (f"fault   {event.get('fault', '?')} {event.get('op', '?')}"
                f"@{event.get('ordinal', '?')} page={event.get('page', '?')}")
    if kind == "quality":
        return (f"quality {event.get('label', '?')} "
                f"samples={event.get('uniformity', {}).get('samples', '?')}")
    return f"{kind} {event.get('reason', '')}".rstrip()


def _top_counters(snapshot: dict, top: int) -> list[str]:
    counters = snapshot.get("counters", {})
    if not counters:
        return []
    ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    return [
        "== top counters ==",
        format_table(["counter", "value"], [[n, f"{v:g}"] for n, v in ranked]),
    ]


def _labeled_tables(snapshot: dict, top: int) -> list[str]:
    labeled = snapshot.get("labeled", {}).get("counters", {})
    if not labeled:
        return []
    rows = []
    for name, children in sorted(labeled.items()):
        ranked = sorted(children.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
        rows.extend([name, label, f"{value:g}"] for label, value in ranked)
    return [
        "== labeled counters (top label sets per family) ==",
        format_table(["counter", "labels", "value"], rows),
    ]


def _gauge_table(snapshot: dict) -> list[str]:
    gauges = snapshot.get("gauges", {})
    if not gauges:
        return []
    return [
        "== gauges ==",
        format_table(
            ["gauge", "value"], [[n, f"{v:g}"] for n, v in sorted(gauges.items())]
        ),
    ]


def _slo_table(statuses) -> list[str]:
    if not statuses:
        return []
    rows = []
    for status in statuses:
        burn = max((w["burn"] for w in status.windows), default=None)
        rows.append([
            status.objective,
            status.labels or "(all)",
            "-" if status.value is None else f"{status.value:.4f}",
            "-" if burn is None else f"{burn:.2f}",
            "FIRING" if status.firing else "ok",
        ])
    return [
        "== SLO status (simulated clock) ==",
        format_table(["objective", "labels", "value", "max burn", "state"], rows),
    ]


def _flight_tail(events, tail: int) -> list[str]:
    if not events:
        return []
    recent = list(events)[-tail:]
    return ["== flight recorder tail =="] + [
        f"  {_format_event(event)}" for event in recent
    ]


def render_dashboard(
    snapshot: dict,
    slo_statuses=None,
    flight_events=None,
    top: int = 8,
    title: str = "repro telemetry",
) -> str:
    """Render the live-dashboard frame (pure string; caller owns the loop)."""
    sections: list[list[str]] = [[f"== {title} =="]]
    for section in (
        _top_counters(snapshot, top),
        _labeled_tables(snapshot, top),
        _gauge_table(snapshot),
        _slo_table(slo_statuses or []),
        _flight_tail(flight_events or [], top),
    ):
        if section:
            sections.append(section)
    if len(sections) == 1:
        sections.append(["(no metrics recorded)"])
    return "\n\n".join("\n".join(section) for section in sections) + "\n"
