"""Per-tenant cost attribution for charged page I/O (``repro.obs.cost``).

The paper's cost model charges queries in **page reads** against the
simulated disk; PR 8 threads tenant/query/sampler baggage through the
engine via :data:`~repro.obs.context.CONTEXT`.  This module closes the
loop: every page read (and write) charged by :class:`SimulatedDisk` is
attributed to the label set that was ambient when the charge happened,
so ``trace report`` can answer "which tenant paid for those 4 096
reads?" — the accounting primitive ROADMAP item 1's multi-tenant serve
scheduler schedules against.

Design constraints, in order:

* **Conservation.**  Attribution is only trustworthy if nothing leaks:
  the sum of attributed page reads must equal the disk's own charged
  total.  The accountant therefore snapshots a *baseline* of each
  ``DiskStats`` counter the first time it sees it and checks
  ``sum(by_label) == sum(stats.page_reads - baseline)`` at readout
  (:meth:`CostAccountant.conservation`).  The check is gated **exact**
  in the bench regress rules.
* **Off the hot path.**  Charge sites guard with ``if COST.enabled:`` —
  one attribute load when disarmed, which is the tracing-off default.
  The accountant is armed by ``TraceRecorder.install`` and disarmed (data
  retained for readout) by ``uninstall``.
* **Sanctioned boundary.**  Only the storage charge points
  (``disk.read_page`` / ``touch_pages`` / ``write_page`` and the
  recovery retry loops) may call :meth:`record_reads` /
  :meth:`record_writes` / :meth:`record_io`; lint rule OBS002 pins the
  call-site set so ad-hoc attribution can't silently double-count.

The accountant keys attribution by the canonical label-set tuple of the
ambient baggage (the same tuple the labeled metric families use), so the
``obs.cost.page_reads`` counters published at recorder uninstall line up
series-for-series with the engine's own labeled metrics.
"""

from __future__ import annotations

from threading import Lock

from .context import CONTEXT, canonical_label_set, render_label_set

__all__ = ["COST", "CostAccountant"]


class CostAccountant:  # repro: shared[lock=_lock] attribution ledger; every mutation holds _lock
    """Attributes charged page I/O to the ambient label set.

    One process-wide instance: :data:`COST`.  All counters are plain
    ints/floats guarded by one lock; the per-``DiskStats`` baselines hold
    strong references to the stats objects so the conservation sum stays
    computable even after ``reset_clock`` swaps in a fresh stats object
    (the old one keeps its final counts).
    """

    __slots__ = ("enabled", "_lock", "_reads", "_writes", "_io", "_stats")

    def __init__(self) -> None:
        self.enabled = False
        self._lock = Lock()
        self._reads: dict[tuple, int] = {}
        self._writes: dict[tuple, int] = {}
        self._io: dict[tuple, float] = {}
        # id(stats) -> (stats, reads_baseline, writes_baseline); the
        # strong ref keeps id() stable and the counters reachable.
        self._stats: dict[int, tuple] = {}

    # -- lifecycle -----------------------------------------------------

    def arm(self) -> None:
        """Start attributing from a clean ledger."""
        with self._lock:
            self._reads.clear()
            self._writes.clear()
            self._io.clear()
            self._stats.clear()
            self.enabled = True

    def disarm(self) -> None:
        """Stop attributing; the ledger stays readable until the next arm."""
        self.enabled = False

    # -- charge points (OBS002: storage layer only) --------------------

    def _track(self, stats, reads_delta: int, writes_delta: int) -> None:
        key = id(stats)
        entry = self._stats.get(key)
        if entry is None:
            # First sight: the baseline excludes this charge but includes
            # everything the stats object accumulated before arming.
            self._stats[key] = (
                stats,
                stats.page_reads - reads_delta,
                stats.page_writes - writes_delta,
            )

    def record_reads(self, stats, count: int = 1) -> None:
        """Attribute *count* page reads just charged to *stats*.

        Call **after** incrementing ``stats.page_reads`` so the baseline
        arithmetic in :meth:`_track` sees the post-charge counter.
        """
        label_set = canonical_label_set(CONTEXT.current())
        with self._lock:
            self._track(stats, count, 0)
            self._reads[label_set] = self._reads.get(label_set, 0) + count

    def record_writes(self, stats, count: int = 1) -> None:
        """Attribute *count* page writes just charged to *stats*."""
        label_set = canonical_label_set(CONTEXT.current())
        with self._lock:
            self._track(stats, 0, count)
            self._writes[label_set] = self._writes.get(label_set, 0) + count

    def record_io(self, seconds: float) -> None:
        """Attribute *seconds* of charged retry/backoff I/O delay."""
        label_set = canonical_label_set(CONTEXT.current())
        with self._lock:
            self._io[label_set] = self._io.get(label_set, 0.0) + seconds

    # -- readout -------------------------------------------------------

    def charged_totals(self) -> tuple[int, int]:
        """``(page_reads, page_writes)`` charged by every tracked disk."""
        with self._lock:
            reads = sum(
                stats.page_reads - base_r
                for stats, base_r, _ in self._stats.values()
            )
            writes = sum(
                stats.page_writes - base_w
                for stats, _, base_w in self._stats.values()
            )
        return reads, writes

    def reads_by_label(self, label: str | None = None) -> dict:
        """The read ledger keyed by canonical label-set tuple.

        With ``label`` (e.g. ``"tenant"``), the ledger is re-keyed by that
        one label's value instead — summing every label set carrying it —
        which is the per-tenant view the serve scheduler audits its own
        page-budget ledger against (a charge attributed to the wrong
        tenant breaks this reconciliation even when the global
        conservation check still balances).
        """
        with self._lock:
            ledger = dict(self._reads)
        if label is None:
            return ledger
        out: dict = {}
        for label_set, count in ledger.items():
            for key, value in label_set:
                if key == label:
                    out[value] = out.get(value, 0) + count
                    break
        return out

    def attributed_totals(self) -> tuple[int, int]:
        """``(page_reads, page_writes)`` summed over every label set."""
        with self._lock:
            return sum(self._reads.values()), sum(self._writes.values())

    def conservation(self) -> dict:
        """The conservation check: attributed totals vs disk totals."""
        attributed_reads, attributed_writes = self.attributed_totals()
        charged_reads, charged_writes = self.charged_totals()
        return {
            "attributed_reads": attributed_reads,
            "charged_reads": charged_reads,
            "attributed_writes": attributed_writes,
            "charged_writes": charged_writes,
            "conserved": (
                attributed_reads == charged_reads
                and attributed_writes == charged_writes
            ),
        }

    def snapshot(self) -> dict:
        """JSON-ready ledger: rendered label set -> count, plus conservation.

        The unlabeled (empty-context) bucket renders as ``""``; reports
        display it as ``(unlabeled)``.
        """
        with self._lock:
            reads = {
                render_label_set(k): v for k, v in sorted(self._reads.items())
            }
            writes = {
                render_label_set(k): v for k, v in sorted(self._writes.items())
            }
            io = {
                render_label_set(k): v for k, v in sorted(self._io.items())
            }
        return {
            "page_reads": reads,
            "page_writes": writes,
            "retry_io_seconds": io,
            **self.conservation(),
        }

    def publish(self, metrics) -> None:
        """Emit the ledger as ``obs.cost.*`` labeled counters on *metrics*.

        Called once at ``TraceRecorder.uninstall`` — publishing is a
        readout, not a hot-path increment, so the counter families never
        see per-page traffic.
        """
        with self._lock:
            reads = dict(self._reads)
            writes = dict(self._writes)
        if reads:
            counter = metrics.counter("obs.cost.page_reads")
            for label_set, count in sorted(reads.items()):
                counter.labels(**dict(label_set)).inc(count)
        if writes:
            counter = metrics.counter("obs.cost.page_writes")
            for label_set, count in sorted(writes.items()):
                counter.labels(**dict(label_set)).inc(count)

    def reset(self) -> None:
        """Disarm and drop the ledger (test isolation hook)."""
        self.enabled = False
        with self._lock:
            self._reads.clear()
            self._writes.clear()
            self._io.clear()
            self._stats.clear()


COST = CostAccountant()  # repro: shared[lock=_lock] process-wide attribution ledger
