"""A tiny SQL-ish front end for materialized sample views.

Supports exactly the statement forms the paper uses:

* ``CREATE MATERIALIZED SAMPLE VIEW <name> AS SELECT * FROM <table>
  INDEX ON <col>[, <col>]`` (Section I), and
* range-predicate sampling queries over a view::

      SELECT * FROM <view>
      WHERE <col> BETWEEN <lo> AND <hi> [AND <col2> BETWEEN <lo2> AND <hi2>]
      [SAMPLE <n>]

``SAMPLE n`` asks for the first ``n`` records of the online sample stream;
without it the query runs the stream to exhaustion (returning every
matching record, in random order).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..core.errors import ParseError

__all__ = ["CreateSampleView", "SampleSelect", "parse"]


@dataclass(frozen=True)
class CreateSampleView:
    """Parsed ``CREATE MATERIALIZED SAMPLE VIEW`` statement."""

    view_name: str
    table_name: str
    index_on: tuple[str, ...]


@dataclass(frozen=True)
class SampleSelect:
    """Parsed sampling ``SELECT`` over a view."""

    view_name: str
    predicates: tuple[tuple[str, float, float], ...]  # (column, lo, hi)
    sample_size: int | None


_CREATE_RE = re.compile(
    r"""^\s*CREATE\s+MATERIALIZED\s+SAMPLE\s+VIEW\s+(?P<view>\w+)\s+
        AS\s+SELECT\s+\*\s+FROM\s+(?P<table>\w+)\s+
        INDEX\s+ON\s+(?P<cols>\w+(?:\s*,\s*\w+)*)\s*;?\s*$""",
    re.IGNORECASE | re.VERBOSE,
)

_SELECT_RE = re.compile(
    r"""^\s*SELECT\s+\*\s+FROM\s+(?P<view>\w+)\s+
        WHERE\s+(?P<preds>.+?)
        (?:\s+SAMPLE\s+(?P<n>\d+))?\s*;?\s*$""",
    re.IGNORECASE | re.VERBOSE | re.DOTALL,
)

_PRED_RE = re.compile(
    r"""^\s*(?P<col>\w+)\s+BETWEEN\s+
        (?P<lo>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)\s+AND\s+
        (?P<hi>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)\s*$""",
    re.IGNORECASE | re.VERBOSE,
)


def parse(sql: str) -> CreateSampleView | SampleSelect:
    """Parse one statement; raises :class:`ParseError` on anything else."""
    match = _CREATE_RE.match(sql)
    if match:
        columns = tuple(
            col.strip() for col in match.group("cols").split(",") if col.strip()
        )
        return CreateSampleView(
            view_name=match.group("view"),
            table_name=match.group("table"),
            index_on=columns,
        )
    match = _SELECT_RE.match(sql)
    if match:
        predicates = []
        for clause in _split_on_and(match.group("preds")):
            pred_match = _PRED_RE.match(clause)
            if not pred_match:
                raise ParseError(f"cannot parse predicate {clause!r}")
            lo = float(pred_match.group("lo"))
            hi = float(pred_match.group("hi"))
            if lo > hi:
                raise ParseError(f"BETWEEN bounds reversed in {clause!r}")
            predicates.append((pred_match.group("col"), lo, hi))
        n = match.group("n")
        return SampleSelect(
            view_name=match.group("view"),
            predicates=tuple(predicates),
            sample_size=int(n) if n is not None else None,
        )
    raise ParseError(
        "statement is neither CREATE MATERIALIZED SAMPLE VIEW nor a "
        f"sampling SELECT: {sql!r}"
    )


def _split_on_and(text: str) -> list[str]:
    """Split a WHERE clause on the ANDs between predicates.

    ``BETWEEN a AND b`` contains its own AND, so split only on ANDs that
    follow a complete BETWEEN clause (every odd-numbered AND).
    """
    tokens = re.split(r"\s+AND\s+", text.strip(), flags=re.IGNORECASE)
    if len(tokens) % 2 != 0:
        raise ParseError(f"malformed WHERE clause: {text!r}")
    return [
        f"{tokens[i]} AND {tokens[i + 1]}" for i in range(0, len(tokens), 2)
    ]
