"""Materialized sample views: the paper's user-facing abstraction.

A materialized sample view (Section I) is an indexed, materialized view of a
table that supports online random sampling from arbitrary range predicates
over its indexed attribute(s).  This module is the facade over the ACE Tree
that realizes it, including the differential-file update path the paper
sketches in Section IX: newly inserted records accumulate in a *delta*
(kept in randomly permuted order), and samples are drawn from the primary
ACE Tree and the delta with hypergeometric interleaving, so the merged
stream remains a uniform sample of the updated view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..acetree import AceBuildParams, AceTree, build_ace_tree
from ..baselines.base import Batch
from ..core.intervals import Box
from ..core.records import Record
from ..core.rng import derive_random
from ..storage.heapfile import HeapFile

__all__ = ["MaterializedSampleView", "create_sample_view"]


def create_sample_view(
    name: str,
    source: HeapFile,
    index_on: Sequence[str],
    height: int | None = None,
    memory_pages: int = 64,
    seed: int = 0,
) -> "MaterializedSampleView":
    """``CREATE MATERIALIZED SAMPLE VIEW name AS SELECT * FROM source
    INDEX ON index_on...`` — builds the backing ACE Tree."""
    params = AceBuildParams(
        key_fields=tuple(index_on),
        height=height,
        memory_pages=memory_pages,
        seed=seed,
    )
    tree = build_ace_tree(source, params)
    return MaterializedSampleView(name=name, tree=tree, seed=seed)


@dataclass
class MaterializedSampleView:
    """An ACE-Tree-backed sample view with a differential update path."""

    name: str
    tree: AceTree
    seed: int = 0

    def __post_init__(self) -> None:
        self._delta: list[Record] = []

    # -- schema ---------------------------------------------------------------

    @property
    def key_fields(self) -> tuple[str, ...]:
        return self.tree.key_fields

    @property
    def num_records(self) -> int:
        """Records visible through the view (base + delta)."""
        return self.tree.num_records + len(self._delta)

    @property
    def delta_size(self) -> int:
        return len(self._delta)

    def query(self, *bounds: tuple[float, float] | None) -> Box:
        """Closed range query over the indexed attributes (see AceTree.query)."""
        return self.tree.query(*bounds)

    # -- updates ---------------------------------------------------------------

    def insert(self, records: Sequence[Record]) -> None:
        """Append new records to the differential file.

        The ACE Tree is not incrementally updatable (paper Section IX); new
        data lives in the delta until :meth:`refresh` rebuilds the tree.
        """
        for record in records:
            self.tree.schema.validate(record)
        self._delta.extend(records)

    def refresh(self, memory_pages: int = 64) -> None:
        """Rebuild the ACE Tree over base + delta (the paper's fallback for
        bulk updates: reorganize from scratch with two external sorts)."""
        if not self._delta:
            return
        disk = self.tree.disk
        merged = HeapFile.bulk_load(
            disk,
            self.tree.schema,
            self._all_records(),
            name=f"{self.name}.refresh",
        )
        old_tree = self.tree
        self.tree = build_ace_tree(
            merged,
            AceBuildParams(
                key_fields=self.key_fields,
                height=None,
                memory_pages=memory_pages,
                seed=self.seed + 1,
            ),
        )
        merged.free()
        old_tree.free()
        self._delta = []

    def _all_records(self) -> Iterator[Record]:
        yield from _scan_tree_records(self.tree)
        yield from self._delta

    # -- sampling -----------------------------------------------------------------

    def sample(self, query: Box, seed: int = 0) -> Iterator[Batch]:
        """Online random sample of the view's records matching ``query``.

        With an empty delta this is exactly the ACE Tree stream.  With a
        delta, tree batches are interleaved record-by-record with the
        delta's matching records using hypergeometric probabilities
        (Section IX / Brown & Haas): each next sample comes from a
        partition with probability proportional to its remaining matching
        count, so the merged prefix stays uniform over the whole view.
        """
        if not self._delta:
            yield from self.tree.sample(query, seed=seed)
            return
        yield from self._sample_with_delta(query, seed)

    def _sample_with_delta(self, query: Box, seed: int) -> Iterator[Batch]:
        rng = derive_random(seed, "view-delta")
        key_of = self.tree.schema.keys_getter(self.key_fields)
        disk = self.tree.disk

        delta_matching = [
            record for record in self._delta if query.contains_point(key_of(record))
        ]
        rng.shuffle(delta_matching)
        disk.charge_records(len(self._delta))

        tree_stream = self.tree.sample(query, seed=seed)
        tree_buffer: list[Record] = []
        tree_remaining = round(self.tree.estimate_count(query))
        delta_remaining = len(delta_matching)

        def pull_tree() -> Record | None:
            nonlocal tree_remaining
            while not tree_buffer:
                batch = next(tree_stream, None)
                if batch is None:
                    return None
                tree_buffer.extend(batch.records)
            tree_remaining = max(tree_remaining - 1, 0)
            return tree_buffer.pop()

        while delta_remaining or not tree_stream.exhausted or tree_buffer:
            total = tree_remaining + delta_remaining
            take_delta = (
                delta_remaining > 0
                and (total <= 0 or rng.random() < delta_remaining / total)
            )
            if take_delta:
                record = delta_matching[len(delta_matching) - delta_remaining]
                delta_remaining -= 1
                yield Batch(records=(record,), clock=disk.clock)
                continue
            record = pull_tree()
            if record is None:
                # Tree exhausted early (estimate overshot): drain the delta.
                tree_remaining = 0
                if not delta_remaining:
                    return
                continue
            yield Batch(records=(record,), clock=disk.clock)

    def estimate_count(self, query: Box) -> float:
        """Estimated matching records across base and delta."""
        key_of = self.tree.schema.keys_getter(self.key_fields)
        delta_count = sum(
            1 for record in self._delta if query.contains_point(key_of(record))
        )
        return self.tree.estimate_count(query) + delta_count

    def free(self) -> None:
        self.tree.free()
        self._delta = []


def _scan_tree_records(tree: AceTree) -> Iterator[Record]:
    """Every record stored in the tree, via a sequential leaf-store scan."""
    for leaf in tree.leaf_store.iter_leaves():
        for section in leaf.sections:
            yield from section
