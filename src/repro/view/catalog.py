"""A small catalog tying tables and sample views to the SQL-ish front end.

The catalog is the executable glue for the paper's user-level story: register
base tables, run ``CREATE MATERIALIZED SAMPLE VIEW ... INDEX ON ...``, and
then issue ``SELECT ... WHERE ... BETWEEN ... [SAMPLE n]`` statements that
stream online random samples.
"""

from __future__ import annotations

from ..core.errors import ViewError
from ..core.records import Record
from ..storage.heapfile import HeapFile
from .ddl import CreateSampleView, SampleSelect, parse
from .sampleview import MaterializedSampleView, create_sample_view

__all__ = ["Catalog"]


class Catalog:
    """Named tables and materialized sample views over one simulated disk."""

    def __init__(self) -> None:
        self._tables: dict[str, HeapFile] = {}
        self._views: dict[str, MaterializedSampleView] = {}

    # -- registration ---------------------------------------------------------

    def register_table(self, name: str, heap: HeapFile) -> None:
        if name in self._tables:
            raise ViewError(f"table {name!r} already registered")
        self._tables[name] = heap

    def table(self, name: str) -> HeapFile:
        try:
            return self._tables[name]
        except KeyError:
            raise ViewError(f"no table named {name!r}") from None

    def view(self, name: str) -> MaterializedSampleView:
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"no sample view named {name!r}") from None

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    @property
    def view_names(self) -> tuple[str, ...]:
        return tuple(self._views)

    # -- execution ---------------------------------------------------------------

    def execute(
        self, sql: str, seed: int = 0
    ) -> MaterializedSampleView | list[Record]:
        """Run one statement.

        ``CREATE ...`` builds and registers a view (returned);
        ``SELECT ...`` returns the sampled records (the first ``SAMPLE n``
        of the stream, or every matching record when no limit is given).
        """
        statement = parse(sql)
        if isinstance(statement, CreateSampleView):
            return self._execute_create(statement, seed)
        return self._execute_select(statement, seed)

    def _execute_create(
        self, statement: CreateSampleView, seed: int
    ) -> MaterializedSampleView:
        if statement.view_name in self._views:
            raise ViewError(f"view {statement.view_name!r} already exists")
        source = self.table(statement.table_name)
        for column in statement.index_on:
            source.schema.field_index(column)  # raises SchemaError if absent
        view = create_sample_view(
            statement.view_name, source, statement.index_on, seed=seed
        )
        self._views[statement.view_name] = view
        return view

    def _execute_select(self, statement: SampleSelect, seed: int) -> list[Record]:
        view = self.view(statement.view_name)
        bounds: list[tuple[float, float] | None] = []
        by_column = {col: (lo, hi) for col, lo, hi in statement.predicates}
        unknown = set(by_column) - set(view.key_fields)
        if unknown:
            raise ViewError(
                f"predicate on non-indexed column(s) {sorted(unknown)}; "
                f"view {view.name!r} indexes {view.key_fields}"
            )
        for field_name in view.key_fields:
            bounds.append(by_column.get(field_name))
        query = view.query(*bounds)

        out: list[Record] = []
        for batch in view.sample(query, seed=seed):
            out.extend(batch.records)
            if statement.sample_size is not None and len(out) >= statement.sample_size:
                return out[:statement.sample_size]
        return out

    def drop_view(self, name: str) -> None:
        """Drop a view and release its disk pages."""
        self.view(name).free()
        del self._views[name]
