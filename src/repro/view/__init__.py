"""Materialized sample views: facade, SQL-ish DDL, and catalog."""

from .catalog import Catalog
from .ddl import CreateSampleView, SampleSelect, parse
from .sampleview import MaterializedSampleView, create_sample_view

__all__ = [
    "Catalog",
    "CreateSampleView",
    "MaterializedSampleView",
    "SampleSelect",
    "create_sample_view",
    "parse",
]
