"""Classic record-at-a-time random sampling from an unordered heap file.

This is the technique the paper's introduction criticizes ("the classic
work in this area, by Olken and his co-authors, suffers from a key
drawback: each record sampled from a database file requires a random disk
I/O"): draw a uniform record position, fetch its page, return the record,
and reject it if it does not satisfy the predicate.  Against a selective
range query this wastes ``1 - selectivity`` of its (expensive) random page
reads, which is exactly why indexes that support sampling — the ranked
B+-Tree, and ultimately the ACE Tree — exist.

Included as the historical baseline; it is strictly dominated by the other
methods on every workload in the paper, and the test suite checks that.
"""

from __future__ import annotations

from typing import Iterator

from ..core.errors import QueryError
from ..core.intervals import Box
from ..core.records import Record
from ..core.rng import derive_random
from ..storage.buffer import RecordPageCache
from ..storage.heapfile import HeapFile
from .base import Batch

__all__ = ["HeapRandomSampler"]


class HeapRandomSampler:
    """Olken-style acceptance/rejection sampling over a heap file.

    Args:
        heap: the (unordered) relation.
        key_fields: attributes that range queries constrain.
        buffer_pages: LRU cache for the (randomly touched) pages.
    """

    def __init__(
        self,
        heap: HeapFile,
        key_fields: tuple[str, ...],
        buffer_pages: int = 64,
    ) -> None:
        self.heap = heap
        self.key_fields = tuple(key_fields)
        self._key_of = heap.schema.keys_getter(self.key_fields)
        self._cache = RecordPageCache(heap.disk, buffer_pages, heap.decode_page)
        # Positions are mapped to (page, slot) arithmetically, which needs
        # densely packed pages: every page full except possibly the last.
        # Bulk-loaded heap files satisfy this by construction.
        self._per_page = heap.records_per_page
        full_pages = max(heap.num_pages - 1, 0)
        if heap.num_records < full_pages * self._per_page:
            raise QueryError(
                "heap file is not densely packed; position-based sampling "
                "needs a bulk-loaded file"
            )

    @property
    def num_records(self) -> int:
        return self.heap.num_records

    def sample(self, query: Box, seed: int = 0) -> Iterator[Batch]:
        """Uniform records matching ``query``, one random page I/O per draw.

        Draws positions uniformly without replacement over the whole file
        and rejects non-matching records; terminates when every position
        has been drawn (so, run to exhaustion, it returns exactly the
        matching set — at ruinous cost, as the paper observes).
        """
        if query.dims != len(self.key_fields):
            raise QueryError(
                f"query has {query.dims} dims, sampler indexes "
                f"{len(self.key_fields)}"
            )
        total = self.heap.num_records
        if total == 0:
            return
        rng = derive_random(seed, "heap-sample")
        disk = self.heap.disk
        used: set[int] = set()
        while len(used) < total:
            position = rng.randrange(total)
            disk.charge_records(1)  # draw + duplicate check
            if position in used:
                continue
            used.add(position)
            page_index, slot = divmod(position, self._per_page)
            records = self._cache.read(self.heap.page_ids[page_index])
            record: Record = records[slot]
            if query.contains_point(self._key_of(record)):
                yield Batch(records=(record,), clock=disk.clock)

    def reset_caches(self) -> None:
        """Drop buffered pages (cold-cache start for a new experiment)."""
        self._cache.clear()
