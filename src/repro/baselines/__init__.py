"""The paper's comparison baselines: permuted file, ranked B+-Tree, R-Tree."""

from .base import Batch, Sampler
from .bplustree import RankedBPlusTree, build_bplus_tree
from .heapsampler import HeapRandomSampler
from .permuted import PermutedFile, build_permuted_file
from .rtree import RTree, build_rtree

__all__ = [
    "Batch",
    "HeapRandomSampler",
    "PermutedFile",
    "RTree",
    "RankedBPlusTree",
    "Sampler",
    "build_bplus_tree",
    "build_permuted_file",
    "build_rtree",
]
