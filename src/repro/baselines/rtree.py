"""R-Tree baseline for multi-dimensional sampling (paper Section VIII.A).

The paper's second experiment compares the k-d ACE Tree against "the obvious
extension of Antoshenkov's algorithm to a two-dimensional R-Tree": a primary
R-Tree, bulk-loaded with Sort-Tile-Recursive (STR) packing, whose entries
carry subtree record counts.

Sampling uses Olken's classic accept/reject descent, which is exactly
unbiased: from the root, pick a child with probability proportional to its
subtree count *over all children*; if the picked child's MBR does not
overlap the query, reject the trial (no I/O — internal nodes are cached);
at a leaf page pick a uniform record and accept it iff it matches the query
and was not sampled before.  Every trial selects each stored record with
probability ``1/N``, so accepted records are uniform over the matching set.
"""

from __future__ import annotations

import math
import struct
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..core.errors import IndexBuildError, QueryError
from ..core.intervals import Box, Interval
from ..core.records import Field, Record, Schema
from ..core.rng import derive_random
from ..obs.context import CONTEXT
from ..obs.metrics import METRICS
from ..obs.tracer import TRACER
from ..storage.buffer import RecordPageCache
from ..storage.external_sort import external_sort, external_sort_to_sink
from ..storage.heapfile import HeapFile
from .base import Batch

__all__ = ["RTree", "build_rtree"]

_NODE_HEADER = struct.Struct("<HBB")  # entry count, leaf-children flag, dims


@dataclass(frozen=True, slots=True)
class _RNode:
    """Decoded R-Tree node: child MBRs, cumulative counts, references."""

    mbrs: tuple[Box, ...]
    cumulative: tuple[int, ...]  # cumulative[j] = records in children <= j
    children: tuple[int, ...]
    leaf_children: bool

    @property
    def total(self) -> int:
        return self.cumulative[-1]


def build_rtree(
    source: HeapFile,
    key_fields: Sequence[str],
    memory_pages: int = 64,
    leaf_cache_pages: int = 4096,
    name: str = "rtree",
) -> "RTree":
    """Bulk-load an R-Tree over point data with STR packing.

    STR (Leutenegger et al., the algorithm the paper used): sort the points
    on the first dimension, cut the file into ``ceil(sqrt(P))`` vertical
    slabs of whole pages, sort each slab on the remaining dimensions, and
    pack pages in that order.  Both sorts are external; the slab id is
    attached while the first sort's output streams into the second, so no
    extra pass is needed.
    """
    if source.num_records == 0:
        raise IndexBuildError("cannot build an R-Tree over an empty relation")
    key_fields = tuple(key_fields)
    if len(key_fields) < 2:
        raise IndexBuildError("an R-Tree needs at least two key dimensions")
    disk = source.disk
    key_of = source.schema.keys_getter(key_fields)

    by_first = external_sort(
        source,
        key=lambda record: key_of(record)[0],
        memory_pages=memory_pages,
        name=f"{name}.sort0",
        key_field=key_fields[0],
    )

    per_page = by_first.records_per_page
    total_pages = max(1, math.ceil(by_first.num_records / per_page))
    slabs = max(1, math.ceil(math.sqrt(total_pages)))
    slab_records = math.ceil(total_pages / slabs) * per_page

    # Decorate each record with its slab id (position in the x-sorted
    # order // slab size) so the second sort key is a pure record function.
    decorated_schema = Schema(
        [Field(source.schema.fresh_field_name("slab_"), "i8")]
        + list(source.schema.fields)
    )
    position = iter(range(by_first.num_records))

    def decorate(record: Record) -> Record:
        return (next(position) // slab_records,) + record

    leaf_meta: list[tuple[Box, int]] = []  # (MBR, record count) per page

    def load_leaves(stream: Iterator[Record]) -> HeapFile:
        heap = HeapFile.create(disk, source.schema, name=f"{name}.leaves")
        page: list[Record] = []

        def flush_page() -> None:
            points = [key_of(record) for record in page]
            leaf_meta.append((Box.bounding(points), len(page)))
            heap.extend(page)

        for decorated in stream:
            page.append(decorated[1:])
            if len(page) == per_page:
                flush_page()
                page = []
        if page:
            flush_page()
        heap.flush()
        return heap

    leaves = external_sort_to_sink(
        by_first,
        key=lambda rec: (rec[0],) + key_of(rec[1:])[1:],
        sink=load_leaves,
        memory_pages=memory_pages,
        free_source=True,
        transform=decorate,
        output_schema=decorated_schema,
    )
    return RTree._build_internal(leaves, key_fields, leaf_meta, leaf_cache_pages)


class RTree:
    """A bulk-loaded primary R-Tree with subtree counts."""

    def __init__(
        self,
        leaves: HeapFile,
        key_fields: tuple[str, ...],
        root_pid: int,
        node_extents: list[tuple[int, int]],
        num_internal_pages: int,
        leaf_cache_pages: int,
    ) -> None:
        self.leaves = leaves
        self.key_fields = key_fields
        self._key_of = leaves.schema.keys_getter(key_fields)
        self._root_pid = root_pid
        self._node_extents = node_extents
        self.num_internal_pages = num_internal_pages
        disk = leaves.disk
        self._node_cache = RecordPageCache(
            disk, max(num_internal_pages, 1), self._decode_node
        )
        self._leaf_cache = RecordPageCache(disk, leaf_cache_pages, self._decode_leaf)

    @property
    def dims(self) -> int:
        return len(self.key_fields)

    @property
    def num_records(self) -> int:
        return self.leaves.num_records

    @property
    def num_pages(self) -> int:
        return self.leaves.num_pages + self.num_internal_pages

    # -- construction ---------------------------------------------------------

    @classmethod
    def _build_internal(
        cls,
        leaves: HeapFile,
        key_fields: tuple[str, ...],
        leaf_meta: list[tuple[Box, int]],
        leaf_cache_pages: int,
    ) -> "RTree":
        disk = leaves.disk
        dims = len(key_fields)
        entry_struct = cls._entry_struct(dims)
        fanout = (disk.page_size - _NODE_HEADER.size) // entry_struct.size
        if fanout < 2:
            raise IndexBuildError("page too small for two R-Tree entries")

        entries = [
            (mbr, count, page_index)
            for page_index, (mbr, count) in enumerate(leaf_meta)
        ]
        leaf_children = True
        extents: list[tuple[int, int]] = []
        num_internal = 0
        while True:
            groups = [entries[i:i + fanout] for i in range(0, len(entries), fanout)]
            start = disk.allocate(len(groups))
            extents.append((start, len(groups)))
            next_entries = []
            for offset, group in enumerate(groups):
                pid = start + offset
                parts = [
                    _NODE_HEADER.pack(len(group), 1 if leaf_children else 0, dims)
                ]
                for mbr, count, ref in group:
                    bounds = []
                    for side in mbr.sides:
                        bounds.extend((side.lo, side.hi))
                    parts.append(entry_struct.pack(*bounds, count, ref))
                disk.write_page(pid, b"".join(parts))
                num_internal += 1
                group_mbr = _union_boxes([mbr for mbr, _c, _r in group])
                next_entries.append(
                    (group_mbr, sum(count for _m, count, _r in group), pid)
                )
            if len(groups) == 1:
                root_pid = start
                break
            entries = next_entries
            leaf_children = False
        return cls(
            leaves, key_fields, root_pid, extents, num_internal, leaf_cache_pages
        )

    @staticmethod
    def _entry_struct(dims: int) -> struct.Struct:
        return struct.Struct(f"<{2 * dims}dQI")

    # -- decoding ----------------------------------------------------------------

    def _decode_node(self, data: bytes) -> _RNode:
        count, leaf_flag, dims = _NODE_HEADER.unpack_from(data, 0)
        entry_struct = self._entry_struct(dims)
        mbrs = []
        cumulative = []
        children = []
        running = 0
        pos = _NODE_HEADER.size
        for _ in range(count):
            values = entry_struct.unpack_from(data, pos)
            pos += entry_struct.size
            sides = tuple(
                Interval(values[2 * d], values[2 * d + 1]) for d in range(dims)
            )
            mbrs.append(Box(sides))
            running += values[2 * dims]
            cumulative.append(running)
            children.append(values[2 * dims + 1])
        self.leaves.disk.charge_records(count)
        return _RNode(
            mbrs=tuple(mbrs),
            cumulative=tuple(cumulative),
            children=tuple(children),
            leaf_children=bool(leaf_flag),
        )

    def _decode_leaf(self, data: bytes) -> list[Record]:
        return self.leaves.decode_page(data)

    # -- exact counting ------------------------------------------------------------

    def count(self, query: Box) -> int:
        """Exact number of records matching ``query``.

        Fully contained subtrees contribute their stored counts; boundary
        leaf pages are read (through the cache) and filtered.  This is the
        2-D analogue of the ranked B+-Tree's rank-interval computation and
        is charged to the simulated clock the same way.
        """
        if query.dims != self.dims:
            raise QueryError(f"query has {query.dims} dims, tree has {self.dims}")
        total = 0
        stack: list[tuple[int, bool]] = [(self._root_pid, False)]
        while stack:
            ref, is_leaf_page = stack.pop()
            if is_leaf_page:
                records = self._leaf_cache.read(self.leaves.page_ids[ref])
                total += sum(
                    1
                    for record in records
                    if query.contains_point(self._key_of(record))
                )
                continue
            node = self._node_cache.read(ref)
            for j, mbr in enumerate(node.mbrs):
                if not mbr.overlaps(query):
                    continue
                child_count = node.cumulative[j] - (node.cumulative[j - 1] if j else 0)
                if query.contains(mbr):
                    total += child_count
                else:
                    stack.append((node.children[j], node.leaf_children))
        return total

    # -- ranked sampling (the paper's "obvious extension" of Antoshenkov) ---------

    def overlapping_leaf_entries(self, query: Box) -> list[tuple[int, int]]:
        """(leaf page index, record count) of every leaf page whose MBR
        overlaps the query — the 2-D analogue of the B+-Tree rank interval.

        Found with one internal-node traversal (through the node cache, so
        its cost lands on the simulated clock).
        """
        if query.dims != self.dims:
            raise QueryError(f"query has {query.dims} dims, tree has {self.dims}")
        out: list[tuple[int, int]] = []
        stack: list[int] = [self._root_pid]
        while stack:
            node = self._node_cache.read(stack.pop())
            for j, mbr in enumerate(node.mbrs):
                if not mbr.overlaps(query):
                    continue
                if node.leaf_children:
                    count = node.cumulative[j] - (node.cumulative[j - 1] if j else 0)
                    out.append((node.children[j], count))
                else:
                    stack.append(node.children[j])
        return out

    def sample(self, query: Box, seed: int = 0) -> Iterator[Batch]:
        """Ranked sampling from a box predicate (Antoshenkov extended).

        The records of the leaf pages whose MBRs overlap the query form the
        candidate rank space, exactly as the ranked B+-Tree's ``[r1, r2)``
        interval does in 1-D.  Uniform ranks are drawn without replacement;
        the ranked record is fetched (one page access, buffered after the
        first touch) and accepted iff it actually satisfies the predicate —
        STR packing keeps leaf MBRs tight, so the acceptance rate is high.
        Accepted records are uniform over the matching set because every
        matching record occupies exactly one candidate rank.  The stream is
        exhausted once every candidate rank has been drawn — no up-front
        exact count is needed, so the first samples appear after a single
        leaf page access.
        """
        if query.dims != self.dims:
            raise QueryError(f"query has {query.dims} dims, tree has {self.dims}")
        disk = self.leaves.disk
        with TRACER.span("rtree.locate", disk=disk):
            entries = self.overlapping_leaf_entries(query)
        cumulative: list[int] = []
        running = 0
        for _page, count in entries:
            running += count
            cumulative.append(running)
        candidates = running
        if candidates == 0:
            return
        rng = derive_random(seed, "rtree-sample")
        emitted = (
            METRICS.counter("baseline.records").labels(**CONTEXT.labels())
            if TRACER.enabled else None
        )
        used: set[int] = set()
        while len(used) < candidates:
            rank = rng.randrange(candidates)
            disk.charge_records(1)  # draw + duplicate check
            if rank in used:
                continue
            used.add(rank)
            j = bisect_right(cumulative, rank)
            slot = rank - (cumulative[j - 1] if j else 0)
            page_index = entries[j][0]
            with TRACER.span("rtree.fetch", disk=disk, detail=True):
                records = self._leaf_cache.read(self.leaves.page_ids[page_index])
            record = records[slot]
            if not query.contains_point(self._key_of(record)):
                continue  # candidate rank outside the predicate: rejected
            if emitted is not None:
                emitted.inc()
            yield Batch(records=(record,), clock=disk.clock)

    # -- Olken accept/reject sampling (alternative, kept for ablation) ------------

    def sample_olken(self, query: Box, seed: int = 0) -> Iterator[Batch]:
        """Unbiased A/R sampling without replacement from a box predicate.

        Olken's count-proportional descent with rejection.  Statistically
        identical to :meth:`sample` but pays ~``1/selectivity`` rejected
        trials per accepted record, which is why the ranked extension is
        the baseline the benchmarks use.  Without-replacement identity is
        positional (leaf page, slot), so duplicate record values cannot
        stall the sampler.
        """
        if query.dims != self.dims:
            raise QueryError(f"query has {query.dims} dims, tree has {self.dims}")
        total = self.count(query)
        if total == 0:
            return
        # Distinct tag from sample(): the two samplers must not draw
        # bit-identical streams when ablations run both at one seed.
        rng = derive_random(seed, "rtree-olken")
        disk = self.leaves.disk
        used: set[tuple[int, int]] = set()
        emitted = 0
        while emitted < total:
            hit = self._trial(query, rng)
            if hit is None:
                continue
            record, identity = hit
            if identity in used:
                continue
            used.add(identity)
            emitted += 1
            yield Batch(records=(record,), clock=disk.clock)

    def _trial(
        self, query: Box, rng: random.Random
    ) -> tuple[Record, tuple[int, int]] | None:
        """One A/R descent; returns (record, slot identity) or ``None``."""
        disk = self.leaves.disk
        node = self._node_cache.read(self._root_pid)
        while True:
            draw = rng.randrange(node.total)
            j = bisect_right(node.cumulative, draw)
            disk.charge_records(1)
            if not node.mbrs[j].overlaps(query):
                return None  # rejected before any leaf I/O
            if node.leaf_children:
                page_index = node.children[j]
                records = self._leaf_cache.read(self.leaves.page_ids[page_index])
                slot = rng.randrange(len(records))
                record = records[slot]
                if query.contains_point(self._key_of(record)):
                    return record, (page_index, slot)
                return None
            node = self._node_cache.read(node.children[j])

    # -- lifecycle -----------------------------------------------------------------

    def reset_caches(self) -> None:
        """Drop buffered pages (cold-cache start for a new experiment)."""
        self._node_cache.clear()
        self._leaf_cache.clear()

    def free(self) -> None:
        disk = self.leaves.disk
        for start, count in self._node_extents:
            disk.free(start, count)
        self.leaves.free()


def _union_boxes(boxes: list[Box]) -> Box:
    """Smallest box containing every input box."""
    sides = []
    for d in range(boxes[0].dims):
        lo = min(box.sides[d].lo for box in boxes)
        hi = max(box.sides[d].hi for box in boxes)
        sides.append(Interval(lo, hi))
    return Box(tuple(sides))


# Re-exported for callers that want to tune the STR slab math.
def str_slab_layout(num_records: int, records_per_page: int) -> tuple[int, int]:
    """(number of slabs, records per slab) chosen by STR packing."""
    if records_per_page <= 0:
        raise IndexBuildError("records_per_page must be positive")
    total_pages = max(1, math.ceil(num_records / records_per_page))
    slabs = max(1, math.ceil(math.sqrt(total_pages)))
    return slabs, math.ceil(total_pages / slabs) * records_per_page
