"""Ranked B+-Tree with Antoshenkov/Olken random sampling (paper Section II.B).

This is the strongest 1-D iterative-sampling baseline in the paper: a
primary B+-Tree whose internal entries carry subtree record counts, so that
the ``i``-th record of the file (in key order) can be fetched directly.
Sampling from ``BETWEEN v1 AND v2`` (Algorithm 1) finds the rank interval
``[r1, r2)`` of the matching records, then repeatedly draws uniform ranks
without replacement and fetches each drawn record — one random page access
per draw until the relevant leaf pages are buffer-resident, after which
draws cost only CPU.

The tree is bulk-loaded: the relation is externally sorted on the key and
the sorted heap file *is* the leaf level (data stored in the tree);
internal levels are packed bottom-up.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterator

from ..core.errors import IndexBuildError, QueryError
from ..core.intervals import Box
from ..core.records import Record
from ..core.rng import derive_random
from ..obs.context import CONTEXT
from ..obs.metrics import METRICS
from ..obs.tracer import TRACER
from ..storage.buffer import RecordPageCache
from ..storage.external_sort import external_sort_to_sink
from ..storage.heapfile import HeapFile
from .base import Batch

__all__ = ["RankedBPlusTree", "build_bplus_tree"]

_NODE_HEADER = struct.Struct("<HB")  # entry count, children-are-leaf-pages flag
_NODE_ENTRY = struct.Struct("<dQI")  # min key, subtree count, child reference


@dataclass(frozen=True, slots=True)
class _Node:
    """Decoded internal node: parallel child arrays plus prefix counts."""

    min_keys: tuple[float, ...]
    prefix_counts: tuple[int, ...]  # prefix_counts[j] = records in children < j
    children: tuple[int, ...]
    leaf_children: bool

    @property
    def total(self) -> int:
        return self.prefix_counts[-1]


def build_bplus_tree(
    source: HeapFile,
    key_field: str,
    memory_pages: int = 64,
    leaf_cache_pages: int = 4096,
    name: str = "bplus",
) -> "RankedBPlusTree":
    """Bulk-load a ranked B+-Tree over ``source`` on the same disk.

    The build is one external sort; leaf-page statistics (first key and
    record count, the inputs to the ranked internal levels) are collected
    while the final merge streams into the leaf file, so no extra pass is
    needed.
    """
    if source.num_records == 0:
        raise IndexBuildError("cannot build a B+-Tree over an empty relation")
    disk = source.disk
    key_of = source.schema.key_getter(key_field)
    leaf_stats: list[tuple[float, int]] = []  # (first key, record count) per page

    def load_leaves(stream) -> HeapFile:
        heap = HeapFile.create(disk, source.schema, name=f"{name}.leaves")
        per_page = heap.records_per_page
        page: list[Record] = []
        for record in stream:
            page.append(record)
            if len(page) == per_page:
                leaf_stats.append((float(key_of(page[0])), len(page)))
                heap.extend(page)
                page = []
        if page:
            leaf_stats.append((float(key_of(page[0])), len(page)))
            heap.extend(page)
        heap.flush()
        return heap

    leaves = external_sort_to_sink(
        source,
        key=key_of,
        sink=load_leaves,
        memory_pages=memory_pages,
        key_field=key_field,
    )
    return RankedBPlusTree._build_internal(
        leaves, key_field, leaf_stats, leaf_cache_pages
    )


class RankedBPlusTree:
    """A bulk-loaded primary B+-Tree with rank information."""

    def __init__(
        self,
        leaves: HeapFile,
        key_field: str,
        root_pid: int,
        node_extents: list[tuple[int, int]],
        num_internal_pages: int,
        leaf_cache_pages: int,
    ) -> None:
        self.leaves = leaves
        self.key_field = key_field
        self._key_of = leaves.schema.key_getter(key_field)
        self._root_pid = root_pid
        self._node_extents = node_extents
        self.num_internal_pages = num_internal_pages
        disk = leaves.disk
        # Internal pages are few and hot: cache them all.
        self._node_cache = RecordPageCache(
            disk, max(num_internal_pages, 1), self._decode_node
        )
        self._leaf_cache = RecordPageCache(
            disk, leaf_cache_pages, self._decode_leaf
        )

    # -- construction ---------------------------------------------------------

    @classmethod
    def _build_internal(
        cls,
        leaves: HeapFile,
        key_field: str,
        leaf_stats: list[tuple[float, int]],
        leaf_cache_pages: int,
    ) -> "RankedBPlusTree":
        disk = leaves.disk
        fanout = (disk.page_size - _NODE_HEADER.size) // _NODE_ENTRY.size
        if fanout < 2:
            raise IndexBuildError("page too small for two B+-Tree entries")

        entries = [
            (min_key, count, page_index)
            for page_index, (min_key, count) in enumerate(leaf_stats)
        ]
        leaf_children = True
        extents: list[tuple[int, int]] = []
        num_internal = 0
        root_pid = -1
        while True:
            groups = [entries[i:i + fanout] for i in range(0, len(entries), fanout)]
            start = disk.allocate(len(groups))
            extents.append((start, len(groups)))
            next_entries = []
            for offset, group in enumerate(groups):
                pid = start + offset
                data = _NODE_HEADER.pack(len(group), 1 if leaf_children else 0)
                data += b"".join(_NODE_ENTRY.pack(*entry) for entry in group)
                disk.write_page(pid, data)
                num_internal += 1
                next_entries.append(
                    (group[0][0], sum(count for _key, count, _ref in group), pid)
                )
            if len(groups) == 1:
                root_pid = start
                break
            entries = next_entries
            leaf_children = False
        return cls(
            leaves,
            key_field,
            root_pid,
            extents,
            num_internal,
            leaf_cache_pages,
        )

    # -- page decoding ----------------------------------------------------------

    def _decode_node(self, data: bytes) -> _Node:
        count, leaf_flag = _NODE_HEADER.unpack_from(data, 0)
        min_keys = []
        prefix = [0]
        children = []
        pos = _NODE_HEADER.size
        for _ in range(count):
            min_key, sub_count, ref = _NODE_ENTRY.unpack_from(data, pos)
            pos += _NODE_ENTRY.size
            min_keys.append(min_key)
            prefix.append(prefix[-1] + sub_count)
            children.append(ref)
        self.leaves.disk.charge_records(count)
        return _Node(
            min_keys=tuple(min_keys),
            prefix_counts=tuple(prefix),
            children=tuple(children),
            leaf_children=bool(leaf_flag),
        )

    def _decode_leaf(self, data: bytes):
        records = self.leaves.decode_page(data)
        keys = [self._key_of(record) for record in records]
        return records, keys

    def _read_leaf(self, page_index: int):
        return self._leaf_cache.read(self.leaves.page_ids[page_index])

    # -- ranked operations --------------------------------------------------------

    @property
    def num_records(self) -> int:
        return self.leaves.num_records

    @property
    def num_pages(self) -> int:
        """Leaf plus internal pages."""
        return self.leaves.num_pages + self.num_internal_pages

    def rank_of(self, value: float) -> int:
        """Number of records with key strictly below ``value``."""
        node = self._node_cache.read(self._root_pid)
        rank = 0
        while True:
            # Descend into the last child whose minimum key is < value:
            # duplicates of ``value`` may span page boundaries, so a child
            # whose min equals ``value`` contains no keys below it, but the
            # child before it may.
            j = bisect_left(node.min_keys, value) - 1
            if j < 0:
                return rank
            rank += node.prefix_counts[j]
            if node.leaf_children:
                records, keys = self._read_leaf(node.children[j])
                self.leaves.disk.charge_records(len(records).bit_length())
                return rank + bisect_left(keys, value)
            node = self._node_cache.read(node.children[j])

    def record_at_rank(self, rank: int) -> Record:
        """The ``rank``-th record in key order (0-based)."""
        if not 0 <= rank < self.num_records:
            raise QueryError(f"rank {rank} out of range 0..{self.num_records - 1}")
        node = self._node_cache.read(self._root_pid)
        while True:
            j = bisect_right(node.prefix_counts, rank) - 1
            rank -= node.prefix_counts[j]
            if node.leaf_children:
                records, _keys = self._read_leaf(node.children[j])
                return records[rank]
            node = self._node_cache.read(node.children[j])

    def range_rank_interval(self, query: Box) -> tuple[int, int]:
        """Rank interval ``[r1, r2)`` of the records matching a 1-D query."""
        if query.dims != 1:
            raise QueryError(f"B+-Tree queries are 1-D, got {query.dims}-d box")
        side = query.sides[0]
        return self.rank_of(side.lo), self.rank_of(side.hi)

    # -- Algorithm 1: iterative random sampling -----------------------------------

    def sample(self, query: Box, seed: int = 0) -> Iterator[Batch]:
        """Antoshenkov's ranked-B+-Tree sampler (paper Algorithm 1).

        Draws uniform ranks in the matching interval without replacement
        (previously seen ranks are discarded and redrawn) and fetches each
        record by rank.  One batch per retrieved record.
        """
        disk = self.leaves.disk
        with TRACER.span("bplus.locate", disk=disk):
            r1, r2 = self.range_rank_interval(query)
        if r1 >= r2:
            return
        rng = derive_random(seed, "bplus-sample")
        emitted = (
            METRICS.counter("baseline.records").labels(**CONTEXT.labels())
            if TRACER.enabled else None
        )
        used: set[int] = set()
        total = r2 - r1
        while len(used) < total:
            rank = rng.randrange(r1, r2)
            disk.charge_records(1)  # draw + duplicate check
            if rank in used:
                continue
            used.add(rank)
            with TRACER.span("bplus.fetch", disk=disk, detail=True):
                record = self.record_at_rank(rank)
            if emitted is not None:
                emitted.inc()
            yield Batch(records=(record,), clock=disk.clock)

    # -- block-based sampling (paper Section II.C) --------------------------------

    def sample_blocks(self, query: Box, seed: int = 0) -> Iterator[Batch]:
        """Block-level sampling: draw whole leaf pages, keep all matches.

        This is the Section II.C technique (Haas & Koenig / Chaudhuri et
        al.): instead of fetching one ranked record per random I/O, fetch a
        random *page* of the matching rank range and consume every matching
        record on it — two to three orders of magnitude more records per
        I/O.  The paper's caveat applies and is demonstrated in the test
        suite: the records of one page are not independent draws, so any
        estimate computed from N block-sampled records can have much wider
        error than from N independent ones (in the extreme, a page of
        correlated values is worth a single sample).  Pages are drawn
        uniformly without replacement; run to exhaustion the stream still
        returns exactly the matching set.
        """
        disk = self.leaves.disk
        with TRACER.span("bplus.locate", disk=disk):
            r1, r2 = self.range_rank_interval(query)
        if r1 >= r2:
            return
        per_page = self.leaves.records_per_page
        first_page = r1 // per_page
        last_page = (r2 - 1) // per_page
        pages = list(range(first_page, last_page + 1))
        rng = derive_random(seed, "bplus-blocks")
        rng.shuffle(pages)
        emitted = (
            METRICS.counter("baseline.records").labels(**CONTEXT.labels())
            if TRACER.enabled else None
        )
        side = query.sides[0]
        for page_index in pages:
            with TRACER.span("bplus.fetch", disk=disk, detail=True) as sp:
                records, keys = self._read_leaf(page_index)
                matching = tuple(
                    record
                    for record, key in zip(records, keys)
                    if side.contains_value(key)
                )
                if sp is not None:
                    sp.attrs["matched"] = len(matching)
            if emitted is not None and matching:
                emitted.inc(len(matching))
            yield Batch(records=matching, clock=disk.clock)

    # -- lifecycle -------------------------------------------------------------

    def reset_caches(self) -> None:
        """Drop buffered pages (cold-cache start for a new experiment)."""
        self._node_cache.clear()
        self._leaf_cache.clear()

    def free(self) -> None:
        disk = self.leaves.disk
        for start, count in self._node_extents:
            disk.free(start, count)
        self.leaves.free()
