"""Common interface for the sampling baselines.

Every record-retrieval method in the evaluation — the ACE Tree, the
randomly permuted file, the ranked B+-Tree, and the R-Tree — exposes the
same contract: given a range query (a :class:`~repro.core.intervals.Box`
over the indexed attributes), produce an iterator of *batches*, where each
batch carries the records that became available and the simulated clock at
which they did.  The race harness consumes only this contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol, runtime_checkable

from ..core.intervals import Box
from ..core.records import Record

__all__ = ["Batch", "Sampler"]


@dataclass(frozen=True, slots=True)
class Batch:
    """Records that became available at simulated time ``clock``."""

    records: tuple[Record, ...]
    clock: float


@runtime_checkable
class Sampler(Protocol):
    """Anything that can stream a random sample for a range query."""

    def sample(self, query: Box, seed: int = 0) -> Iterator[Batch]:
        """Yield batches of sample records with their availability times.

        At every prefix of the stream, the union of emitted records must be
        a uniform random sample, without replacement, of the records
        matching ``query``; run to exhaustion the stream returns exactly
        the matching set.
        """
        ...  # pragma: no cover - protocol
