"""The randomly permuted file baseline (paper Section II.A).

The relation is rewritten in a uniformly random order: each record gets a
random sort key, the file is externally sorted on it, and the key is
stripped as the sorted records are written back — exactly the TPMMS-based
procedure the paper describes for its experiments.

Sampling from a range predicate is then a sequential scan that keeps the
matching records: because the stored order is a uniform random permutation,
every scan prefix's matches are a uniform random sample (without
replacement) of the matching records.  The method's strength is sequential
bandwidth; its weakness is that the useful fraction of each page equals the
query's selectivity.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Iterator

from ..core.errors import QueryError
from ..core.intervals import Box
from ..core.records import Field, Record, Schema
from ..core.rng import derive_random
from ..obs.context import CONTEXT
from ..obs.metrics import METRICS
from ..obs.tracer import TRACER
from ..storage.external_sort import external_sort_to_sink
from ..storage.heapfile import HeapFile
from .base import Batch

__all__ = ["PermutedFile", "build_permuted_file"]


def build_permuted_file(
    source: HeapFile,
    key_fields: tuple[str, ...],
    seed: int = 0,
    memory_pages: int = 64,
    name: str = "permuted",
) -> "PermutedFile":
    """Create a randomly permuted copy of ``source`` on the same disk.

    ``key_fields`` names the attributes range queries will constrain (they
    are not used for the permutation itself, only remembered so that
    :meth:`PermutedFile.sample` can evaluate predicates).
    """
    shuffle_rng = derive_random(seed, "permute")
    decorated_schema = Schema(
        [Field(source.schema.fresh_field_name("rand_"), "i8")]
        + list(source.schema.fields)
    )

    def decorate(record: Record) -> Record:
        return (shuffle_rng.getrandbits(62),) + record

    def strip(stream: Iterator[Record]) -> HeapFile:
        return HeapFile.bulk_load(
            source.disk, source.schema, (rec[1:] for rec in stream), name=name
        )

    permuted = external_sort_to_sink(
        source,
        key=itemgetter(0),
        sink=strip,
        memory_pages=memory_pages,
        transform=decorate,
        output_schema=decorated_schema,
    )
    return PermutedFile(permuted, key_fields)


class PermutedFile:
    """A randomly permuted heap file with scan-based range sampling."""

    def __init__(self, heap: HeapFile, key_fields: tuple[str, ...]) -> None:
        self.heap = heap
        self.key_fields = tuple(key_fields)

    @property
    def num_records(self) -> int:
        return self.heap.num_records

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    def sample(self, query: Box, seed: int = 0) -> Iterator[Batch]:
        """Scan the permutation front to back, emitting matching records.

        One batch per page: the page's matching records become available
        when its sequential read completes.  ``seed`` is accepted for
        interface uniformity; the permutation fixed at build time is the
        source of randomness.
        """
        if query.dims != len(self.key_fields):
            raise QueryError(
                f"query has {query.dims} dims, file indexes {len(self.key_fields)}"
            )
        disk = self.heap.disk
        sides = query.sides
        # Evaluate the predicate on lazily-decoded key columns and decode
        # only matching rows; at low selectivity most of each page is never
        # unpacked.  Charged cost is identical to a full scan — the useful
        # fraction of each *transfer* is what the cost model punishes.
        # The page read happens when the view generator advances, so the
        # span must wrap the explicit ``next()`` — and close before the
        # yield (a span never stays open across a generator suspension).
        views = iter(self.heap.scan_page_views())
        emitted = (
            METRICS.counter("baseline.records").labels(**CONTEXT.labels())
            if TRACER.enabled else None
        )
        while True:
            with TRACER.span("permuted.page", disk=disk, detail=True) as sp:
                view = next(views, None)
                if view is None:
                    return
                columns = [view.column(name) for name in self.key_fields]
                if len(columns) == 1:
                    lo, hi = sides[0].lo, sides[0].hi  # Interval is [lo, hi)
                    matching_idx = [
                        i for i, x in enumerate(columns[0]) if lo <= x < hi
                    ]
                else:
                    matching_idx = [
                        i
                        for i, point in enumerate(zip(*columns))
                        if all(s.lo <= v < s.hi for s, v in zip(sides, point))
                    ]
                if not matching_idx:
                    matching: tuple[Record, ...] = ()
                elif 2 * len(matching_idx) >= view.count:
                    records = view.records  # mostly matching: batched decode
                    matching = tuple(records[i] for i in matching_idx)
                else:
                    matching = tuple(view.record(i) for i in matching_idx)
                if sp is not None:
                    sp.attrs["matched"] = len(matching)
            if emitted is not None and matching:
                emitted.inc(len(matching))
            yield Batch(records=matching, clock=disk.clock)

    def free(self) -> None:
        self.heap.free()
