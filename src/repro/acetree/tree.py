"""The ACE Tree facade: a built sample index over one relation.

An :class:`AceTree` bundles the Phase-1 geometry (split keys + counts), the
Phase-2 leaf store, and the schema/key metadata, and exposes the two
operations a materialized sample view needs:

* :meth:`sample` — an online random-sample stream for a range query
  (the Shuttle/Combine algorithm of paper Section VI);
* :meth:`estimate_count` — population-size estimation from the
  internal-node counts (used by online aggregation, Section III.B).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dcfield
from typing import TYPE_CHECKING, Sequence

from ..core.errors import QueryError
from ..core.intervals import Box, Interval
from ..core.records import Schema
from ..storage.disk import SimulatedDisk
from ..storage.sample_cache import SampleCache
from .geometry import TreeGeometry
from .nodes import InternalNodeView
from .storage import LeafStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (query imports tree types)
    from .build import AceBuildReport
    from .query import SampleStream

__all__ = ["AceTree"]


@dataclass
class AceTree:
    """A bulk-built ACE Tree (see :func:`repro.acetree.build_ace_tree`)."""

    geometry: TreeGeometry
    leaf_store: LeafStore
    schema: Schema
    key_fields: tuple[str, ...]
    num_records: int
    build_report: "AceBuildReport"
    #: Optional combinable sample-reuse cache (see
    #: :mod:`repro.storage.sample_cache`).  ``None`` (the default) keeps
    #: every query cold; attach one to let overlapping queries skip page
    #: reads.  Cold-run behaviour — simulated clock, emitted contents and
    #: order — is bit-identical with or without a cache attached.
    sample_cache: SampleCache | None = None
    #: Per-query memo of Combine's covering sets (required intervals per
    #: section level, as list/set/count views).  Pure functions of
    #: (geometry, query), shared read-only across streams; bounded by
    #: :class:`~repro.acetree.query.SampleStream`.
    _overlap_memo: dict = dcfield(default_factory=dict, repr=False)  # repro: shared[owner=serve.scheduler] per-tree memo, written only at stream creation inside a scheduler quantum

    @property
    def disk(self) -> SimulatedDisk:
        return self.leaf_store.disk

    @property
    def height(self) -> int:
        return self.geometry.height

    @property
    def dims(self) -> int:
        return self.geometry.dims

    @property
    def num_leaves(self) -> int:
        return self.geometry.num_leaves

    @property
    def num_pages(self) -> int:
        """Disk pages occupied by the tree (leaves + directory)."""
        return self.leaf_store.num_pages

    # -- queries -------------------------------------------------------------

    def query(self, *bounds: tuple[float, float] | None) -> Box:
        """Build a closed range-query box over the indexed attributes.

        One ``(lo, hi)`` pair per key field, in ``key_fields`` order; pass
        ``None`` to leave a dimension unconstrained.  ``tree.query((a, b))``
        is the paper's ``WHERE key BETWEEN a AND b``.
        """
        if len(bounds) != self.dims:
            raise QueryError(
                f"need {self.dims} bound pair(s) for key fields "
                f"{self.key_fields}, got {len(bounds)}"
            )
        sides = []
        for pair, side in zip(bounds, self.geometry.domain.sides):
            if pair is None:
                sides.append(side)
            else:
                lo, hi = pair
                if lo > hi:
                    raise QueryError(f"range lo={lo} exceeds hi={hi}")
                sides.append(Interval.closed(lo, hi))
        return Box(tuple(sides))

    def sample(
        self,
        query: Box,
        seed: int = 0,
        alternate: bool = True,
        lost_leaf_policy: str = "raise",
    ) -> "SampleStream":
        """Open an online random-sample stream over ``query``.

        At every point of the stream's progress, the set of records emitted
        so far is a uniform random sample (without replacement) of the
        records matching the query; run to exhaustion it returns exactly
        the matching set.  ``alternate=False`` disables the Shuttle's
        child-alternation (an ablation knob; correctness is unaffected but
        early sampling rates collapse).  ``lost_leaf_policy="skip"`` lets
        the stream survive persistent leaf-read failures by skipping the
        lost leaf and flagging itself ``degraded`` instead of raising.
        """
        from .query import SampleStream

        return SampleStream(
            self, query, seed=seed, alternate=alternate,
            lost_leaf_policy=lost_leaf_policy,
        )

    def attach_sample_cache(self, cache: SampleCache | None = None) -> SampleCache:
        """Attach (creating if needed) a combinable sample-reuse cache.

        Subsequent :meth:`sample` streams consult the cache before
        charging the disk and file freshly-read section cells into it;
        repeated or overlapping range queries then skip page reads for
        every leaf whose cells are still resident.  Returns the attached
        cache (so callers can read ``cache.stats``).
        """
        if cache is None:
            cache = SampleCache()
        self.sample_cache = cache
        return cache

    def detach_sample_cache(self) -> None:
        """Detach the sample cache; later streams run fully cold again."""
        self.sample_cache = None

    def key_of(self, record: Sequence) -> tuple:
        """Extract the indexed key tuple from a record."""
        return self.schema.keys_getter(self.key_fields)(record)

    # -- statistics ------------------------------------------------------------

    def estimate_count(self, query: Box) -> float:
        """Estimated number of records matching ``query`` (from node counts)."""
        return self.geometry.estimate_count(query)

    def selectivity(self, query: Box) -> float:
        """Estimated fraction of the relation matching ``query``."""
        if self.num_records == 0:
            return 0.0
        return self.estimate_count(query) / self.num_records

    def internal_node(self, level: int, index: int) -> InternalNodeView:
        """The paper-shaped view of internal node ``I_{level,index+1}``."""
        return InternalNodeView.from_geometry(self.geometry, level, index)

    def free(self) -> None:
        """Release the tree's disk pages."""
        self.leaf_store.free()
