"""Bulk construction of the ACE Tree (paper Section V).

Construction has two phases, each an external sort:

* **Phase 1** sorts the relation on the key attribute and derives the split
  key of every internal node from medians of the sorted order (Figure 7).
  For the 1-D tree this is done exactly as in the paper: one external sort,
  then the medians are picked up by rank with a single skip-sequential pass
  over the sorted file.  For the k-d tree (Section VII) the medians of each
  level are medians *of the partition produced by the previous levels*, so a
  single sort cannot produce them; we project the (tiny) key columns into
  memory during one sequential scan and compute the recursive medians there
  — a documented substitution that charges the scan but not h-1 re-sorts.

* **Phase 2** decorates every record with a uniformly random section number
  ``s`` in ``1..h`` and a leaf number drawn uniformly among the
  ``arity^(h-s)`` leaves below the record's level-``s`` ancestor (Figure 9),
  then sorts by (leaf, section).  The decoration is pipelined into the
  sort's run generation and the leaf nodes are built directly from the
  final merge, so the phase is two read/write passes, as in the paper.

The arity parameter generalizes the paper's binary tree to the k-ary
variant discussed (and argued against) in Section III.D; for ``arity > 2``
each internal node gets ``arity - 1`` equi-depth quantile boundaries
instead of a single median.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..core.errors import IndexBuildError
from ..core.intervals import Box
from ..core.records import Field as SchemaField
from ..core.records import Record, Schema
from ..core.rng import derive_random
from ..obs.tracer import TRACER
from ..storage.disk import DiskStats
from ..storage.external_sort import external_sort, external_sort_to_sink
from ..storage.heapfile import HeapFile
from .analysis import expected_section_size
from .geometry import TreeGeometry, choose_height
from .storage import LeafStore, LeafStoreWriter
from .tree import AceTree

__all__ = ["AceBuildParams", "AceBuildReport", "build_ace_tree"]


@dataclass(frozen=True)
class AceBuildParams:
    """Knobs for ACE Tree construction.

    Attributes:
        key_fields: indexed attribute name(s); one name gives the 1-D tree,
            several give the k-d tree with the split axis cycling in the
            order listed.
        height: number of sections per leaf (and tree height).  ``None``
            sizes the tree so an expected leaf fits one disk page, following
            the paper's guidance.
        target_leaf_fill: fraction of a page the expected leaf should use
            when ``height`` is auto-chosen.
        memory_pages: sort memory for both external sorts.
        seed: seed for the section/leaf assignment randomness.
        arity: internal-node fan-out; 2 is the paper's design, larger
            values build the Section III.D k-ary variant (slower fast-first
            sampling; kept for the ablation).
    """

    key_fields: tuple[str, ...]
    height: int | None = None
    target_leaf_fill: float = 0.7
    memory_pages: int = 64
    seed: int = 0
    arity: int = 2

    def __post_init__(self) -> None:
        if isinstance(self.key_fields, str):
            object.__setattr__(self, "key_fields", (self.key_fields,))
        if not self.key_fields:
            raise IndexBuildError("need at least one key field")
        if self.arity < 2:
            raise IndexBuildError(f"arity must be >= 2, got {self.arity}")


@dataclass
class AceBuildReport:
    """What construction did, for tests, docs, and benchmarks."""

    height: int = 0
    num_leaves: int = 0
    num_records: int = 0
    mean_section_size: float = 0.0
    build_seconds: float = 0.0
    io: DiskStats = field(default_factory=DiskStats)


def build_ace_tree(source: HeapFile, params: AceBuildParams) -> AceTree:
    """Bulk-build an ACE Tree over ``source`` on the same simulated disk.

    The source heap file is left intact; the tree occupies new pages.
    """
    disk = source.disk
    if source.num_records == 0:
        raise IndexBuildError("cannot build an ACE Tree over an empty relation")
    start_stats = disk.stats.snapshot()
    start_clock = disk.clock

    dims = len(params.key_fields)
    arity = params.arity
    height = params.height
    if height is None:
        height = choose_height(
            source.num_records,
            source.schema.record_size,
            disk.page_size,
            target_fill=params.target_leaf_fill,
            arity=arity,
        )
    if height < 2:
        raise IndexBuildError(f"height must be >= 2, got {height}")
    if dims > height - 1:
        raise IndexBuildError(
            f"{dims}-d keys need height >= {dims + 1}, got {height}"
        )

    key_of = source.schema.keys_getter(params.key_fields)

    # ---- Phase 1: split keys -------------------------------------------
    with TRACER.span(
        "ace_build.phase1", disk=disk, records=source.num_records, height=height
    ):
        if dims == 1:
            # A scalar sort key orders records identically to the 1-tuple
            # key ((a,) < (b,) iff a < b); declaring it as ``key_field``
            # lets the sort pull keys straight from packed pages.
            scalar_key = source.schema.key_getter(params.key_fields[0])
            phase1_sorted = external_sort(
                source,
                memory_pages=params.memory_pages,
                name="ace.phase1",
                key_field=params.key_fields[0],
            )
            with TRACER.span("ace_build.split_keys", disk=disk):
                domain, splits = _splits_by_rank(
                    phase1_sorted, scalar_key, height, arity
                )
            phase2_input = phase1_sorted
            free_phase2_input = True
        else:
            with TRACER.span("ace_build.split_keys", disk=disk):
                domain, splits = _splits_in_memory(
                    source, key_of, height, dims, arity
                )
            phase2_input = source
            free_phase2_input = False

    geometry = TreeGeometry(domain, splits, arity=arity)

    # ---- Phase 2: random section / leaf assignment + reorganization ----
    num_leaves = geometry.num_leaves
    cell_counts = [0] * num_leaves  # tallied by per-record decorate
    cell_hist = np.zeros(num_leaves, dtype=np.int64)  # tallied by decorate_view
    assign_rng = derive_random(params.seed, "ace-assign")
    getrandbits = assign_rng.getrandbits
    if dims == 1:
        # Specialized descent: bare key in, plain comparisons down the tree.
        locate_scalar = geometry.scalar_leaf_locator()
        key_index = source.schema.field_index(params.key_fields[0])
        cell_of = lambda record: locate_scalar(record[key_index])  # noqa: E731
    else:
        locate_leaf = geometry.leaf_locator()
        cell_of = lambda record: locate_leaf(key_of(record))  # noqa: E731
    slots_per_section = [arity ** (height - s) for s in range(height + 1)]
    # Rejection-sampling bit widths for the two uniform draws below.  The
    # inlined loops draw exactly the bits Random._randbelow would, so the
    # random stream — and with it every figure — is unchanged; they only
    # drop the randint -> randrange -> _randbelow call-frame tower from a
    # path that runs once per record.
    section_bits = height.bit_length()
    slot_bits = [slots.bit_length() for slots in slots_per_section]

    def decorate(record: Record) -> Record:
        cell = cell_of(record)
        cell_counts[cell] += 1
        # section = assign_rng.randint(1, height)
        r = getrandbits(section_bits)
        while r >= height:
            r = getrandbits(section_bits)
        section = 1 + r
        slots = slots_per_section[section]
        if slots > 1:
            # leaf slot = assign_rng.randrange(slots)
            bits = slot_bits[section]
            s = getrandbits(bits)
            while s >= slots:
                s = getrandbits(bits)
            leaf = (cell // slots) * slots + s
        else:
            leaf = cell
        return (leaf, section) + record

    decorated_schema = Schema(
        [
            SchemaField(source.schema.fresh_field_name("leaf_"), "i8"),
            SchemaField(source.schema.fresh_field_name("section_"), "i8"),
        ]
        + list(source.schema.fields)
    )

    # Sort key: (leaf, section) packed into one int.  Sections run 1..height
    # < height + 1, so ``leaf * (height + 1) + section`` orders identically
    # to the tuple key while giving the sort machine-word keys.
    section_span = height + 1

    # Page-batched decorate for the sort's fast path: leaf cells located
    # for a whole page at once, rows moved as bytes (a decorated row is the
    # two packed i8 prefixes followed by the original packed record).  The
    # per-record RNG loop is kept verbatim so the random stream — and every
    # figure — is unchanged.
    decorate_view = None
    if dims == 1:
        key_kind = source.schema.fields[key_index].kind
        array_locate = geometry.array_leaf_locator(key_kind)
        if array_locate is not None:
            src_dtype = source.schema.numpy_dtype()
            key_name = params.key_fields[0]
            rest_dtype = np.dtype(f"V{source.schema.record_size}")
            dec_dtype = np.dtype(
                [("leaf", "<i8"), ("section", "<i8"), ("rest", rest_dtype)]
            )

            def decorate_view(view):
                nonlocal cell_hist
                count = view.count
                keys_col = np.frombuffer(
                    view.payload, dtype=src_dtype, count=count
                )[key_name]
                cells = array_locate(keys_col)
                cell_hist += np.bincount(cells, minlength=num_leaves)
                leafs: list[int] = []
                sections: list[int] = []
                add_leaf = leafs.append
                add_section = sections.append
                for cell in cells.tolist():
                    r = getrandbits(section_bits)
                    while r >= height:
                        r = getrandbits(section_bits)
                    section = 1 + r
                    slots = slots_per_section[section]
                    if slots > 1:
                        bits = slot_bits[section]
                        s = getrandbits(bits)
                        while s >= slots:
                            s = getrandbits(bits)
                        add_leaf((cell // slots) * slots + s)
                    else:
                        add_leaf(cell)
                    add_section(section)
                dec = np.empty(count, dtype=dec_dtype)
                dec["leaf"] = leafs
                dec["section"] = sections
                dec["rest"] = np.frombuffer(
                    view.payload, dtype=rest_dtype, count=count
                )
                return dec.tobytes(), dec["leaf"] * section_span + dec["section"]

    def build_leaves(stream: Iterator[Record]) -> LeafStore:
        writer = LeafStoreWriter(disk, source.schema, height, num_leaves)
        append_leaf = writer.append_leaf
        current = -1
        sections: list[list[Record]] = []
        for decorated in stream:
            leaf = decorated[0]
            if leaf != current:
                if current >= 0:
                    append_leaf(current, sections)
                current = leaf
                sections = [[] for _ in range(height)]
            sections[decorated[1] - 1].append(decorated[2:])
        if current >= 0:
            append_leaf(current, sections)
        return writer.finish()

    with TRACER.span(
        "ace_build.phase2", disk=disk, records=source.num_records,
        leaves=num_leaves,
    ):
        leaf_store = external_sort_to_sink(
            phase2_input,
            key=lambda d: d[0] * section_span + d[1],
            sink=build_leaves,
            memory_pages=params.memory_pages,
            free_source=free_phase2_input,
            transform=decorate,
            output_schema=decorated_schema,
            view_transform=decorate_view,
        )
    geometry.attach_counts(
        [c + int(h) for c, h in zip(cell_counts, cell_hist)]
    )

    report = AceBuildReport(
        height=height,
        num_leaves=num_leaves,
        num_records=source.num_records,
        mean_section_size=expected_section_size(
            source.num_records, height, arity=arity
        ),
        build_seconds=disk.clock - start_clock,
        io=disk.stats.snapshot() - start_stats,
    )
    return AceTree(
        geometry=geometry,
        leaf_store=leaf_store,
        schema=source.schema,
        key_fields=params.key_fields,
        num_records=source.num_records,
        build_report=report,
    )


# ---------------------------------------------------------------------------
# Phase 1 helpers
# ---------------------------------------------------------------------------


def _splits_by_rank(
    sorted_file: HeapFile, key_of, height: int, arity: int = 2
) -> tuple[Box, list[list[tuple[float, ...]]]]:
    """Quantile boundaries by rank from a key-sorted file (1-D Phase 1).

    ``key_of`` maps a record to its scalar key value.

    The ``i``-th boundary (1-based) of node ``j`` at level ``s`` is the key
    at rank ``(j * arity + i) * n // arity^s`` of the sorted order — the
    equi-depth quantiles of that node's data span (medians for arity 2,
    exactly Figure 7).  All required ranks are fetched in one
    skip-sequential pass.
    """
    n = sorted_file.num_records
    wanted: set[int] = {0, n - 1}  # domain bounds
    for level in range(1, height):
        for j in range(arity ** (level - 1)):
            for i in range(1, arity):
                wanted.add(((j * arity + i) * n) // arity ** level)

    per_page = sorted_file.records_per_page
    keys_at_rank: dict[int, float] = {}
    needed_pages = sorted({rank // per_page for rank in wanted})
    for page_index in needed_pages:
        records = sorted_file.read_page_records(page_index)
        base = page_index * per_page
        for rank in wanted:
            if base <= rank < base + len(records):
                keys_at_rank[rank] = key_of(records[rank - base])

    lo, hi = keys_at_rank[0], keys_at_rank[n - 1]
    domain = Box.closed([lo], [hi])

    splits: list[list[tuple[float, ...]]] = []
    for level in range(1, height):
        level_splits: list[tuple[float, ...]] = []
        for j in range(arity ** (level - 1)):
            boundaries = []
            for i in range(1, arity):
                rank = ((j * arity + i) * n) // arity ** level
                boundaries.append(keys_at_rank[rank])
            level_splits.append(tuple(boundaries))
        splits.append(level_splits)
    return domain, splits


def _splits_in_memory(
    source: HeapFile, key_of, height: int, dims: int, arity: int = 2
) -> tuple[Box, list[list[tuple[float, ...]]]]:
    """Recursive k-d quantiles over an in-memory key projection (Section VII).

    One sequential scan projects the key columns; each level then splits
    every partition at the equi-depth quantiles of the level's axis,
    exactly mirroring the paper's k-d construction ("for each of the
    resulting partitions of the dataset, we calculate the median of all
    the a2 values").
    """
    keys = np.empty((source.num_records, dims), dtype=np.float64)
    row = 0
    for record in source.scan():
        keys[row] = key_of(record)
        row += 1

    domain = Box.closed(keys.min(axis=0).tolist(), keys.max(axis=0).tolist())
    splits: list[list[tuple[float, ...]]] = []
    partitions: list[tuple[np.ndarray, Box]] = [(keys, domain)]
    for level in range(1, height):
        axis = (level - 1) % dims
        source.disk.charge_records(sum(len(part) for part, _ in partitions))
        level_splits: list[tuple[float, ...]] = []
        next_partitions: list[tuple[np.ndarray, Box]] = []
        for part, box in partitions:
            side = box.sides[axis]
            if len(part) == 0:
                # Empty partition: split anywhere valid; even spacing keeps
                # the geometry non-degenerate.
                if math.isfinite(side.width):
                    boundaries = tuple(
                        side.lo + side.width * i / arity for i in range(1, arity)
                    )
                else:
                    boundaries = tuple(side.lo for _ in range(1, arity))
            else:
                vals = np.sort(part[:, axis])
                boundaries = tuple(
                    float(
                        min(max(vals[(len(vals) * i) // arity], side.lo), side.hi)
                    )
                    for i in range(1, arity)
                )
            boundaries = tuple(
                max(boundaries[:i + 1]) for i in range(len(boundaries))
            )  # enforce ascending after clamping
            level_splits.append(boundaries)
            remainder_box = box
            previous = side.lo
            if len(part):
                vals_col = part[:, axis]
            for i, boundary in enumerate(boundaries):
                low_box, remainder_box = remainder_box.split_at(axis, boundary)
                if len(part):
                    mask = (vals_col >= previous) & (vals_col < boundary)
                    next_partitions.append((part[mask], low_box))
                else:
                    next_partitions.append((part, low_box))
                previous = boundary
            if len(part):
                mask = vals_col >= previous
                next_partitions.append((part[mask], remainder_box))
            else:
                next_partitions.append((part, remainder_box))
        splits.append(level_splits)
        partitions = next_partitions
    return domain, splits


def sections_of(
    leaf_records: Sequence[Record], height: int
) -> list[list[Record]]:  # pragma: no cover - helper for tests
    """Split decorated records of one leaf into per-section lists."""
    sections: list[list[Record]] = [[] for _ in range(height)]
    for record in leaf_records:
        sections[record[1] - 1].append(record[2:])
    return sections
