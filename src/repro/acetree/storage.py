"""On-disk layout of ACE Tree leaves.

The paper's Section V.F weighs two schemes for the randomly-sized leaves and
picks **variable-sized leaf nodes with variable-sized sections**: leaves are
laid end to end on disk and may span page boundaries, because most of the
cost of a leaf access is the seek, not the extra page of transfer.  This
module implements exactly that scheme:

* a *data area* of contiguous pages holding the serialized leaves
  back to back, in leaf-index order;
* a *directory* (byte offset of every leaf) serialized after the data area
  and also kept in memory, standing in for the paper's internal-node pages
  packed into disk-page-sized units.

Reading leaf ``i`` reads the page span covering its byte range: one random
access for the first page, sequential accesses for the rest — the access
pattern the paper's cost argument relies on.
"""

from __future__ import annotations

import struct
from typing import Iterator

import itertools

from ..core.errors import SerializationError, StorageError
from ..core.records import Record, Schema
from ..obs.tracer import TRACER
from ..storage.buffer import DecodeMemo
from ..storage.disk import SimulatedDisk
from ..storage.recovery import read_page_resilient, touch_page_resilient
from .nodes import LeafNode, LeafView

__all__ = ["LeafStore", "LeafStoreWriter"]

#: Monotonic identity for live leaf stores; scopes sample-cache keys so a
#: freed/rebuilt store can never serve another tree's cached cells.
_CACHE_TOKENS = itertools.count(1)  # repro: shared[owner=serve.scheduler] token source; stores are only created during build/setup, inside the owner's quanta under serve

_LEAF_HEADER = struct.Struct("<IH")  # leaf index, section count
_SECTION_COUNT = struct.Struct("<I")
_DIR_ENTRY = struct.Struct("<Q")

#: Pages per allocation extent while streaming leaves out.
_EXTENT_PAGES = 256

#: Decoded leaves memoized per store.  Shuttle stabs revisit the same hot
#: leaves across queries; memoizing the (immutable) LeafNode skips the
#: struct decode while the I/O is still charged in full.
_LEAF_MEMO_LEAVES = 4096


def _serialize_leaf(schema: Schema, leaf_index: int, sections: list[list[Record]]) -> bytes:
    parts = [_LEAF_HEADER.pack(leaf_index, len(sections))]
    for section in sections:
        parts.append(_SECTION_COUNT.pack(len(section)))
    for section in sections:
        parts.append(schema.pack_many(section))
    return b"".join(parts)


class LeafStoreWriter:
    """Streams serialized leaves onto contiguous disk pages.

    Used by construction Phase 2: leaves must be appended in increasing
    leaf-index order; missing indexes become empty leaves (possible in tiny
    or skewed relations).
    """

    def __init__(
        self, disk: SimulatedDisk, schema: Schema, height: int, num_leaves: int
    ) -> None:
        self.disk = disk
        self.schema = schema
        self.height = height
        self.num_leaves = num_leaves
        self._offsets: list[int] = [0]
        self._buffer = bytearray()
        self._page_ids: list[int] = []
        self._extents: list[tuple[int, int]] = []
        self._extent_used = 0
        self._next_leaf = 0
        self._finished = False

    def append_leaf(self, leaf_index: int, sections: list[list[Record]]) -> None:
        """Serialize and append one leaf; fills skipped indexes with empties."""
        if self._finished:
            raise StorageError("leaf store writer already finished")
        if leaf_index < self._next_leaf or leaf_index >= self.num_leaves:
            raise StorageError(
                f"leaf {leaf_index} out of order (next expected {self._next_leaf})"
            )
        if len(sections) != self.height:
            raise SerializationError(
                f"leaf {leaf_index} has {len(sections)} sections, need {self.height}"
            )
        while self._next_leaf < leaf_index:
            self._append_serialized(
                _serialize_leaf(self.schema, self._next_leaf, [[]] * self.height)
            )
            self._next_leaf += 1
        self._append_serialized(_serialize_leaf(self.schema, leaf_index, sections))
        self.disk.charge_records(sum(len(s) for s in sections))
        self._next_leaf += 1

    def finish(self) -> "LeafStore":
        """Flush data pages, write the directory, return the readable store."""
        if self._finished:
            raise StorageError("leaf store writer already finished")
        while self._next_leaf < self.num_leaves:
            self._append_serialized(
                _serialize_leaf(self.schema, self._next_leaf, [[]] * self.height)
            )
            self._next_leaf += 1
        self._flush_full_pages(final=True)

        directory = b"".join(_DIR_ENTRY.pack(off) for off in self._offsets)
        dir_page_ids = []
        page_size = self.disk.page_size
        for start in range(0, len(directory), page_size):
            pid = self._allocate_page()
            self.disk.write_page(pid, directory[start:start + page_size])
            dir_page_ids.append(pid)
        self._finished = True
        return LeafStore(
            disk=self.disk,
            schema=self.schema,
            height=self.height,
            data_page_ids=self._page_ids,
            dir_page_ids=dir_page_ids,
            offsets=self._offsets,
            extents=self._extents,
        )

    # -- internals ---------------------------------------------------------

    def _append_serialized(self, blob: bytes) -> None:
        self._buffer.extend(blob)
        self._offsets.append(self._offsets[-1] + len(blob))
        self._flush_full_pages(final=False)

    def _flush_full_pages(self, final: bool) -> None:
        page_size = self.disk.page_size
        while len(self._buffer) >= page_size:
            pid = self._allocate_page()
            self.disk.write_page(pid, bytes(self._buffer[:page_size]))
            self._page_ids.append(pid)
            del self._buffer[:page_size]
        if final and self._buffer:
            pid = self._allocate_page()
            self.disk.write_page(pid, bytes(self._buffer))
            self._page_ids.append(pid)
            self._buffer.clear()

    def _allocate_page(self) -> int:
        if not self._extents or self._extent_used == self._extents[-1][1]:
            start = self.disk.allocate(_EXTENT_PAGES)
            self._extents.append((start, _EXTENT_PAGES))
            self._extent_used = 0
        start, _count = self._extents[-1]
        pid = start + self._extent_used
        self._extent_used += 1
        return pid


class LeafStore:
    """Read access to the serialized leaves of one ACE Tree."""

    def __init__(
        self,
        disk: SimulatedDisk,
        schema: Schema,
        height: int,
        data_page_ids: list[int],
        dir_page_ids: list[int],
        offsets: list[int],
        extents: list[tuple[int, int]] | None = None,
    ) -> None:
        self.disk = disk
        self.schema = schema
        self.height = height
        self._data_page_ids = data_page_ids
        self._dir_page_ids = dir_page_ids
        self._offsets = offsets
        self._extents = extents
        self._memo = DecodeMemo(_LEAF_MEMO_LEAVES)
        #: Opaque identity for cache keys (see module docstring of
        #: :mod:`repro.storage.sample_cache`); bumped by :meth:`free`.
        self.cache_token = next(_CACHE_TOKENS)

    @property
    def num_leaves(self) -> int:
        return len(self._offsets) - 1

    @property
    def num_data_pages(self) -> int:
        return len(self._data_page_ids)

    @property
    def num_pages(self) -> int:
        """Data pages plus directory pages."""
        return len(self._data_page_ids) + len(self._dir_page_ids)

    @property
    def total_bytes(self) -> int:
        return self.num_pages * self.disk.page_size

    def leaf_byte_size(self, leaf_index: int) -> int:
        """Serialized size of one leaf in bytes."""
        self._check_leaf(leaf_index)
        return self._offsets[leaf_index + 1] - self._offsets[leaf_index]

    def leaf_page_span(self, leaf_index: int) -> tuple[int, int]:
        """(first page position, page count) of the leaf's byte range."""
        self._check_leaf(leaf_index)
        start = self._offsets[leaf_index]
        end = self._offsets[leaf_index + 1]
        page_size = self.disk.page_size
        first = start // page_size
        last = max(first, (end - 1) // page_size) if end > start else first
        return first, last - first + 1

    def read_leaf_view(self, leaf_index: int) -> LeafView:
        """Fetch one leaf as a lazy columnar :class:`LeafView`.

        Same random I/O + sequential spill pages and the same per-record
        CPU charge as the historical eager read — only the per-record
        Python decode is deferred (header, section counts, and payload
        length are still validated here, so corruption surfaces at read
        time exactly as before).  Decoded views are memoized: a memo hit
        performs the identical timed page reads and per-record CPU charge
        as a cold read — the simulated cost never depends on the memo —
        and only skips the parse (the view's payload is immutable, so
        sharing is safe).
        """
        self._check_leaf(leaf_index)
        start = self._offsets[leaf_index]
        end = self._offsets[leaf_index + 1]
        page_size = self.disk.page_size
        # leaf_page_span(), inlined to avoid re-validating the index.
        first = start // page_size
        last = max(first, (end - 1) // page_size) if end > start else first
        span = last - first + 1
        # Every simulated page read below is attributed to this counter;
        # check_sample verifies the attribution balances (cost conservation).
        TRACER.count("leaf_store.pages_read", span)
        with TRACER.span("leaf_store.read_leaf", disk=self.disk, detail=True) as sp:
            if sp is not None:
                sp.attrs["leaf"] = leaf_index
                sp.attrs["pages"] = span
            cached = self._memo.get(leaf_index)
            if cached is not None:
                disk = self.disk
                if disk.can_fault:
                    ids = self._data_page_ids
                    for i in range(span):
                        touch_page_resilient(disk, ids[first + i])
                else:
                    disk.touch_pages(self._data_page_ids[first:first + span])
                disk.charge_records(cached.num_records)
                return cached
            chunks = [
                read_page_resilient(self.disk, self._data_page_ids[first + i])
                for i in range(span)
            ]
            blob = b"".join(chunks)
            local = start - first * page_size
            view = self._parse_leaf_view(
                blob[local:local + (end - start)], leaf_index
            )
            self._memo.put(leaf_index, view)
            return view

    def read_leaf(self, leaf_index: int) -> LeafNode:
        """Fetch one leaf fully decoded (the eager twin of the view read)."""
        return self.read_leaf_view(leaf_index).to_leaf_node()

    def iter_leaves(self) -> Iterator[LeafNode]:
        """All leaves in index order (sequential full-store read)."""
        for leaf_index in range(self.num_leaves):
            yield self.read_leaf(leaf_index)

    def _parse_leaf_view(self, blob: bytes, expected_index: int) -> LeafView:
        try:
            index, count = _LEAF_HEADER.unpack_from(blob, 0)
        except struct.error as exc:
            raise SerializationError(f"corrupt leaf {expected_index}: {exc}") from exc
        if index != expected_index or count != self.height:
            raise SerializationError(
                f"corrupt leaf header: index {index} (expected {expected_index}), "
                f"sections {count} (expected {self.height})"
            )
        pos = _LEAF_HEADER.size
        counts = []
        try:
            for _ in range(count):
                (n,) = _SECTION_COUNT.unpack_from(blob, pos)
                counts.append(n)
                pos += _SECTION_COUNT.size
        except struct.error as exc:
            raise SerializationError(f"corrupt leaf {expected_index}: {exc}") from exc
        total = sum(counts)
        need = total * self.schema.record_size
        if len(blob) - pos < need:
            raise SerializationError(
                f"corrupt leaf {expected_index}: need {need} payload bytes "
                f"for {total} records, have {len(blob) - pos}"
            )
        self.disk.charge_records(total)
        return LeafView(
            index=expected_index,
            schema=self.schema,
            payload=memoryview(blob)[pos:pos + need],
            counts=tuple(counts),
            byte_size=len(blob),
        )

    def free(self) -> None:
        """Release all data and directory pages (store becomes unusable)."""
        if self._extents is not None:
            for start, count in self._extents:
                self.disk.free(start, count)
        else:
            for pid in self._data_page_ids + self._dir_page_ids:
                self.disk.free(pid)
        self._data_page_ids = []
        self._dir_page_ids = []
        self._offsets = [0]
        self._extents = None
        self._memo.clear()
        # A freed store must never satisfy a sample-cache lookup again.
        self.cache_token = next(_CACHE_TOKENS)

    def _check_leaf(self, leaf_index: int) -> None:
        if not 0 <= leaf_index < self.num_leaves:
            raise StorageError(
                f"leaf {leaf_index} out of range 0..{self.num_leaves - 1}"
            )
