"""The ACE Tree query algorithm (paper Section VI): Shuttle + Combine.

The stream retrieves leaves via repeated root-to-leaf *stabs*.  At each
internal node a stab prefers, in order:

1. a child that is not yet exhausted over one that is;
2. a child whose box overlaps the query over one that does not;
3. otherwise the child *not* taken the last time this node was traversed
   (the per-node toggle bit of Figure 10).

Rule 3 is what fetches maximally *disparate* leaves early, so that their
same-index sections tile the query range and become combinable quickly.
Rule 2 makes the traversal greedy on query-relevant leaves; once those are
exhausted the remaining leaves are drained too (shallow sections of every
leaf sample the full domain, so records matching the query can live
anywhere — a completion run must touch every leaf).

Combine (Algorithm 4) works per section index ``s``.  The level-``s`` node
boxes tile the domain; call the ones overlapping the query the *required
intervals*.  A retrieved section is a Bernoulli sample of its own interval,
so it can only be emitted once one section-``s`` cell from **every**
required interval is available — their union is then a Bernoulli sample of
a superset of the query range, and filtering it by the query yields a
uniform random sample of the matching records.  Cells that cannot be
combined yet wait in ``buckets`` (whose occupancy is exactly the paper's
Figure 15 measurement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..core.errors import QueryError, SerializationError, StorageError
from ..core.intervals import Box
from ..core.records import Record
from ..core.rng import derive_random
from ..obs.metrics import METRICS
from ..obs.tracer import TRACER

if TYPE_CHECKING:  # pragma: no cover
    from .tree import AceTree

__all__ = ["SampleBatch", "SampleStream"]

#: Sample-count threshold for the time-to-first-k histogram (how fast the
#: stream delivers a usable first sample, on the simulated clock).
_FIRST_K = 100
_TTFK_BOUNDS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                1.0, 2.5, 5.0)
_STAB_DEPTH_BOUNDS = (1, 2, 3, 4, 6, 8, 12, 16)


@dataclass(frozen=True, slots=True)
class SampleBatch:
    """Records that became emittable after one stab (one leaf read).

    Attributes:
        records: newly emitted sample records, in randomized order.  The
            concatenation of all batches so far is a uniform random sample
            of the records matching the query.
        clock: simulated time at which this batch became available.
        leaves_read: total leaves retrieved so far.
        buffered_records: matching records currently parked in the combine
            buckets (the paper's Figure 15 metric).
        is_final_flush: True for the last batch, which drains the buckets
            once every leaf has been read (at that point the full matching
            population has been seen, so draining preserves correctness).
    """

    records: tuple[Record, ...]
    clock: float
    leaves_read: int
    buffered_records: int
    is_final_flush: bool = False


@dataclass
class StreamStats:
    """Running counters exposed by :class:`SampleStream`."""

    leaves_read: int = 0
    records_emitted: int = 0
    buffered_records: int = 0
    stabs: int = 0
    lost_leaves: int = 0


class SampleStream:
    """Online random-sample iterator over one range query.

    Iterating yields :class:`SampleBatch` objects; :meth:`records` flattens
    them and :meth:`take` collects a fixed-size sample.  The stream is
    exhausted when every leaf has been read and the buckets drained — at
    that point the union of all emitted batches is exactly the set of
    records matching the query.
    """

    def __init__(
        self,
        tree: "AceTree",
        query: Box,
        seed: int = 0,
        alternate: bool = True,
        lost_leaf_policy: str = "raise",
    ) -> None:
        if query.dims != tree.dims:
            raise QueryError(
                f"query has {query.dims} dims, tree indexes {tree.dims}"
            )
        if lost_leaf_policy not in ("raise", "skip"):
            raise QueryError(
                f"unknown lost_leaf_policy {lost_leaf_policy!r} "
                "(expected 'raise' or 'skip')"
            )
        self.tree = tree
        self.query = query
        #: Figure 10's toggle-bit behaviour.  Disabling it (always descend
        #: left among equally-eligible children) is an *ablation*: stabs
        #: stop fetching disparate leaves, combine-sets starve, and the
        #: fast-first property degrades — see benchmarks/test_ablations.py.
        self.alternate = alternate
        geometry = tree.geometry
        self._geometry = geometry
        self._store = tree.leaf_store
        self._height = geometry.height
        self._key_of = tree.schema.keys_getter(tree.key_fields)
        self._filter = self._make_filter(tree, query)
        self._rng = derive_random(seed, "ace-stream")

        # Required intervals per section level: the level-s node indexes
        # whose boxes overlap the query (Combine's covering sets).
        self._required: list[list[int]] = [
            geometry.overlapping_nodes(s, query) for s in range(1, self._height + 1)
        ]
        # buckets[s-1][j] = FIFO of arrived section-s cells for interval j.
        self._buckets: list[dict[int, list[list[Record]]]] = [
            {} for _ in range(self._height)
        ]
        self._arity = geometry.arity
        self._done: set[tuple[int, int]] = set()
        self._next_child: dict[tuple[int, int], int] = {}
        #: What to do when a leaf read fails after retries: ``"raise"``
        #: propagates the storage error (the default — correctness first);
        #: ``"skip"`` marks the leaf done, flags the stream degraded, and
        #: keeps sampling from the surviving leaves.
        self.lost_leaf_policy = lost_leaf_policy
        #: Leaf indexes lost to storage failures (``"skip"`` policy only).
        self.lost_leaves: list[int] = []
        self.stats = StreamStats()
        self._start_clock = tree.disk.clock
        self._first_k_recorded = False
        # Degenerate query: no overlap with the domain at all.
        self._exhausted = not geometry.domain.overlaps(query)

    @staticmethod
    def _make_filter(tree: "AceTree", query: Box):
        """A ``records -> matching list`` predicate specialized per query.

        Same semantics as filtering each record's key point through
        ``query.contains_point`` (every interval is half-open), with the
        per-record call tower flattened for the 1-D common case.
        """
        if len(tree.key_fields) == 1:
            get = tree.schema.key_getter(tree.key_fields[0])
            lo, hi = query.sides[0].lo, query.sides[0].hi
            return lambda records: [r for r in records if lo <= get(r) < hi]
        key_of = tree.schema.keys_getter(tree.key_fields)
        contains = query.contains_point
        return lambda records: [r for r in records if contains(key_of(r))]

    # -- iteration -----------------------------------------------------------

    def __iter__(self) -> Iterator[SampleBatch]:
        return self

    def __next__(self) -> SampleBatch:
        if self._exhausted:
            raise StopIteration
        if (1, 0) in self._done:
            return self._final_flush()
        while True:
            with TRACER.span("ace_query.stab", disk=self.tree.disk) as sp:
                leaf_index = self._stab()
                try:
                    leaf = self._store.read_leaf(leaf_index)
                except (StorageError, SerializationError):
                    # Retries are exhausted by the time the error reaches
                    # the Shuttle, so the leaf is gone for good: either
                    # crash the query or sample on without it.
                    if self.lost_leaf_policy != "skip":
                        raise
                    self._note_lost_leaf(leaf_index, sp)
                    leaf = None
                else:
                    self.stats.leaves_read += 1
                    with TRACER.span("ace_query.combine", detail=True) as combine_sp:
                        emitted = self._process_leaf(leaf_index, leaf)
                        if combine_sp is not None:
                            combine_sp.attrs["emitted"] = len(emitted)
                            combine_sp.attrs["buffered"] = self.stats.buffered_records
                    if sp is not None:
                        sp.attrs["leaf"] = leaf_index
                        sp.attrs["emitted"] = len(emitted)
                        sp.attrs["buffered"] = self.stats.buffered_records
            if leaf is not None:
                break
            if (1, 0) in self._done:
                # Every remaining leaf was lost; drain what combined.
                return self._final_flush()
        TRACER.count("ace_query.leaves_read")
        self._rng.shuffle(emitted)
        self.stats.records_emitted += len(emitted)
        if TRACER.enabled:
            self._record_query_metrics()
        if (1, 0) in self._done and self.stats.buffered_records == 0:
            self._exhausted = True
        return SampleBatch(
            records=tuple(emitted),
            clock=self.tree.disk.clock,
            leaves_read=self.stats.leaves_read,
            buffered_records=self.stats.buffered_records,
        )

    def records(self) -> Iterator[Record]:
        """Flatten the stream into individual sample records."""
        for batch in self:
            yield from batch.records

    def take(self, n: int) -> list[Record]:
        """Collect the first ``n`` sample records (fewer if exhausted)."""
        out: list[Record] = []
        for batch in self:
            out.extend(batch.records)
            if len(out) >= n:
                break
        return out[:n]

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def degraded(self) -> bool:
        """True once any leaf was lost: the emitted stream can no longer be
        trusted to be a uniform sample (see :mod:`repro.obs.quality`, which
        flags monitored degraded streams instead of certifying them)."""
        return self.stats.lost_leaves > 0

    def _note_lost_leaf(self, leaf_index: int, sp) -> None:
        """Record a leaf lost to a storage failure and sample on without it."""
        self._mark_done(leaf_index)
        self.stats.lost_leaves += 1
        self.lost_leaves.append(leaf_index)
        TRACER.count("ace_query.lost_leaves")
        if TRACER.enabled:
            METRICS.counter("query.lost_leaves").inc()
        if sp is not None:
            sp.attrs["lost_leaf"] = leaf_index

    def _record_query_metrics(self) -> None:
        """Per-batch metric updates; only called while tracing is enabled."""
        METRICS.gauge("query.buffered_records").set(self.stats.buffered_records)
        if not self._first_k_recorded and self.stats.records_emitted >= _FIRST_K:
            self._first_k_recorded = True
            METRICS.histogram(
                f"query.time_to_first_{_FIRST_K}_sim_s", _TTFK_BOUNDS
            ).observe(self.tree.disk.clock - self._start_clock)

    def population_estimate(self) -> float:
        """Estimated matching-record count, from internal-node counts."""
        return self.tree.estimate_count(self.query)

    # -- shuttle traversal -----------------------------------------------------

    def _stab(self) -> int:
        """One root-to-leaf traversal; returns the leaf index to read.

        At each internal node: among children that are not exhausted,
        prefer those overlapping the query; break remaining ties
        round-robin (the paper's per-node alternation — a toggle bit for
        the binary tree, a rotating pointer for k-ary trees).
        """
        self.stats.stabs += 1
        # CPU for the descent (internal nodes are memory resident).
        self.tree.disk.charge_records(self._height)
        geometry = self._geometry
        arity = self._arity
        tracing = TRACER.enabled
        level, index = 1, 0
        while level < self._height:
            base = arity * index
            alive = [
                c
                for c in range(arity)
                if (level + 1, base + c) not in self._done
            ]
            if not alive:  # pragma: no cover - parent would be marked done
                raise QueryError("stab reached a fully-done subtree")
            overlapping = [
                c
                for c in alive
                if geometry.node_box(level + 1, base + c).overlaps(self.query)
            ]
            pool = overlapping if overlapping else alive
            if tracing:
                branch = "overlap" if overlapping else "drain"
                METRICS.counter(f"stab.level.{level}.{branch}").inc()
                pruned = len(alive) - len(overlapping)
                if overlapping and pruned:
                    # Children deferred because a query-overlapping sibling
                    # won the descent: the pruned subtrees of this stab.
                    METRICS.counter(f"stab.level.{level}.pruned").inc(pruned)
            if len(pool) == 1 or not self.alternate:
                choice = pool[0]
            else:
                pointer = self._next_child.get((level, index), 0)
                # First pool member at or after the rotating pointer.
                choice = min(pool, key=lambda c: (c - pointer) % arity)
                self._next_child[(level, index)] = (choice + 1) % arity
            level, index = level + 1, base + choice
        if tracing:
            METRICS.histogram("query.stab_depth", _STAB_DEPTH_BOUNDS).observe(
                self._height - 1
            )
        return index

    def _mark_done(self, leaf_index: int) -> None:
        """Mark a leaf done and propagate doneness up the tree."""
        arity = self._arity
        level, index = self._height, leaf_index
        self._done.add((level, index))
        while level > 1:
            parent = index // arity
            base = arity * parent
            siblings_done = all(
                (level, base + c) in self._done for c in range(arity)
            )
            if not siblings_done:
                break
            level, index = level - 1, parent
            self._done.add((level, index))

    # -- combine ---------------------------------------------------------------

    def _process_leaf(self, leaf_index: int, leaf) -> list[Record]:
        """File the leaf's sections into buckets and emit what combines."""
        self._mark_done(leaf_index)
        matching = self._filter
        emitted: list[Record] = []
        for s in range(1, self._height + 1):
            ancestor = leaf_index // self._arity ** (self._height - s)
            cell = matching(leaf.sections[s - 1])
            bucket = self._buckets[s - 1]
            bucket.setdefault(ancestor, []).append(cell)
            self.stats.buffered_records += len(cell)
            emitted.extend(self._drain_level(s))
        return emitted

    def _drain_level(self, s: int) -> list[Record]:
        """Emit combine-sets at section level ``s`` while complete ones exist."""
        bucket = self._buckets[s - 1]
        required = self._required[s - 1]
        out: list[Record] = []
        while all(bucket.get(j) for j in required):
            for j in required:
                cell = bucket[j].pop(0)
                self.stats.buffered_records -= len(cell)
                out.extend(cell)
        return out

    def _final_flush(self) -> SampleBatch:
        """Drain every remaining bucket once all leaves have been read."""
        with TRACER.span("ace_query.final_flush", disk=self.tree.disk, detail=True) as sp:
            leftovers: list[Record] = []
            for bucket in self._buckets:
                for cells in bucket.values():
                    for cell in cells:
                        leftovers.extend(cell)
                bucket.clear()
            self.stats.buffered_records = 0
            self._rng.shuffle(leftovers)
            self.stats.records_emitted += len(leftovers)
            if sp is not None:
                sp.attrs["emitted"] = len(leftovers)
        self._exhausted = True
        return SampleBatch(
            records=tuple(leftovers),
            clock=self.tree.disk.clock,
            leaves_read=self.stats.leaves_read,
            buffered_records=0,
            is_final_flush=True,
        )
