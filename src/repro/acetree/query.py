"""The ACE Tree query algorithm (paper Section VI): Shuttle + Combine.

The stream retrieves leaves via repeated root-to-leaf *stabs*.  At each
internal node a stab prefers, in order:

1. a child that is not yet exhausted over one that is;
2. a child whose box overlaps the query over one that does not;
3. otherwise the child *not* taken the last time this node was traversed
   (the per-node toggle bit of Figure 10).

Rule 3 is what fetches maximally *disparate* leaves early, so that their
same-index sections tile the query range and become combinable quickly.
Rule 2 makes the traversal greedy on query-relevant leaves; once those are
exhausted the remaining leaves are drained too (shallow sections of every
leaf sample the full domain, so records matching the query can live
anywhere — a completion run must touch every leaf).

Combine (Algorithm 4) works per section index ``s``.  The level-``s`` node
boxes tile the domain; call the ones overlapping the query the *required
intervals*.  A retrieved section is a Bernoulli sample of its own interval,
so it can only be emitted once one section-``s`` cell from **every**
required interval is available — their union is then a Bernoulli sample of
a superset of the query range, and filtering it by the query yields a
uniform random sample of the matching records.  Cells that cannot be
combined yet wait in ``buckets`` (whose occupancy is exactly the paper's
Figure 15 measurement).

**Columnar hot path.**  Leaves arrive as lazy
:class:`~repro.acetree.nodes.LeafView` handles; the query filter runs once
per leaf as a vectorized mask over the leaf's key column(s), and Combine
moves whole :class:`Cell` handles (leaf view + row range + match count)
through the buckets instead of Python record lists.  Emitted batches are
likewise lazy: a :class:`SampleBatch` knows its record *count* and its
shuffle permutation, but decodes actual record tuples only when a consumer
reads ``batch.records``.  The emitted record *set* per batch and the
simulated clock are bit-identical to the historical per-record path; the
within-batch order is a uniform random permutation drawn from the stream's
seed-derived generator (:func:`repro.core.rng.derive`), vectorized so the
shuffle costs microseconds instead of a per-record Python loop.  Every
order-sensitive guarantee — determinism given the seed, per-prefix
uniformity, batch contents — is pinned by the unit tests and the testkit
differential oracle.

**Sample reuse.**  When the tree has a
:class:`~repro.storage.sample_cache.SampleCache` attached, the Shuttle
consults it before charging the disk, keyed per section cell by
``(store token, section s, level-s ancestor, leaf)``.  A full-leaf hit
skips the timed page reads entirely (charging only the per-record CPU);
a miss reads the leaf and inserts its cells.  Because each cached cell is
the exact Bernoulli sample its leaf holds for that node interval,
cache-warm streams emit the same records in the same order as cold ones.
"""

from __future__ import annotations

import math
from operator import itemgetter
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..core.errors import QueryError, SerializationError, StorageError
from ..core.intervals import Box
from ..core.records import Record
from ..core.rng import derive
from ..obs.context import CONTEXT
from ..obs.flight import FLIGHT
from ..obs.metrics import METRICS
from ..obs.tracer import TRACER
from .nodes import LeafView

if TYPE_CHECKING:  # pragma: no cover
    from .tree import AceTree

__all__ = ["Cell", "SampleBatch", "SampleStream"]

#: Sample-count threshold for the time-to-first-k histogram (how fast the
#: stream delivers a usable first sample, on the simulated clock).
_FIRST_K = 100
_TTFK_BOUNDS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                1.0, 2.5, 5.0)
_STAB_DEPTH_BOUNDS = (1, 2, 3, 4, 6, 8, 12, 16)

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


class Cell:
    """The matching records of one (leaf, section) cell, decoded on demand.

    A lazy cell holds the leaf view and its slice of the leaf's matched-row
    list (computed once per leaf by the vectorized filter);
    ``materialize()`` decodes only what is needed — the leaf's record
    payload is batch-decoded once per view (and cached there, so every
    later cell of the same leaf is a plain list pick), producing tuples
    identical, in identical file order, to filtering the eagerly-decoded
    section.  An eager cell wraps an already-filtered record list (the
    scalar fallback path).
    """

    __slots__ = ("_leaf", "_rows", "_lo", "_hi", "_count", "_records")

    def __init__(self, leaf, rows, lo, hi, count, records):
        self._leaf = leaf
        self._rows = rows
        self._lo = lo
        self._hi = hi
        self._count = count
        self._records = records

    @classmethod
    def lazy(cls, leaf: LeafView, rows: list, lo: int, hi: int) -> "Cell":
        """``rows[lo:hi]`` are the leaf-local matching row numbers."""
        return cls(leaf, rows, lo, hi, hi - lo, None)

    @classmethod
    def eager(cls, records: list) -> "Cell":
        return cls(None, None, 0, 0, len(records), records)

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        return iter(self.materialize())

    def materialize(self) -> list[Record]:
        """Decode (and cache) the cell's matching records."""
        if self._records is None:
            if self._count == 0:
                self._records = []
            else:
                decoded = self._leaf.page.records
                rows = self._rows
                self._records = [decoded[i] for i in rows[self._lo:self._hi]]
            self._leaf = None
            self._rows = None
        return self._records


#: Shared zero-record cell.  Sections with no matching rows still have to
#: be *filed* (Combine needs one cell from every required interval before
#: a set can emit), but they all materialize to the same empty sequence,
#: so one immutable instance serves every such filing.
_EMPTY_CELL = Cell(None, None, 0, 0, 0, ())  # repro: shared[frozen] immutable sentinel, never mutated after construction


class SampleBatch:
    """Records that became emittable after one stab (one leaf read).

    Attributes:
        count: number of records in the batch (free — no decode needed).
        records: newly emitted sample records, in randomized order; decoded
            lazily on first access.  The concatenation of all batches so
            far is a uniform random sample of the records matching the
            query.
        clock: simulated time at which this batch became available.
        leaves_read: total leaves retrieved so far.
        buffered_records: matching records currently parked in the combine
            buckets (the paper's Figure 15 metric).
        is_final_flush: True for the last batch, which drains the buckets
            once every leaf has been read (at that point the full matching
            population has been seen, so draining preserves correctness).
    """

    __slots__ = ("clock", "leaves_read", "buffered_records", "is_final_flush",
                 "count", "_cells", "_perm", "_records")

    def __init__(self, cells, perm, clock, leaves_read, buffered_records,
                 is_final_flush=False):
        self.clock = clock
        self.leaves_read = leaves_read
        self.buffered_records = buffered_records
        self.is_final_flush = is_final_flush
        self.count = len(perm)
        self._cells = cells
        self._perm = perm
        self._records: tuple[Record, ...] | None = None

    def __len__(self) -> int:
        return self.count

    @property
    def records(self) -> tuple[Record, ...]:
        """Materialize (and cache) the batch's records, shuffled order."""
        if self._records is None:
            flat: list[Record] = []
            extend = flat.extend
            for cell in self._cells:
                recs = cell._records
                if recs is None:
                    # Cell.materialize(), inlined minus the write-back:
                    # the batch drops its cells right below, so caching
                    # the decoded list on the cell would be dead weight.
                    rows = cell._rows
                    decoded = cell._leaf.page.records
                    recs = [decoded[i] for i in rows[cell._lo:cell._hi]]
                extend(recs)
            if len(flat) > 1:
                self._records = itemgetter(*self._perm)(flat)
            else:
                self._records = tuple(flat)
            self._cells = ()
            self._perm = ()
        return self._records


class StreamStats:
    """Running counters exposed by :class:`SampleStream`."""

    __slots__ = ("leaves_read", "records_emitted", "buffered_records",
                 "stabs", "lost_leaves", "cache_hits")

    def __init__(self) -> None:
        self.leaves_read = 0
        self.records_emitted = 0
        self.buffered_records = 0
        self.stabs = 0
        self.lost_leaves = 0
        #: Leaves served wholesale from the attached sample cache.
        self.cache_hits = 0


class SampleStream:  # repro: shared[owner=serve.scheduler] one stream per traversal; interleaved streams advance only inside a serve scheduler quantum
    """Online random-sample iterator over one range query.

    Iterating yields :class:`SampleBatch` objects; :meth:`records` flattens
    them and :meth:`take` collects a fixed-size sample.  The stream is
    exhausted when every leaf has been read and the buckets drained — at
    that point the union of all emitted batches is exactly the set of
    records matching the query.
    """

    #: When True (the default), a cell whose section level has exactly one
    #: required interval is emitted straight from the filing loop instead
    #: of taking a round trip through its bucket — the drain would pop
    #: exactly that cell.  Test doubles that sabotage ``_drain_level``
    #: (:class:`repro.testkit.harness.BrokenCombineStream`) disable this so
    #: every cell still flows through their broken drain.
    _combine_fast_path = True

    def __init__(
        self,
        tree: "AceTree",
        query: Box,
        seed: int = 0,
        alternate: bool = True,
        lost_leaf_policy: str = "raise",
        vectorize: bool = True,
    ) -> None:
        if query.dims != tree.dims:
            raise QueryError(
                f"query has {query.dims} dims, tree indexes {tree.dims}"
            )
        if lost_leaf_policy not in ("raise", "skip"):
            raise QueryError(
                f"unknown lost_leaf_policy {lost_leaf_policy!r} "
                "(expected 'raise' or 'skip')"
            )
        self.tree = tree
        self.query = query
        #: Figure 10's toggle-bit behaviour.  Disabling it (always descend
        #: left among equally-eligible children) is an *ablation*: stabs
        #: stop fetching disparate leaves, combine-sets starve, and the
        #: fast-first property degrades — see benchmarks/test_ablations.py.
        self.alternate = alternate
        geometry = tree.geometry
        self._geometry = geometry
        self._store = tree.leaf_store
        self._height = geometry.height
        self._key_of = tree.schema.keys_getter(tree.key_fields)
        self._filter = self._make_filter(tree, query)
        #: ``LeafView -> bool ndarray`` over the leaf's rows, or ``None``
        #: when the key layout cannot be vectorized (the scalar fallback
        #: and the columnar path are record-for-record identical —
        #: property-tested in tests/acetree/test_columnar.py).
        self._mask_of = self._make_mask_filter(tree, query) if vectorize else None
        self._cache = tree.sample_cache
        #: Per-batch shuffle permutations come from this seed-derived
        #: generator; ``(seed, "ace-stream")`` fully determines the order.
        self._perm_rng = derive(seed, "ace-stream")

        # Required intervals per section level: the level-s node indexes
        # whose boxes overlap the query (Combine's covering sets), plus
        # the same sets for O(1) overlap tests in the stab loop (identical
        # predicate to geometry.node_box(...).overlaps(query)) and their
        # sizes.  Pure functions of (geometry, query) and read-only for
        # the stream's lifetime, so repeated queries share them through a
        # small memo on the tree.
        cached = tree._overlap_memo.get(query)
        if cached is None:
            required = [
                geometry.overlapping_nodes(s, query)
                for s in range(1, self._height + 1)
            ]
            cached = (required, [set(r) for r in required],
                      [len(r) for r in required])
            if len(tree._overlap_memo) < 64:
                tree._overlap_memo[query] = cached
        self._required: list[list[int]]
        self._overlap_sets: list[set[int]]
        self._required, self._overlap_sets, self._need = cached
        # buckets[s-1][j] = FIFO of arrived section-s cells for interval j.
        self._buckets: list[dict[int, list[Cell]]] = [
            {} for _ in range(self._height)
        ]
        # ready[s-1] = how many *required* level-s intervals currently have
        # a non-empty FIFO.  Combine at level s can emit exactly when
        # ready[s-1] == len(required[s-1]); maintaining the count at filing
        # and pop time makes the per-leaf drain check O(1) instead of a
        # scan over every required interval.
        self._ready: list[int] = [0] * self._height
        self._arity = geometry.arity
        self._done: set[tuple[int, int]] = set()
        # The same doneness, as per-level flag arrays indexed by node
        # number: the stab descent tests these (no tuple hashing on the
        # hot path); the tuple set above stays authoritative for the
        # sanitizers (analysis.check_stream walks it).
        self._done_flags: list[bytearray] = [
            bytearray(geometry.arity ** s) for s in range(self._height)
        ]
        self._next_child: dict[tuple[int, int], int] = {}
        #: What to do when a leaf read fails after retries: ``"raise"``
        #: propagates the storage error (the default — correctness first);
        #: ``"skip"`` marks the leaf done, flags the stream degraded, and
        #: keeps sampling from the surviving leaves.
        self.lost_leaf_policy = lost_leaf_policy
        #: Leaf indexes lost to storage failures (``"skip"`` policy only).
        self.lost_leaves: list[int] = []
        self.stats = StreamStats()
        self._start_clock = tree.disk.clock
        self._first_k_recorded = False
        # Degenerate query: no overlap with the domain at all.
        self._exhausted = not geometry.domain.overlaps(query)

    @staticmethod
    def _make_filter(tree: "AceTree", query: Box):
        """A ``records -> matching list`` predicate specialized per query.

        Same semantics as filtering each record's key point through
        ``query.contains_point`` (every interval is half-open), with the
        per-record call tower flattened for the 1-D common case.
        """
        if len(tree.key_fields) == 1:
            get = tree.schema.key_getter(tree.key_fields[0])
            lo, hi = query.sides[0].lo, query.sides[0].hi
            return lambda records: [r for r in records if lo <= get(r) < hi]
        key_of = tree.schema.keys_getter(tree.key_fields)
        contains = query.contains_point
        return lambda records: [r for r in records if contains(key_of(r))]

    @staticmethod
    def _make_mask_filter(tree: "AceTree", query: Box):
        """A ``LeafView -> bool mask`` filter, or ``None`` if unavailable.

        The mask is exactly ``[lo <= key < hi]`` per dimension.  Integer
        key columns are compared against *integer* bounds (``k >= lo`` iff
        ``k >= ceil(lo)`` and ``k < hi`` iff ``k < ceil(hi)`` for integer
        ``k``), because comparing an int64 column against a Python float
        would round keys beyond 2**53 and silently move the boundary.
        """
        if len(tree.key_fields) != query.dims:
            return None
        dims = []
        for name, side in zip(tree.key_fields, query.sides):
            kind = tree.schema.field_kind(name)
            if kind == "f8":
                dims.append((name, "f8", side.lo, side.hi))
            elif kind == "i8":
                lo, hi = side.lo, side.hi
                # +inf lower / -inf upper bound: nothing can match.
                if (math.isinf(lo) and lo > 0) or (math.isinf(hi) and hi < 0):
                    dims.append((name, "empty", None, None))
                    continue
                lo_i = None if math.isinf(lo) else math.ceil(lo)
                hi_i = None if math.isinf(hi) else math.ceil(hi)
                if (lo_i is not None and lo_i > _INT64_MAX) or (
                    hi_i is not None and hi_i <= _INT64_MIN
                ):
                    dims.append((name, "empty", None, None))
                    continue
                # Bounds beyond the representable range constrain nothing.
                if lo_i is not None and lo_i <= _INT64_MIN:
                    lo_i = None
                if hi_i is not None and hi_i > _INT64_MAX:
                    hi_i = None
                dims.append((name, "i8", lo_i, hi_i))
            else:
                return None  # bytes keys: keep the scalar path

        if len(dims) == 1 and dims[0][1] != "empty" and None not in dims[0][2:]:
            # 1-D, both bounds finite: the overwhelmingly common stab
            # query.  Same mask as the generic loop below, two ufuncs.
            name, _kind, lo, hi = dims[0]

            def mask_of_1d(leaf: LeafView):
                column = leaf.page.struct_array()[name]
                return (column >= lo) & (column < hi)

            return mask_of_1d

        def mask_of(leaf: LeafView):
            array = leaf.page.struct_array()
            mask = None
            for name, kind, lo, hi in dims:
                if kind == "empty":
                    return np.zeros(len(array), dtype=bool)
                column = array[name]
                part = None
                if lo is not None:
                    part = column >= lo
                if hi is not None:
                    upper = column < hi
                    part = upper if part is None else (part & upper)
                if part is None:
                    continue
                mask = part if mask is None else (mask & part)
            if mask is None:
                mask = np.ones(len(array), dtype=bool)
            return mask

        return mask_of

    # -- iteration -----------------------------------------------------------

    def __iter__(self) -> Iterator[SampleBatch]:
        return self

    def __next__(self) -> SampleBatch:
        if self._exhausted:
            raise StopIteration
        root_done = self._done_flags[0]
        if root_done[0]:
            return self._final_flush()
        stats = self.stats
        disk = self.tree.disk
        while True:
            with TRACER.span("ace_query.stab", disk=disk) as sp:
                leaf_index = self._stab()
                leaf = None
                if self._cache is not None:
                    leaf = self._cache_fetch(leaf_index)
                if leaf is not None:
                    # Full-leaf cache hit: every section cell is resident,
                    # so the page reads are skipped entirely; only the
                    # per-record CPU of processing the leaf is charged.
                    stats.cache_hits += 1
                    disk.charge_records(leaf.num_records)
                    TRACER.count("ace_query.cache_hits")
                    if sp is not None:
                        sp.attrs["cache_hit"] = True
                else:
                    try:
                        leaf = self._store.read_leaf_view(leaf_index)
                    except (StorageError, SerializationError):
                        # Retries are exhausted by the time the error reaches
                        # the Shuttle, so the leaf is gone for good: either
                        # crash the query or sample on without it.
                        if self.lost_leaf_policy != "skip":
                            raise
                        self._note_lost_leaf(leaf_index, sp)
                        leaf = None
                    else:
                        if self._cache is not None:
                            self._cache_insert(leaf_index, leaf)
                if leaf is not None:
                    stats.leaves_read += 1
                    with TRACER.span("ace_query.combine", detail=True) as combine_sp:
                        emitted = self._process_leaf(leaf_index, leaf)
                        emitted_count = sum([c._count for c in emitted])
                        if combine_sp is not None:
                            combine_sp.attrs["emitted"] = emitted_count
                            combine_sp.attrs["buffered"] = stats.buffered_records
                    if sp is not None:
                        sp.attrs["leaf"] = leaf_index
                        sp.attrs["emitted"] = emitted_count
                        sp.attrs["buffered"] = stats.buffered_records
            if leaf is not None:
                break
            if root_done[0]:
                # Every remaining leaf was lost; drain what combined.
                return self._final_flush()
        TRACER.count("ace_query.leaves_read")
        perm = self._perm_rng.permutation(emitted_count).tolist()
        stats.records_emitted += emitted_count
        if TRACER.enabled:
            self._record_query_metrics()
        if root_done[0] and stats.buffered_records == 0:
            self._exhausted = True
        return SampleBatch(
            cells=emitted,
            perm=perm,
            clock=disk.clock,
            leaves_read=stats.leaves_read,
            buffered_records=stats.buffered_records,
        )

    def records(self) -> Iterator[Record]:
        """Flatten the stream into individual sample records."""
        for batch in self:
            yield from batch.records

    def take(self, n: int) -> list[Record]:
        """Collect the first ``n`` sample records (fewer if exhausted)."""
        out: list[Record] = []
        for batch in self:
            out.extend(batch.records)
            if len(out) >= n:
                break
        return out[:n]

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def degraded(self) -> bool:
        """True once any leaf was lost: the emitted stream can no longer be
        trusted to be a uniform sample (see :mod:`repro.obs.quality`, which
        flags monitored degraded streams instead of certifying them)."""
        return self.stats.lost_leaves > 0

    def _note_lost_leaf(self, leaf_index: int, sp) -> None:
        """Record a leaf lost to a storage failure and sample on without it."""
        self._mark_done(leaf_index)
        self.stats.lost_leaves += 1
        self.lost_leaves.append(leaf_index)
        TRACER.count("ace_query.lost_leaves")
        if TRACER.enabled:
            METRICS.counter("query.lost_leaves").labels(**CONTEXT.labels()).inc()
        if sp is not None:
            sp.attrs["lost_leaf"] = leaf_index
        # A lost leaf means recovery already exhausted its retries (or hit
        # unrecoverable corruption): snapshot the last moments if armed.
        FLIGHT.trip("lost-leaf")

    def _record_query_metrics(self) -> None:
        """Per-batch metric updates; only called while tracing is enabled."""
        labels = CONTEXT.labels()
        METRICS.gauge("query.buffered_records").labels(**labels).set(
            self.stats.buffered_records
        )
        if not self._first_k_recorded and self.stats.records_emitted >= _FIRST_K:
            self._first_k_recorded = True
            METRICS.histogram(
                f"query.time_to_first_{_FIRST_K}_sim_s", _TTFK_BOUNDS
            ).labels(**labels).observe(self.tree.disk.clock - self._start_clock)

    def population_estimate(self) -> float:
        """Estimated matching-record count, from internal-node counts."""
        return self.tree.estimate_count(self.query)

    # -- sample cache ----------------------------------------------------------

    def _cache_keys(self, leaf_index: int) -> list[tuple]:
        """One key per section cell of the leaf.

        ``(store token, s, ancestor)`` names the level-``s`` node interval
        the cell Bernoulli-samples; the leaf index distinguishes sibling
        cells drawn for the same interval, so a cached cell is only ever
        served back as the exact population it was read from.
        """
        token = self._store.cache_token
        height, arity = self._height, self._arity
        return [
            (token, s, leaf_index // arity ** (height - s), leaf_index)
            for s in range(1, height + 1)
        ]

    def _cache_fetch(self, leaf_index: int):
        """The leaf's view if *every* section cell is resident, else None."""
        view = None
        for key in self._cache_keys(leaf_index):
            value = self._cache.get(key)
            if value is None:
                return None
            view = value
        return view

    def _cache_insert(self, leaf_index: int, view) -> None:
        """File each section cell of a freshly-read leaf into the cache."""
        record_size = self.tree.schema.record_size
        keys = self._cache_keys(leaf_index)
        overhead = max(0, view.byte_size - view.num_records * record_size)
        base = overhead // len(keys)
        for key, count in zip(keys, view.counts):
            self._cache.put(key, view, count * record_size + base)

    # -- shuttle traversal -----------------------------------------------------

    def _stab(self) -> int:
        """One root-to-leaf traversal; returns the leaf index to read.

        At each internal node: among children that are not exhausted,
        prefer those overlapping the query; break remaining ties
        round-robin (the paper's per-node alternation — a toggle bit for
        the binary tree, a rotating pointer for k-ary trees).
        """
        self.stats.stabs += 1
        # CPU for the descent (internal nodes are memory resident).
        self.tree.disk.charge_records(self._height)
        arity = self._arity
        done_flags = self._done_flags
        overlap_sets = self._overlap_sets
        next_child = self._next_child
        alternate = self.alternate
        tracing = TRACER.enabled
        level, index = 1, 0
        if arity == 2 and not tracing:
            # Binary fast path: same choices as the generic loop below
            # (pool = [0, 1] in ascending order, so the rotating pointer
            # resolves to itself and advances to the other child), without
            # building the candidate lists.
            height = self._height
            while level < height:
                base = index + index
                flags = done_flags[level]
                overlap = overlap_sets[level]
                a0 = not flags[base]
                a1 = not flags[base + 1]
                c0 = a0 and base in overlap
                c1 = a1 and base + 1 in overlap
                if c0 != c1:
                    choice = 0 if c0 else 1
                elif c0 or (a0 and a1):
                    if alternate:
                        key = (level, index)
                        choice = next_child.get(key, 0)
                        next_child[key] = 1 - choice
                    else:
                        choice = 0
                elif a0 != a1:
                    choice = 0 if a0 else 1
                else:  # pragma: no cover - parent would be marked done
                    raise QueryError("stab reached a fully-done subtree")
                level += 1
                index = base + choice
            return index
        while level < self._height:
            base = arity * index
            child_level = level + 1
            overlap = overlap_sets[child_level - 1]
            flags = done_flags[child_level - 1]
            pool = [
                c for c in range(arity)
                if not flags[base + c] and base + c in overlap
            ]
            if not pool or tracing:
                alive = [c for c in range(arity) if not flags[base + c]]
                if not alive:  # pragma: no cover - parent would be marked done
                    raise QueryError("stab reached a fully-done subtree")
                if tracing:
                    branch = "overlap" if pool else "drain"
                    labels = CONTEXT.labels()
                    METRICS.counter(
                        f"stab.level.{level}.{branch}"
                    ).labels(**labels).inc()
                    pruned = len(alive) - len(pool)
                    if pool and pruned:
                        # Children deferred because a query-overlapping
                        # sibling won the descent: the pruned subtrees of
                        # this stab.
                        METRICS.counter(
                            f"stab.level.{level}.pruned"
                        ).labels(**labels).inc(pruned)
                if not pool:
                    pool = alive
            if len(pool) == 1 or not alternate:
                choice = pool[0]
            else:
                pointer = next_child.get((level, index), 0)
                # First pool member at or after the rotating pointer (the
                # pool is ascending, so this is exactly the member that
                # minimizes (c - pointer) mod arity).
                for c in pool:
                    if c >= pointer:
                        choice = c
                        break
                else:
                    choice = pool[0]
                next_child[(level, index)] = (choice + 1) % arity
            level, index = child_level, base + choice
        if tracing:
            METRICS.histogram(
                "query.stab_depth", _STAB_DEPTH_BOUNDS
            ).labels(**CONTEXT.labels()).observe(self._height - 1)
        return index

    def _mark_done(self, leaf_index: int) -> None:
        """Mark a leaf done and propagate doneness up the tree."""
        arity = self._arity
        done, done_flags = self._done, self._done_flags
        level, index = self._height, leaf_index
        done.add((level, index))
        done_flags[level - 1][index] = 1
        while level > 1:
            parent = index // arity
            base = arity * parent
            flags = done_flags[level - 1]
            if not all(flags[base + c] for c in range(arity)):
                break
            level, index = level - 1, parent
            done.add((level, index))
            done_flags[level - 1][index] = 1

    # -- combine ---------------------------------------------------------------

    def _process_leaf(self, leaf_index: int, leaf: LeafView) -> list[Cell]:
        """File the leaf's sections into buckets and emit what combines.

        On the columnar path the query filter runs *once* over the whole
        leaf (one mask over the key column); each section's cell is then a
        lazy handle into that mask.  The scalar fallback filters the
        eagerly-decoded section records instead — identical contents.
        """
        self._mark_done(leaf_index)
        rows = pos = None
        if self._mask_of is not None:
            # One vectorized filter pass over the whole leaf: the matched
            # row numbers, then each section's slice of them located with
            # a single searchsorted against the section start offsets.
            matched = self._mask_of(leaf).nonzero()[0]
            pos = matched.searchsorted(leaf.starts_array).tolist()
            rows = matched.tolist()
        emitted: list[Cell] = []
        emit = emitted.append
        ancestor = leaf_index
        arity = self._arity
        buckets = self._buckets
        overlap_sets = self._overlap_sets
        ready = self._ready
        need = self._need
        fast = self._combine_fast_path
        buffered = 0
        for s in range(self._height, 0, -1):
            i = s - 1
            if rows is not None:
                lo, hi = pos[i], pos[s]
                if lo == hi:
                    cell = _EMPTY_CELL
                    count = 0
                else:
                    count = hi - lo
                    cell = Cell(leaf, rows, lo, hi, count, None)
            else:
                cell = self._eager_cell(leaf, s)
                count = cell._count
            bucket = buckets[i]
            fifo = bucket.get(ancestor)
            if fast and need[i] == 1 and not fifo and ancestor in overlap_sets[i]:
                # Solo required interval with an empty FIFO: filing this
                # cell would make the level ready and the drain below
                # would pop exactly it — emit directly.  (Batch contents
                # are unchanged; the within-batch order is randomized by
                # the permutation regardless.)
                emit(cell)
            else:
                if fifo is None:
                    bucket[ancestor] = fifo = []
                if not fifo and ancestor in overlap_sets[i]:
                    ready[i] += 1
                fifo.append(cell)
                buffered += count
            ancestor //= arity
        self.stats.buffered_records += buffered
        for s in range(1, self._height + 1):
            if ready[s - 1] >= need[s - 1] and need[s - 1]:
                emitted.extend(self._drain_level(s))
        return emitted

    def _eager_cell(self, leaf: LeafView, s: int) -> Cell:
        """Scalar fallback: decode the section and filter record by record."""
        # The sanctioned non-vectorized path (bytes keys / vectorize=False).
        return Cell.eager(self._filter(leaf.section_records(s)))  # repro: allow[HOT001]

    def _drain_level(self, s: int) -> list[Cell]:
        """Emit combine-sets at section level ``s`` while complete ones exist.

        ``ready[s-1]`` counts the required intervals with a waiting cell,
        so the common no-emit case is one integer compare.
        """
        i = s - 1
        required = self._required[i]
        need = len(required)
        ready = self._ready
        if ready[i] < need or not need:
            return []
        bucket = self._buckets[i]
        if need == 1:
            # Solo required interval (every level where the query fits in
            # one node box): the loop below would pop the FIFO dry one
            # cell at a time — take it wholesale instead, same cells in
            # the same order.
            fifo = bucket[required[0]]
            out = fifo[:]
            del fifo[:]
            ready[i] = 0
            drained = 0
            for cell in out:
                drained += cell._count
            self.stats.buffered_records -= drained
            return out
        out: list[Cell] = []
        drained = 0
        while ready[i] == need:
            for j in required:
                fifo = bucket[j]
                cell = fifo.pop(0)
                if not fifo:
                    ready[i] -= 1
                drained += cell._count
                out.append(cell)
        self.stats.buffered_records -= drained
        return out

    def _final_flush(self) -> SampleBatch:
        """Drain every remaining bucket once all leaves have been read."""
        with TRACER.span("ace_query.final_flush", disk=self.tree.disk, detail=True) as sp:
            leftovers: list[Cell] = []
            for bucket in self._buckets:
                for cells in bucket.values():
                    leftovers.extend(cells)
                bucket.clear()
            self.stats.buffered_records = 0
            self._ready = [0] * self._height
            count = sum(map(len, leftovers))
            perm = self._perm_rng.permutation(count).tolist()
            self.stats.records_emitted += count
            if sp is not None:
                sp.attrs["emitted"] = count
        self._exhausted = True
        return SampleBatch(
            cells=leftovers,
            perm=perm,
            clock=self.tree.disk.clock,
            leaves_read=self.stats.leaves_read,
            buffered_records=0,
            is_final_flush=True,
        )
