"""The ACE Tree: the paper's primary contribution.

Public surface:

* :func:`build_ace_tree` / :class:`AceBuildParams` — bulk construction
  (two external sorts, paper Section V).
* :class:`AceTree` — the built index; ``tree.sample(tree.query((lo, hi)))``
  opens an online random-sample stream.
* :class:`SampleStream` / :class:`SampleBatch` — the Shuttle/Combine query
  algorithm (Section VI).
* :class:`TreeGeometry`, :class:`LeafNode`, :class:`InternalNodeView` —
  structural views used by tests and by the k-d extension (Section VII,
  available by listing several ``key_fields``).
* :mod:`analysis` helpers for Lemma 1 / Lemma 2.
"""

from .analysis import (
    expected_section_size,
    fixed_leaf_utilization,
    lemma1_applicability_limit,
    lemma1_lower_bound,
)
from .build import AceBuildParams, AceBuildReport, build_ace_tree
from .geometry import TreeGeometry, choose_height
from .nodes import InternalNodeView, LeafNode
from .query import SampleBatch, SampleStream
from .storage import LeafStore, LeafStoreWriter
from .tree import AceTree

__all__ = [
    "AceBuildParams",
    "AceBuildReport",
    "AceTree",
    "InternalNodeView",
    "LeafNode",
    "LeafStore",
    "LeafStoreWriter",
    "SampleBatch",
    "SampleStream",
    "TreeGeometry",
    "build_ace_tree",
    "choose_height",
    "expected_section_size",
    "fixed_leaf_utilization",
    "lemma1_applicability_limit",
    "lemma1_lower_bound",
]
