"""Analytical results about the ACE Tree (paper Section VI.E).

These formulas are used three ways: to auto-size trees, to sanity-check
measured behaviour in the test suite (the measured sampling rate must beat
Lemma 1's lower bound; measured section sizes must match Lemma 2), and to
report expected performance in the benchmark harness.
"""

from __future__ import annotations

import math

__all__ = [
    "expected_section_size",
    "lemma1_lower_bound",
    "lemma1_applicability_limit",
    "fixed_leaf_utilization",
]


def expected_section_size(num_records: int, height: int, arity: int = 2) -> float:
    """Lemma 2: expected records per leaf section, ``|R| / (h * k^(h-1))``.

    A record picks one of ``h`` sections uniformly and then one of the
    ``k^(h-1)`` leaves compatible with its section, uniformly; both choices
    are independent of every other record's, so each of the
    ``h * k^(h-1)`` (leaf, section) cells gets the same expected count.
    ``k`` is the tree arity (2 in the paper's design).
    """
    if num_records < 0:
        raise ValueError(f"num_records must be >= 0, got {num_records}")
    if height < 1:
        raise ValueError(f"height must be >= 1, got {height}")
    if arity < 2:
        raise ValueError(f"arity must be >= 2, got {arity}")
    return num_records / (height * arity ** (height - 1))


def lemma1_lower_bound(leaves_read: int, mean_section_size: float) -> float:
    """Lemma 1: lower bound on E[samples] after ``m`` leaves are retrieved.

    The paper proves that while the shuttle has not exhausted the two
    subtrees covering the query (``m <= 2*alpha*n + 2``), the expected
    number of emitted samples after ``m`` leaf reads is at least
    ``(mu / 2) * m * log2(m)``; we return the exact partial-sum form
    ``(mu / 2) * sum_{k=2..m} log2 k``, which the closed form rounds up to.
    """
    if leaves_read < 0:
        raise ValueError(f"leaves_read must be >= 0, got {leaves_read}")
    if mean_section_size < 0:
        raise ValueError(f"mean_section_size must be >= 0, got {mean_section_size}")
    total = sum(math.log2(k) for k in range(2, leaves_read + 1))
    return 0.5 * mean_section_size * total


def fixed_leaf_utilization(
    num_records: int,
    height: int,
    arity: int = 2,
    overflow_probability: float = 0.01,
    per_section: bool = False,
) -> float:
    """Expected space utilization of the *rejected* fixed-size schemes.

    Section V.F: cell sizes are random (each record lands in its cell
    independently), so any fixed-size layout must reserve enough space
    that, with probability ``1 - overflow_probability``, **nothing**
    overflows its slot.  With ``per_section=False`` the slot is per *leaf*
    (a Binomial(n, 1/L) total); with ``per_section=True`` every
    (leaf, section) cell gets its own fixed slot (Binomial(n, 1/(hL)),
    far smaller mean, hence far worse relative spread).  Slots are sized
    at the union-bound quantile of the binomial, normal-approximated; the
    returned utilization is ``mean / slot``.

    The paper estimates "less than 15%" utilization for its configuration;
    the exact figure depends on which scheme and parameters are assumed,
    but the qualitative conclusion this function makes checkable is the
    one that matters: fixed slots waste a large, height-dependent fraction
    of every page (and per-section slots are much worse than per-leaf),
    while the variable-size layout the paper (and this library) uses packs
    pages essentially full.
    """
    if num_records <= 0:
        raise ValueError(f"num_records must be > 0, got {num_records}")
    if not 0 < overflow_probability < 1:
        raise ValueError(
            f"overflow_probability must be in (0, 1), got {overflow_probability}"
        )
    leaves = arity ** (height - 1)
    cells = leaves * height if per_section else leaves
    probability = 1 / cells
    mean = num_records * probability
    # Normal approximation of Binomial(n, 1/cells).
    sigma = math.sqrt(num_records * probability * (1 - probability))
    # Union bound: each cell may overflow with probability p / cells.
    z = _normal_upper_quantile(1 - overflow_probability / cells)
    slot = mean + z * sigma
    return mean / slot


def _normal_upper_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0 < p < 1:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


def lemma1_applicability_limit(selectivity: float, num_leaves: int) -> int:
    """Largest ``m`` for which Lemma 1's bound is claimed: ``2*alpha*n + 2``."""
    if not 0 <= selectivity <= 1:
        raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
    if num_leaves < 1:
        raise ValueError(f"num_leaves must be >= 1, got {num_leaves}")
    return int(2 * selectivity * num_leaves) + 2
