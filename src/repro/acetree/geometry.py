"""Split-key geometry of the ACE Tree.

The ACE Tree is a complete ``arity``-ary tree of height ``h``: levels
``1..h-1`` hold internal nodes (``arity^(s-1)`` nodes at level ``s``), and
level ``h`` holds the ``arity^(h-1)`` leaf cells.  Each internal node
carries ``arity - 1`` split boundaries; the node at level ``s``, index ``j``
covers a box, and its children partition that box at the boundaries along
the level's axis.  The paper's main design (Section III.D argues for it) is
the binary tree, ``arity = 2``; higher arities are implemented so the
binary-versus-k-ary trade-off can be measured (see
``benchmarks/test_ablations.py``).  For the k-d variant (Section VII) the
split axis cycles through the key dimensions by level; the 1-D tree is
simply the ``k = 1`` case.

:class:`TreeGeometry` is the immutable product of construction Phase 1: the
split boundaries, the per-node record counts, and the box algebra every
other ACE Tree component (construction Phase 2, the Shuttle traversal, the
Combine procedure, population estimation) is defined in terms of.

Indexing conventions used throughout:

* levels are 1-based (level 1 is the root, level ``h`` the leaves);
* node indexes at each level are 0-based, left to right;
* the level-``s`` ancestor of leaf cell ``c`` is ``c // arity^(h-s)``;
* section ``s`` of a leaf samples the box of its level-``s`` ancestor,
  so section 1 always samples the whole domain.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import Sequence

import numpy as np

from ..core.errors import IndexBuildError, QueryError
from ..core.intervals import Box

__all__ = ["TreeGeometry", "choose_height"]


def choose_height(
    num_records: int,
    record_size: int,
    page_size: int,
    target_fill: float = 0.7,
    min_height: int = 2,
    max_height: int = 40,
    arity: int = 2,
) -> int:
    """Pick the tree height so an expected leaf fits one disk page.

    The paper (Section V.C, footnote): "We choose a value for the height of
    the tree in such a manner that the expected size of a leaf node does not
    exceed one logical disk block."  The expected leaf holds
    ``num_records / arity^(h-1)`` records, so we choose the smallest ``h``
    whose expected leaf payload is at most ``target_fill * page_size``.
    """
    if num_records <= 0:
        raise IndexBuildError("cannot build an ACE Tree over an empty relation")
    if not 0 < target_fill <= 1:
        raise IndexBuildError(f"target_fill must be in (0, 1], got {target_fill}")
    if arity < 2:
        raise IndexBuildError(f"arity must be >= 2, got {arity}")
    budget = target_fill * page_size
    height = min_height
    while height < max_height:
        expected_leaf_bytes = num_records / arity ** (height - 1) * record_size
        if expected_leaf_bytes <= budget:
            break
        height += 1
    return height


def _normalize_splits(
    splits: Sequence[Sequence], arity: int
) -> tuple[tuple[tuple[float, ...], ...], ...]:
    """Coerce per-level split lists to per-node boundary tuples.

    For the common binary case callers pass one float per node
    (``[[50.0], [25.0, 75.0], ...]``); for higher arities each node entry
    is a tuple of ``arity - 1`` ascending boundaries.
    """
    normalized = []
    for level0, level_splits in enumerate(splits):
        nodes = []
        for entry in level_splits:
            if isinstance(entry, (int, float)):
                boundaries: tuple[float, ...] = (float(entry),)
            else:
                boundaries = tuple(float(b) for b in entry)
            if len(boundaries) != arity - 1:
                raise IndexBuildError(
                    f"level {level0 + 1}: node needs {arity - 1} boundaries, "
                    f"got {len(boundaries)}"
                )
            if any(b > c for b, c in zip(boundaries, boundaries[1:])):
                raise IndexBuildError(
                    f"level {level0 + 1}: boundaries {boundaries} not ascending"
                )
            nodes.append(boundaries)
        normalized.append(tuple(nodes))
    return tuple(normalized)


class TreeGeometry:
    """Immutable split-key structure of one ACE Tree.

    Args:
        domain: the half-open box covering every key in the relation.
        splits: one list per internal level; ``splits[s-1]`` has the
            ``arity^(s-1)`` entries of level ``s``, in node order.  Each
            entry is either a single float (binary trees) or a tuple of
            ``arity - 1`` ascending boundaries.
        cell_counts: exact number of records in each of the
            ``arity^(h-1)`` leaf cells (used for internal-node counts /
            population estimation); optional.
        arity: fan-out of every internal node (the paper's design is 2).
    """

    def __init__(
        self,
        domain: Box,
        splits: Sequence[Sequence],
        cell_counts: Sequence[int] | None = None,
        arity: int = 2,
    ) -> None:
        if not splits:
            raise IndexBuildError("an ACE Tree needs at least one internal level")
        if arity < 2:
            raise IndexBuildError(f"arity must be >= 2, got {arity}")
        self.domain = domain
        self.arity = arity
        self.height = len(splits) + 1
        self.dims = domain.dims
        self._splits = _normalize_splits(splits, arity)
        for level0, level_splits in enumerate(self._splits):
            expected = arity ** level0
            if len(level_splits) != expected:
                raise IndexBuildError(
                    f"level {level0 + 1} needs {expected} split entries, "
                    f"got {len(level_splits)}"
                )
        self._boxes = self._compute_boxes()
        if cell_counts is not None and len(cell_counts) != self.num_leaves:
            raise IndexBuildError(
                f"need {self.num_leaves} cell counts, got {len(cell_counts)}"
            )
        self._cell_counts = tuple(cell_counts) if cell_counts is not None else None
        # Per-level (los, his) bound arrays for the 1-D overlapping_nodes
        # fast path; built lazily on first use.
        self._level_bounds: dict[int, tuple[list[float], list[float]]] = {}  # repro: shared[confined] idempotent lazy memo of static shape

    # -- static shape --------------------------------------------------------

    @property
    def num_leaves(self) -> int:
        """Number of leaf cells, ``arity^(h-1)``."""
        return self.arity ** (self.height - 1)

    def num_nodes(self, level: int) -> int:
        """Number of nodes at a level (leaves are level ``height``)."""
        self._check_level(level)
        return self.arity ** (level - 1)

    def axis(self, level: int) -> int:
        """The key dimension a given level splits on (cycles for k-d)."""
        self._check_level(level)
        return (level - 1) % self.dims

    def split_keys(self, level: int, index: int) -> tuple[float, ...]:
        """The ``arity - 1`` split boundaries of internal node (level, index)."""
        if not 1 <= level <= self.height - 1:
            raise QueryError(f"level {level} is not an internal level")
        return self._splits[level - 1][index]

    def split_key(self, level: int, index: int) -> float:
        """The split boundary of a binary internal node (first boundary)."""
        return self.split_keys(level, index)[0]

    # -- boxes ---------------------------------------------------------------

    def node_box(self, level: int, index: int) -> Box:
        """The box covered by the node at (level, index)."""
        self._check_level(level)
        boxes = self._boxes[level - 1]
        if not 0 <= index < len(boxes):
            raise QueryError(f"node index {index} out of range at level {level}")
        return boxes[index]

    def leaf_box(self, leaf: int) -> Box:
        """The box of leaf cell ``leaf``."""
        return self.node_box(self.height, leaf)

    def ancestor(self, leaf: int, level: int) -> int:
        """Index of the level-``level`` ancestor of leaf cell ``leaf``."""
        self._check_level(level)
        return leaf // self.arity ** (self.height - level)

    def children(self, level: int, index: int) -> list[tuple[int, int]]:
        """The (level, index) pairs of a node's children."""
        if not 1 <= level <= self.height - 1:
            raise QueryError(f"level {level} has no children")
        base = index * self.arity
        return [(level + 1, base + c) for c in range(self.arity)]

    def section_box(self, leaf: int, section: int) -> Box:
        """Range sampled by section ``section`` of leaf ``leaf``.

        Section ``s`` samples the box of the leaf's level-``s`` ancestor;
        this realizes the nesting ``L.R1 ⊃ L.R2 ⊃ ... ⊃ L.Rh`` and the
        exponentiality property (each box holds ~``arity``x the records of
        the next one, because splits are equi-depth quantiles).
        """
        return self.node_box(section, self.ancestor(leaf, section))

    # -- point / query location ----------------------------------------------

    def descend(self, point: Sequence[float], levels: int) -> int:
        """Follow ``levels`` split comparisons from the root.

        Returns the node index reached at level ``levels + 1``.  With
        ``levels = height - 1`` this is the leaf cell owning the point.
        """
        if not 0 <= levels <= self.height - 1:
            raise QueryError(f"cannot descend {levels} levels in height {self.height}")
        index = 0
        for level in range(1, levels + 1):
            axis = (level - 1) % self.dims
            boundaries = self._splits[level - 1][index]
            child = bisect_right(boundaries, point[axis])
            index = self.arity * index + child
        return index

    def locate_leaf(self, point: Sequence[float]) -> int:
        """The leaf cell whose box contains the point."""
        return self.descend(point, self.height - 1)

    def leaf_locator(self):
        """A specialized ``point -> leaf cell`` callable.

        Bit-identical to :meth:`locate_leaf` (same per-level
        ``bisect_right`` descent) with the level loop's attribute lookups
        and range checks hoisted out; construction Phase 2 calls this once
        per record, so the per-call overhead matters.
        """
        splits = self._splits
        arity = self.arity
        dims = self.dims
        if dims == 1:
            def locate(point, _bisect=bisect_right, _splits=splits, _arity=arity):
                x = point[0]
                index = 0
                for level_splits in _splits:
                    index = _arity * index + _bisect(level_splits[index], x)
                return index
        else:
            def locate(
                point, _bisect=bisect_right, _splits=splits, _arity=arity, _dims=dims
            ):
                index = 0
                for level0, level_splits in enumerate(_splits):
                    index = _arity * index + _bisect(
                        level_splits[index], point[level0 % _dims]
                    )
                return index
        return locate

    def scalar_leaf_locator(self):
        """A ``key value -> leaf cell`` callable for 1-D trees.

        Like :meth:`leaf_locator` but takes the bare key instead of a
        1-tuple point, and replaces the binary tree's one-boundary
        ``bisect_right`` with a plain comparison (``bisect_right((b,), x)``
        is ``1`` exactly when ``x >= b``), so the descent is pure integer
        arithmetic.  Identical results to :meth:`locate_leaf` on ``(x,)``.
        """
        if self.dims != 1:
            raise QueryError("scalar_leaf_locator needs a 1-D tree")
        if self.arity == 2:
            bounds = [[node[0] for node in level] for level in self._splits]

            def locate(x, _bounds=bounds):
                index = 0
                for level_bounds in _bounds:
                    index = index + index + (x >= level_bounds[index])
                return index

            return locate
        point_locate = self.leaf_locator()
        return lambda x, _locate=point_locate: _locate((x,))

    def array_leaf_locator(self, key_kind: str):
        """A vectorized ``key array -> leaf cell array`` callable, or None.

        Only the binary 1-D tree qualifies.  ``key_kind`` names the column
        kind of the keys the caller will pass (``"f8"`` for float64 arrays,
        ``"i8"`` for int64): float keys compare against the stored float
        boundaries directly, while int keys compare against exact integer
        thresholds (``x >= b`` is ``x >= ceil(b)`` for every integer
        ``x``), because Python's int-vs-float ``>=`` is exact where
        numpy's would round the int to float64.  Each level then costs one
        gather and one compare over the whole key array instead of a
        per-record descent; results match :meth:`locate_leaf` element for
        element, or None is returned and callers must descend per record.
        """
        if self.dims != 1 or self.arity != 2:
            return None
        levels = []
        for level in self._splits:
            vals = [node[0] for node in level]
            if key_kind == "f8":
                levels.append(np.array(vals, dtype=np.float64))
            elif key_kind == "i8":
                thresholds = []
                for b in vals:
                    if not math.isfinite(b):
                        if b < 0:  # -inf boundary: every int key is >= it
                            thresholds.append(-2**63)
                            continue
                        return None  # +inf / nan: no int threshold
                    t = math.ceil(b)
                    if not -2**63 <= t < 2**63:
                        return None
                    thresholds.append(t)
                levels.append(np.array(thresholds, dtype=np.int64))
            else:
                return None

        def locate(keys, _levels=levels):
            index = np.zeros(len(keys), dtype=np.intp)
            for level_bounds in _levels:
                bounds = level_bounds[index]
                index += index
                index += keys >= bounds
            return index

        return locate

    def overlapping_nodes(self, level: int, query: Box) -> list[int]:
        """Indexes of level-``level`` nodes whose boxes overlap the query.

        This is the set of "intervals" the Combine procedure must cover with
        one section-``level`` cell each before it may emit.
        """
        self._check_level(level)
        if self.dims == 1 and query.dims == 1:
            # 1-D fast path: the level's node intervals partition the
            # domain in index order, so their lo bounds (and, by
            # contiguity, their hi bounds) are non-decreasing and the
            # overlap predicate ``lo < q.hi and q.lo < hi and lo < hi``
            # bounds to a bisected index range.  Same result, element for
            # element, as the generic scan below.
            bounds = self._level_bounds.get(level)
            if bounds is None:
                boxes = self._boxes[level - 1]
                bounds = (
                    [box.sides[0].lo for box in boxes],
                    [box.sides[0].hi for box in boxes],
                )
                self._level_bounds[level] = bounds
            los, his = bounds
            side = query.sides[0]
            if side.is_empty:
                return []
            first = bisect_right(his, side.lo)
            last = bisect_left(los, side.hi)
            return [j for j in range(first, last) if los[j] < his[j]]
        return [
            j
            for j, box in enumerate(self._boxes[level - 1])
            if box.overlaps(query)
        ]

    # -- counts ----------------------------------------------------------------

    @property
    def has_counts(self) -> bool:
        return self._cell_counts is not None

    def attach_counts(self, cell_counts: Sequence[int]) -> None:
        """Attach per-cell record counts computed during construction Phase 2.

        Counts are tallied while records are being decorated, which happens
        after the split keys (and hence this object) already exist; this is
        the one mutation the class allows, and only once.
        """
        if self._cell_counts is not None:
            raise IndexBuildError("cell counts already attached")
        if len(cell_counts) != self.num_leaves:
            raise IndexBuildError(
                f"need {self.num_leaves} cell counts, got {len(cell_counts)}"
            )
        self._cell_counts = tuple(cell_counts)

    def cell_count(self, leaf: int) -> int:
        """Exact number of records whose key lies in leaf cell ``leaf``."""
        if self._cell_counts is None:
            raise QueryError("this geometry was built without cell counts")
        return self._cell_counts[leaf]

    def node_count(self, level: int, index: int) -> int:
        """Records under node (level, index) — the paper's cnt_l / cnt_r."""
        if self._cell_counts is None:
            raise QueryError("this geometry was built without cell counts")
        self._check_level(level)
        span = self.arity ** (self.height - level)
        start = index * span
        return sum(self._cell_counts[start:start + span])

    def estimate_count(self, query: Box) -> float:
        """Estimate ``|σ_Q(R)|`` from per-cell counts.

        Cells fully inside the query contribute exactly; boundary cells
        contribute proportionally to the overlapped volume (uniform
        interpolation).  Online aggregation uses this as the population
        size for its confidence intervals (paper Section III.B).
        """
        if self._cell_counts is None:
            raise QueryError("this geometry was built without cell counts")
        total = 0.0
        for leaf in self.overlapping_nodes(self.height, query):
            box = self.leaf_box(leaf)
            count = self._cell_counts[leaf]
            if query.contains(box):
                total += count
            else:
                part = box.intersect(query)
                volume = box.volume()
                if volume > 0 and math.isfinite(volume):
                    total += count * part.volume() / volume
                else:  # unbounded or degenerate cell: count it whole
                    total += count
        return total

    # -- internals ---------------------------------------------------------

    def _compute_boxes(self) -> list[list[Box]]:
        boxes: list[list[Box]] = [[self.domain]]
        for level in range(1, self.height):
            axis = (level - 1) % self.dims
            next_boxes: list[Box] = []
            for index, box in enumerate(boxes[-1]):
                remainder = box
                for boundary in self._splits[level - 1][index]:
                    # Clamp: duplicated keys can push a quantile outside the
                    # shrinking remainder; the resulting child box is empty.
                    side = remainder.sides[axis]
                    clamped = min(max(boundary, side.lo), side.hi)
                    low, remainder = remainder.split_at(axis, clamped)
                    next_boxes.append(low)
                next_boxes.append(remainder)
            boxes.append(next_boxes)
        return boxes

    def _check_level(self, level: int) -> None:
        if not 1 <= level <= self.height:
            raise QueryError(f"level {level} out of range 1..{self.height}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TreeGeometry(height={self.height}, dims={self.dims}, "
            f"arity={self.arity}, leaves={self.num_leaves})"
        )
