"""Node views of the ACE Tree.

The on-disk reality of the tree is the :class:`TreeGeometry` (split keys +
counts) and the serialized leaf store; these classes are the typed views the
query algorithms and tests work with.

A leaf node (paper Section III.A) has ``h`` *sections*; section ``s`` holds
a Bernoulli random sample of every record whose key falls in the box of the
leaf's level-``s`` ancestor.  Section sizes are variable — fixing them would
destroy the appendability/combinability properties (paper Section V.F) — so
a leaf is a variable-size byte object that may span disk pages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.intervals import Box
from ..core.records import PageView, Record, Schema
from .geometry import TreeGeometry

__all__ = ["LeafNode", "LeafView", "InternalNodeView"]


@dataclass(frozen=True, slots=True)
class LeafNode:
    """One materialized leaf: ``sections[s-1]`` is section ``s``'s records."""

    index: int
    sections: tuple[tuple[Record, ...], ...]

    @property
    def height(self) -> int:
        """Number of sections (the tree height ``h``)."""
        return len(self.sections)

    @property
    def num_records(self) -> int:
        return sum(len(section) for section in self.sections)

    def section(self, s: int) -> tuple[Record, ...]:
        """Records of section ``s`` (1-based, matching the paper's L.S_s)."""
        if not 1 <= s <= len(self.sections):
            raise IndexError(f"section {s} out of range 1..{len(self.sections)}")
        return self.sections[s - 1]

    def section_range(self, s: int, geometry: TreeGeometry) -> Box:
        """The box L.R_s sampled by section ``s`` of this leaf."""
        return geometry.section_box(self.index, s)


class LeafView:
    """A zero-copy columnar view of one serialized leaf.

    Where :class:`LeafNode` is the fully-decoded leaf (every record a
    Python tuple), a ``LeafView`` keeps the leaf's record payload as raw
    bytes and exposes it through :class:`~repro.core.records.PageView` —
    key columns come out as numpy views, and individual records are only
    decoded when a consumer asks (``section_records`` / ``gather`` /
    ``to_leaf_node``).  This is the handle the query hot path and the
    sample-reuse cache share: both operate on whole cells as column
    batches and defer per-record materialization.

    The record payload is contiguous: section ``s`` (1-based) occupies
    rows ``starts[s-1]:starts[s]`` of the leaf's record array.
    """

    __slots__ = ("index", "schema", "counts", "starts", "byte_size",
                 "page", "_node", "_starts_array")

    def __init__(
        self,
        index: int,
        schema: Schema,
        payload: bytes | memoryview,
        counts: tuple[int, ...],
        byte_size: int | None = None,
    ) -> None:
        self.index = index
        self.schema = schema
        self.counts = counts
        starts = [0]
        for n in counts:
            starts.append(starts[-1] + n)
        self.starts: tuple[int, ...] = tuple(starts)
        #: Serialized leaf size (header + counts + records); what the
        #: sample cache charges against its byte budget.
        self.byte_size = (
            byte_size if byte_size is not None
            else starts[-1] * schema.record_size
        )
        self.page = PageView(schema, payload, starts[-1])
        self._node: LeafNode | None = None
        self._starts_array = None

    @property
    def starts_array(self):
        """``starts`` as an int64 ndarray, built once per view.

        The per-leaf filter pass searchsorts the matched row numbers
        against this; caching it keeps the (memoized) view free of a
        repeated tuple->array conversion on every query."""
        if self._starts_array is None:
            self._starts_array = np.asarray(self.starts, dtype=np.int64)
        return self._starts_array

    @property
    def height(self) -> int:
        """Number of sections (the tree height ``h``)."""
        return len(self.counts)

    @property
    def num_records(self) -> int:
        return self.starts[-1]

    def section_bounds(self, s: int) -> tuple[int, int]:
        """Row range ``[lo, hi)`` of section ``s`` (1-based) in the payload."""
        if not 1 <= s <= len(self.counts):
            raise IndexError(f"section {s} out of range 1..{len(self.counts)}")
        return self.starts[s - 1], self.starts[s]

    def column_array(self, name: str):
        """One key column across *all* sections as a numpy view."""
        return self.page.column_array(name)

    def gather(self, indices) -> list[Record]:
        """Decode just the rows at ``indices`` of the leaf's record array."""
        return self.page.gather(indices)

    def section_records(self, s: int) -> tuple[Record, ...]:
        """Fully-decoded records of section ``s`` (1-based)."""
        return self.to_leaf_node().section(s)

    def to_leaf_node(self) -> LeafNode:
        """Materialize (and cache) the eager :class:`LeafNode` twin.

        Record-for-record identical to decoding the serialized sections
        directly; the batch decode runs once per view.
        """
        if self._node is None:
            records = self.page.records
            self._node = LeafNode(
                index=self.index,
                sections=tuple(
                    tuple(records[lo:hi])
                    for lo, hi in zip(self.starts, self.starts[1:])
                ),
            )
        return self._node


@dataclass(frozen=True, slots=True)
class InternalNodeView:
    """A read-only view of one internal node, in the paper's vocabulary.

    Carries the node's range ``R``, split key ``k``, and the child record
    counts ``cnt_l`` / ``cnt_r`` used by online aggregation to size the
    population being sampled.
    """

    level: int
    index: int
    box: Box
    key: float
    count_left: int
    count_right: int

    @staticmethod
    def from_geometry(
        geometry: TreeGeometry, level: int, index: int
    ) -> "InternalNodeView":
        """Materialize the view of internal node (level, index)."""
        return InternalNodeView(
            level=level,
            index=index,
            box=geometry.node_box(level, index),
            key=geometry.split_key(level, index),
            count_left=geometry.node_count(level + 1, 2 * index),
            count_right=geometry.node_count(level + 1, 2 * index + 1),
        )

    @property
    def count(self) -> int:
        """Total records under this node."""
        return self.count_left + self.count_right
