"""Node views of the ACE Tree.

The on-disk reality of the tree is the :class:`TreeGeometry` (split keys +
counts) and the serialized leaf store; these classes are the typed views the
query algorithms and tests work with.

A leaf node (paper Section III.A) has ``h`` *sections*; section ``s`` holds
a Bernoulli random sample of every record whose key falls in the box of the
leaf's level-``s`` ancestor.  Section sizes are variable — fixing them would
destroy the appendability/combinability properties (paper Section V.F) — so
a leaf is a variable-size byte object that may span disk pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.intervals import Box
from ..core.records import Record
from .geometry import TreeGeometry

__all__ = ["LeafNode", "InternalNodeView"]


@dataclass(frozen=True, slots=True)
class LeafNode:
    """One materialized leaf: ``sections[s-1]`` is section ``s``'s records."""

    index: int
    sections: tuple[tuple[Record, ...], ...]

    @property
    def height(self) -> int:
        """Number of sections (the tree height ``h``)."""
        return len(self.sections)

    @property
    def num_records(self) -> int:
        return sum(len(section) for section in self.sections)

    def section(self, s: int) -> tuple[Record, ...]:
        """Records of section ``s`` (1-based, matching the paper's L.S_s)."""
        if not 1 <= s <= len(self.sections):
            raise IndexError(f"section {s} out of range 1..{len(self.sections)}")
        return self.sections[s - 1]

    def section_range(self, s: int, geometry: TreeGeometry) -> Box:
        """The box L.R_s sampled by section ``s`` of this leaf."""
        return geometry.section_box(self.index, s)


@dataclass(frozen=True, slots=True)
class InternalNodeView:
    """A read-only view of one internal node, in the paper's vocabulary.

    Carries the node's range ``R``, split key ``k``, and the child record
    counts ``cnt_l`` / ``cnt_r`` used by online aggregation to size the
    population being sampled.
    """

    level: int
    index: int
    box: Box
    key: float
    count_left: int
    count_right: int

    @staticmethod
    def from_geometry(
        geometry: TreeGeometry, level: int, index: int
    ) -> "InternalNodeView":
        """Materialize the view of internal node (level, index)."""
        return InternalNodeView(
            level=level,
            index=index,
            box=geometry.node_box(level, index),
            key=geometry.split_key(level, index),
            count_left=geometry.node_count(level + 1, 2 * index),
            count_right=geometry.node_count(level + 1, 2 * index + 1),
        )

    @property
    def count(self) -> int:
        """Total records under this node."""
        return self.count_left + self.count_right
