"""Deterministic multi-tenant serve scheduler (ROADMAP item 1).

A discrete-event loop over the **simulated clock** that interleaves many
concurrent Shuttle traversals (:class:`~repro.acetree.query.SampleStream`)
sharing one tree, buffer pool, and disk:

* **Arrivals** come from a seeded :class:`~repro.serve.workload.Workload`
  — open-loop (arrival times fixed up front) or closed-loop (each tenant
  thinks for one gap after a completion, then submits its next query).
* **Admission control**: a bounded global queue of admitted-but-unserved
  requests; overflow is rejected and counted, never silently dropped.
* **Fair scheduling**: deficit round robin in *page-read quanta*.  Each
  tenant in the ring accumulates ``quantum_pages`` of deficit per turn and
  spends it on traversal steps (one stab = one leaf read = one step); a
  step that charges no pages (cache hit, final flush) spends one unit so
  quanta always terminate.  Served tenants rotate to the back of the ring
  and admissions append, so a runnable tenant is served within ring-size
  turns — the wait bound the serve fuzz oracle enforces.
* **Budgets**: a per-tenant page ledger enforced against the scheduler's
  own step accounting and audited, tenant by tenant, against the
  :data:`~repro.obs.cost.COST` accountant's attributed ledger — a charge
  attributed to the wrong tenant fails the audit even though the global
  conservation check still balances.
* **Completion**: a query finishes when its time-to-accuracy target is
  met (the PR 4 stopping rule, via
  :class:`~repro.obs.quality.StreamQualityMonitor`), when its stream is
  exhausted, or at the sample cap.

Every step of every admitted query runs under
``CONTEXT.push(tenant=..., query=...)``, so traces, labeled metrics,
quality records, SLO burn rates, and cost attribution all see the serving
interleaving for free.

**Determinism.**  The loop has no wall-clock reads and no unseeded
randomness: event order is (simulated time, submission sequence), ring
order is admission order under move-to-back rotation, and each stream's
emitted records depend only on
its own seed — so a same-seed run is bit-identical, which ``trace diff``
proves and the CI serve-smoke job pins.  The solo-vs-interleaved property
(each tenant's record stream equals what it would have gotten alone) is
the ``testkit fuzz --serve`` differential oracle.

**Mutation hooks.**  ``_pick_index`` (ring choice) and ``_step_labels``
(context labels per step) exist so the testkit's unfair-scheduler and
budget-leak mutants can break exactly one invariant each; the fuzz
harness must catch both.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..acetree.query import SampleStream
from ..core.intervals import Box
from ..obs.context import CONTEXT
from ..obs.cost import COST
from ..obs.quality import QualityConfig, QualitySession
from ..obs.tracer import TRACER
from .workload import ServeRequest, Workload

__all__ = ["QueryRun", "ServeConfig", "ServeReport", "ServeScheduler", "TenantState"]


@dataclass(frozen=True)
class ServeConfig:
    """Scheduler policy knobs (all deterministic)."""

    #: Bounded admission queue: max admitted-but-unfinished requests
    #: (backlogs + active runs) across all tenants.
    queue_cap: int = 256
    #: DRR quantum, in page reads per scheduling turn.
    quantum_pages: int = 8
    #: Per-tenant page budget; ``None`` disables enforcement.
    page_budget: int | None = None
    #: Relative CI half-width at which a query is "answered"; must be one
    #: of the monitor's ``tta_targets``.  ``None`` drains to exhaustion.
    target_epsilon: float | None = 0.05
    #: Per-query sample cap (safety valve for selective queries whose CI
    #: cannot reach the target before the stream drains anyway).
    max_samples: int | None = 4000
    #: Hard stop after this many scheduler steps; ``None`` = run to done.
    max_steps: int | None = None
    #: Forwarded to every stream (serve keeps sampling under lost leaves).
    lost_leaf_policy: str = "skip"


@dataclass
class QueryRun:
    """One admitted query in flight."""

    request: ServeRequest
    stream: object
    monitor: object
    arrival: float
    #: Pages this run charged (scheduler ledger, keyed by the TRUE tenant).
    pages: int = 0
    steps: int = 0
    samples: int = 0
    finished: bool = False
    #: "target" | "exhausted" | "sample-cap" | "budget" | "horizon"
    reason: str = ""
    completed_clock: float | None = None
    #: Emitted batches, kept only when the scheduler collects records for
    #: the differential oracle.
    batches: list = field(default_factory=list)


@dataclass
class TenantState:
    """Everything the scheduler tracks per tenant."""

    name: str
    #: Closed-loop requests not yet submitted (open-loop leaves it empty).
    pending: deque = field(default_factory=deque)
    #: Admitted requests waiting for the tenant's active slot.
    backlog: deque = field(default_factory=deque)
    active: QueryRun | None = None
    deficit: float = 0.0
    pages: int = 0
    budget_exhausted: bool = False
    arrived: int = 0
    admitted: int = 0
    rejected_queue: int = 0
    rejected_budget: int = 0
    completed: int = 0
    target_hits: int = 0
    #: Completed runs' time-to-target (sim seconds, includes queue wait).
    tta: list = field(default_factory=list)
    #: Consecutive scheduling turns spent runnable but not chosen; the
    #: running maximum is the starvation signal the fuzz oracle bounds.
    waiting: int = 0
    max_waiting: int = 0
    finished_runs: list = field(default_factory=list)

    def has_work(self) -> bool:
        return self.active is not None or bool(self.backlog)


def percentile(values: list, q: float) -> float | None:
    """Nearest-rank percentile of ``values`` at quantile ``q`` in (0, 1]."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
    return ordered[rank - 1]


@dataclass
class ServeReport:
    """Everything a serve run produced, JSON-ready via :meth:`as_dict`."""

    clock: float
    steps: int
    turns: int
    tenants: dict
    budget_audit: dict
    slo: list = field(default_factory=list)

    def totals(self) -> dict:
        keys = ("arrived", "admitted", "rejected_queue", "rejected_budget",
                "completed", "target_hits", "pages")
        out = {k: 0 for k in keys}
        for stats in self.tenants.values():
            for k in keys:
                out[k] += stats[k]
        out["max_waiting"] = max(
            (s["max_waiting"] for s in self.tenants.values()), default=0
        )
        return out

    def tta_values(self) -> list:
        out = []
        for stats in self.tenants.values():
            out.extend(stats["tta"])
        return out

    def as_dict(self) -> dict:
        tta = self.tta_values()
        return {
            "kind": "serve-report",
            "v": 1,
            "clock": self.clock,
            "steps": self.steps,
            "turns": self.turns,
            "totals": self.totals(),
            "tta_p50_sim_s": percentile(tta, 0.50),
            "tta_p99_sim_s": percentile(tta, 0.99),
            "tenants": self.tenants,
            "budget_audit": self.budget_audit,
            "slo": self.slo,
        }


class ServeScheduler:  # repro: shared[owner=serve.scheduler] the owner itself: all shared engine state is mutated only inside its step quanta
    """Deficit-round-robin serve loop over one tree and its disk.

    Args:
        tree: the built :class:`~repro.acetree.tree.AceTree` to serve from.
        workload: seeded request/arrival source.
        config: scheduling policy.
        session: quality session receiving one monitor per admitted query
            (a fresh one is created when omitted).
        quality_config: monitor knobs for the default session.
        collect_records: keep each run's emitted batches (the differential
            oracle needs the exact record sequences; the CLI does not).
        step_guard: zero-arg callable returning a context manager entered
            around every scheduling quantum (stream creation included) —
            the fuzz harness passes the access-ordinal sanitizer's
            ``writer("serve-scheduler")`` here, making scheduler ownership
            of the shared engine state a *checked* claim rather than a
            comment.
    """

    def __init__(
        self,
        tree,
        workload: Workload,
        config: ServeConfig | None = None,
        *,
        session: QualitySession | None = None,
        quality_config: QualityConfig | None = None,
        collect_records: bool = False,
        step_guard=None,
    ) -> None:
        self.tree = tree
        self.disk = tree.disk
        self.workload = workload
        self.config = config if config is not None else ServeConfig()
        if session is None:
            session = QualitySession(
                config=quality_config if quality_config is not None
                else QualityConfig()
            )
        self.session = session
        self.collect_records = collect_records
        self._step_guard = step_guard if step_guard is not None else nullcontext
        self._key_field = tree.key_fields[0]
        self._key_of = tree.schema.key_getter(self._key_field)
        self.tenants: dict[str, TenantState] = {
            name: TenantState(name) for name in workload.tenant_names()
        }
        #: (arrival time, submission seq, request) min-heap; ties break on
        #: the deterministic submission sequence.
        self._events: list = []
        self._seq = 0
        #: Ring of tenant names with work: served tenants rotate to the
        #: back, admissions append — so a runnable tenant's wait is
        #: provably bounded by the ring size.
        self._ring: list[str] = []
        self._queued = 0
        self.steps = 0
        self.turns = 0
        self._cost_armed = COST.enabled

    # -- event seeding --------------------------------------------------

    def _push_event(self, when: float, request: ServeRequest) -> None:
        heapq.heappush(self._events, (when, self._seq, request))
        self._seq += 1

    def _seed_events(self) -> None:
        workload = self.workload
        if workload.spec.closed_loop:
            # Tenant order here fixes the submission-sequence tiebreak.
            for name in workload.tenant_names():
                state = self.tenants[name]
                state.pending.extend(workload.requests(name))
                first = state.pending.popleft()
                gap = workload.next_gap(name, 0.0)
                self._push_event(gap, ServeRequest(
                    tenant=first.tenant, query_id=first.query_id,
                    lo=first.lo, hi=first.hi,
                    stream_seed=first.stream_seed, arrival=gap,
                ))
        else:
            for name in workload.tenant_names():
                for request in workload.open_arrivals(name):
                    self._push_event(request.arrival, request)

    # -- admission ------------------------------------------------------

    def _admit_due(self) -> None:
        while self._events and self._events[0][0] <= self.disk.clock:
            _, _, request = heapq.heappop(self._events)
            state = self.tenants[request.tenant]
            state.arrived += 1
            if state.budget_exhausted:
                state.rejected_budget += 1
                continue
            if self._queued >= self.config.queue_cap:
                state.rejected_queue += 1
                if TRACER.enabled:
                    TRACER.count("serve.rejected")
                continue
            state.admitted += 1
            self._queued += 1
            state.backlog.append(request)
            if state.name not in self._ring:
                self._ring.append(state.name)

    # -- scheduling -----------------------------------------------------

    def _pick_index(self) -> int:
        """Ring index to serve next.  Default: the head of the ring.

        Tenants rotate move-to-back after each quantum, so the default is
        exact round robin with a wait bound of ``ring size - 1`` turns.
        The unfair-scheduler mutant overrides this to skip a victim; the
        per-tenant ``max_waiting`` counter is how the fuzz oracle notices.
        """
        return 0

    def _step_labels(self, run: QueryRun) -> dict:
        """Context labels a traversal step runs under.

        The budget-leak mutant overrides this to attribute a tenant's
        pages to its neighbour; the per-tenant audit against
        :meth:`CostAccountant.reads_by_label` is how that is caught.
        """
        return {"tenant": run.request.tenant, "query": run.request.query_id}

    def _activate(self, state: TenantState) -> QueryRun | None:
        if state.active is not None:
            return state.active
        if not state.backlog:
            return None
        request = state.backlog.popleft()
        box = Box.from_bounds([request.lo], [request.hi])
        with CONTEXT.push(tenant=request.tenant, query=request.query_id):
            stream = SampleStream(
                self.tree, box, seed=request.stream_seed,
                lost_leaf_policy=self.config.lost_leaf_policy,
            )
            monitor = self.session.monitor(
                label=f"{request.tenant}/{request.query_id}",
                key_of=self._key_of,
                lo=request.lo,
                hi=request.hi,
                group=request.tenant,
                population=self.tree.estimate_count(box),
            )
        # TTA counts from submission, so queue wait is part of the answer
        # latency a tenant experiences.
        monitor.start_sim = request.arrival
        state.active = QueryRun(
            request=request, stream=stream, monitor=monitor,
            arrival=request.arrival,
        )
        return state.active

    def _step(self, run: QueryRun) -> int:
        """One traversal step under the run's context; returns pages read."""
        disk = self.disk
        config = self.config
        with CONTEXT.push(**self._step_labels(run)):
            before = disk.stats.page_reads
            with TRACER.span("serve.step", disk=disk) as sp:
                try:
                    batch = next(run.stream)
                except StopIteration:
                    batch = None
                pages = disk.stats.page_reads - before
                if sp is not None:
                    sp.attrs["pages"] = pages
            run.steps += 1
            self.steps += 1
            if batch is None:
                self._finish(run, "exhausted")
                return pages
            run.samples += batch.count
            if self.collect_records:
                run.batches.append(batch)
            run.monitor.observe_batch(batch.records, batch.clock)
            if self._target_met(run):
                self._finish(run, "target")
            elif run.stream.exhausted:
                self._finish(run, "exhausted")
            elif (config.max_samples is not None
                  and run.samples >= config.max_samples):
                self._finish(run, "sample-cap")
        return pages

    def _target_met(self, run: QueryRun) -> bool:
        target = self.config.target_epsilon
        if target is None:
            return False
        return any(
            record.epsilon <= target + 1e-12
            for record in run.monitor.estimator.tta
        )

    def _finish(self, run: QueryRun, reason: str) -> None:
        run.finished = True
        run.reason = reason
        run.completed_clock = self.disk.clock
        if run.stream.degraded and not run.monitor.degraded:
            run.monitor.mark_degraded(
                f"stream degraded (lost leaves: {run.stream.lost_leaves})"
            )
        run.monitor.finalize()
        state = self.tenants[run.request.tenant]
        state.completed += 1
        self._queued -= 1
        if reason == "target":
            state.target_hits += 1
            target = self.config.target_epsilon
            hit = min(
                (r for r in run.monitor.estimator.tta
                 if r.epsilon <= target + 1e-12),
                key=lambda r: r.epsilon,
            )
            state.tta.append(hit.sim_seconds)
        state.finished_runs.append(run)
        state.active = None
        if TRACER.enabled:
            TRACER.count("serve.completed")
        # Closed loop: the completion is what triggers the next submission.
        if self.workload.spec.closed_loop and state.pending:
            nxt = state.pending.popleft()
            when = self.disk.clock + self.workload.next_gap(
                state.name, self.disk.clock
            )
            self._push_event(when, ServeRequest(
                tenant=nxt.tenant, query_id=nxt.query_id,
                lo=nxt.lo, hi=nxt.hi,
                stream_seed=nxt.stream_seed, arrival=when,
            ))

    def _stop_tenant_budget(self, state: TenantState) -> None:
        """Budget exhausted: terminate the active run, deny the backlog."""
        state.budget_exhausted = True
        run = state.active
        if run is not None:
            run.monitor.mark_degraded(
                f"page budget exhausted after {state.pages} pages"
            )
            self._finish(run, "budget")
            # _finish records a completion; a budget stop is not one.
            state.completed -= 1
            state.finished_runs[-1].reason = "budget"
        while state.backlog:
            state.backlog.popleft()
            state.rejected_budget += 1
            self._queued -= 1

    def _serve_quantum(self, state: TenantState) -> None:
        config = self.config
        state.deficit += config.quantum_pages
        if self.disk.can_fault:
            # Scope injected-fault ordinals to the tenant for the whole
            # quantum (stream creation included), so a tenant's fault
            # schedule replays fault-for-fault across interleavings.
            self.disk.scope = state.name
        with self._step_guard():
            while state.deficit > 0 and state.has_work():
                run = self._activate(state)
                if run is None:  # pragma: no cover - has_work() guards this
                    break
                pages = self._step(run)
                # A free step (cache hit, flush) still spends one unit so
                # the quantum terminates; a multi-page leaf spends its true
                # cost.
                state.deficit -= max(pages, 1)
                state.pages += pages
                run.pages += pages
                budget = config.page_budget
                if (budget is not None and state.pages >= budget
                        and not state.budget_exhausted):
                    self._stop_tenant_budget(state)
                    break
        if not state.has_work():
            # Standard DRR: a tenant leaving the ring forfeits its deficit.
            state.deficit = 0.0

    # -- the loop -------------------------------------------------------

    def run(self) -> ServeReport:
        self._seed_events()
        config = self.config
        disk = self.disk
        while True:
            self._admit_due()
            self._ring = [n for n in self._ring if self.tenants[n].has_work()]
            if not self._ring:
                if not self._events:
                    break
                # Idle: jump the simulated clock to the next arrival.
                disk.advance_clock(self._events[0][0])
                continue
            index = self._pick_index() % len(self._ring)
            name = self._ring.pop(index)
            self.tenants[name].waiting = 0
            for other in self._ring:
                state = self.tenants[other]
                state.waiting += 1
                if state.waiting > state.max_waiting:
                    state.max_waiting = state.waiting
            self.turns += 1
            self._serve_quantum(self.tenants[name])
            if self.tenants[name].has_work():
                self._ring.append(name)
            if config.max_steps is not None and self.steps >= config.max_steps:
                self._abandon_rest("horizon")
                break
        return self._report()

    def _abandon_rest(self, reason: str) -> None:
        """Horizon hit: finalize whatever is still in flight, unanswered."""
        for state in self.tenants.values():
            run = state.active
            if run is not None:
                run.finished = True
                run.reason = reason
                run.monitor.finalize()
                state.finished_runs.append(run)
                state.active = None
                self._queued -= 1

    # -- reporting ------------------------------------------------------

    def budget_audit(self) -> dict:
        """Reconcile the scheduler's ledger with cost attribution.

        Only meaningful when the accountant was armed for the whole run
        (``checked`` says so); then every tenant's scheduler-counted pages
        must equal the pages :data:`COST` attributed to that tenant label.
        """
        checked = self._cost_armed and (COST.enabled or bool(
            COST.reads_by_label()
        ))
        attributed = COST.reads_by_label("tenant") if checked else {}
        per_tenant = {}
        ok = True
        for name, state in sorted(self.tenants.items()):
            entry = {
                "scheduler": state.pages,
                "attributed": attributed.get(name, 0) if checked else None,
            }
            if checked:
                entry["ok"] = entry["scheduler"] == entry["attributed"]
                ok = ok and entry["ok"]
            per_tenant[name] = entry
        # Attribution to a label no tenant owns is a leak too.
        stray = sorted(set(attributed) - set(self.tenants)) if checked else []
        if stray:
            ok = False
        return {
            "checked": checked,
            "ok": ok if checked else None,
            "stray_tenants": stray,
            "tenants": per_tenant,
        }

    def _report(self) -> ServeReport:
        self.session.finalize()
        tenants = {}
        for name, state in sorted(self.tenants.items()):
            tenants[name] = {
                "arrived": state.arrived,
                "admitted": state.admitted,
                "rejected_queue": state.rejected_queue,
                "rejected_budget": state.rejected_budget,
                "completed": state.completed,
                "target_hits": state.target_hits,
                "pages": state.pages,
                "budget_exhausted": state.budget_exhausted,
                "max_waiting": state.max_waiting,
                "tta": list(state.tta),
                "tta_p50_sim_s": percentile(state.tta, 0.50),
                "tta_p99_sim_s": percentile(state.tta, 0.99),
            }
        return ServeReport(
            clock=self.disk.clock,
            steps=self.steps,
            turns=self.turns,
            tenants=tenants,
            budget_audit=self.budget_audit(),
        )
