"""``python -m repro serve``: run a seeded multi-tenant serve workload.

Builds a small SALE relation and ACE tree, replays a seeded arrival
workload through the :class:`~repro.serve.scheduler.ServeScheduler` under
the dual-clock tracer, and reports:

* per-tenant time-to-accuracy p50/p99 (simulated seconds, queue wait
  included) through the standard quality monitors;
* SLO status + burn-rate alerts over the run's quality records;
* the per-tenant page-budget audit against the cost accountant;
* the usual validated JSONL/Chrome trace export.

Two runs with the same seed produce bit-identical traces — the CI
serve-smoke job proves it with ``trace diff``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from .scheduler import ServeConfig, ServeReport, ServeScheduler
from .workload import WORKLOAD_SHAPES, Workload, WorkloadSpec

__all__ = ["add_serve_parser", "render_serve_report", "run_serve"]


def add_serve_parser(sub) -> None:
    serve = sub.add_parser(
        "serve",
        help="serve a seeded multi-tenant workload through the deterministic "
        "scheduler and report per-tenant time-to-accuracy (docs/SERVING.md)",
    )
    serve.add_argument(
        "--workload", choices=WORKLOAD_SHAPES, default="bursty",
        help="arrival shape (default: bursty)",
    )
    serve.add_argument(
        "--tenants", type=int, default=8,
        help="number of tenants (default 8)",
    )
    serve.add_argument(
        "--queries", type=int, default=2,
        help="queries per tenant (default 2)",
    )
    serve.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    serve.add_argument(
        "--closed-loop", action="store_true",
        help="closed-loop arrivals: each tenant submits its next query one "
        "think-gap after the previous one completes (default: open-loop)",
    )
    serve.add_argument(
        "--records", type=int, default=8000,
        help="SALE relation size served from (default 8000)",
    )
    serve.add_argument(
        "--queue-cap", type=int, default=256,
        help="bounded admission queue size (default 256)",
    )
    serve.add_argument(
        "--quantum", type=int, default=8,
        help="DRR quantum in page reads (default 8)",
    )
    serve.add_argument(
        "--budget", type=int, default=None,
        help="per-tenant page budget (default: unlimited)",
    )
    serve.add_argument(
        "--epsilon", type=float, default=0.05,
        help="relative CI half-width at which a query is answered "
        "(default 0.05; 0 disables and drains streams to exhaustion)",
    )
    serve.add_argument(
        "--max-samples", type=int, default=4000,
        help="per-query sample cap (default 4000)",
    )
    serve.add_argument(
        "--out", type=Path, default=Path("serve.jsonl"),
        help="JSONL trace file to write (default: serve.jsonl); the serve "
        "report JSON goes to the same name with a .report.json suffix",
    )
    serve.add_argument(
        "--top", type=int, default=12,
        help="rows per report table (default 12)",
    )


def _build_serving_tree(records: int, seed: int):
    """A fresh disk + SALE relation + ACE tree, clock zeroed post-build."""
    from ..acetree import AceBuildParams, build_ace_tree
    from ..storage.cost import CostModel
    from ..storage.disk import SimulatedDisk
    from ..workloads import generate_sale_1d

    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
    sale = generate_sale_1d(disk, num_records=records, seed=seed)
    tree = build_ace_tree(sale, AceBuildParams(key_fields=("day",), seed=seed))
    disk.reset_clock()
    return tree


def render_serve_report(report: ServeReport, top: int = 12) -> str:
    data = report.as_dict()
    totals = data["totals"]
    lines = []
    lines.append("serve report")
    lines.append(
        f"  sim clock {data['clock']:.4f}s   steps {data['steps']}   "
        f"turns {data['turns']}"
    )
    lines.append(
        f"  arrived {totals['arrived']}   admitted {totals['admitted']}   "
        f"rejected queue/budget {totals['rejected_queue']}"
        f"/{totals['rejected_budget']}   completed {totals['completed']}"
    )
    p50, p99 = data["tta_p50_sim_s"], data["tta_p99_sim_s"]
    lines.append(
        "  time-to-accuracy (sim s, queue wait included): "
        f"p50 {p50:.4f}   p99 {p99:.4f}" if p50 is not None else
        "  time-to-accuracy: no query reached the target"
    )
    lines.append(
        f"  max scheduling-turn wait of any runnable tenant: "
        f"{totals['max_waiting']}"
    )
    audit = data["budget_audit"]
    if audit["checked"]:
        verdict = "ok" if audit["ok"] else "LEAK DETECTED"
        lines.append(f"  page-budget audit vs obs.cost: {verdict}")
        if not audit["ok"]:
            for name, entry in audit["tenants"].items():
                if entry.get("ok") is False:
                    lines.append(
                        f"    {name}: scheduler {entry['scheduler']} != "
                        f"attributed {entry['attributed']}"
                    )
            for name in audit["stray_tenants"]:
                lines.append(f"    stray attributed tenant label: {name}")
    else:
        lines.append("  page-budget audit: skipped (accountant not armed)")
    lines.append("")
    lines.append(f"  {'tenant':8s} {'done':>4s} {'hit':>4s} {'pages':>7s} "
                 f"{'p50':>8s} {'p99':>8s} {'rejQ':>5s} {'rejB':>5s}")
    for name, stats in list(data["tenants"].items())[:top]:
        p50 = stats["tta_p50_sim_s"]
        p99 = stats["tta_p99_sim_s"]
        lines.append(
            f"  {name:8s} {stats['completed']:>4d} {stats['target_hits']:>4d} "
            f"{stats['pages']:>7d} "
            + (f"{p50:>8.4f} " if p50 is not None else f"{'-':>8s} ")
            + (f"{p99:>8.4f} " if p99 is not None else f"{'-':>8s} ")
            + f"{stats['rejected_queue']:>5d} {stats['rejected_budget']:>5d}"
        )
    hidden = len(data["tenants"]) - top
    if hidden > 0:
        lines.append(f"  ... {hidden} more tenants in the report JSON")
    return "\n".join(lines)


def _render_slo_lines(statuses) -> str:
    """A compact SLO table: one row per (objective, label set)."""
    if not statuses:
        return "slo: no objectives evaluated"
    lines = ["slo status (burn-rate alerts marked FIRING)"]
    for status in statuses:
        labels = status.labels or "(aggregate)"
        value = "-" if status.value is None else f"{status.value:.3f}"
        flag = "FIRING" if status.firing else "ok"
        lines.append(
            f"  {status.objective:28s} {labels:24s} "
            f"value {value:>7s}  bad {status.bad}/{status.events}  {flag}"
        )
    return "\n".join(lines)


def run_serve(args) -> int:
    from ..bench.cli import _export_trace
    from ..obs import METRICS, QualitySession, TraceRecorder, evaluate_slos

    if args.tenants <= 0 or args.queries <= 0 or args.records <= 0:
        print("serve: --tenants, --queries and --records must be positive",
              file=sys.stderr)
        return 2

    config = ServeConfig(
        queue_cap=args.queue_cap,
        quantum_pages=args.quantum,
        page_budget=args.budget,
        target_epsilon=args.epsilon if args.epsilon > 0 else None,
        max_samples=args.max_samples,
    )

    METRICS.reset()
    recorder = TraceRecorder(metrics=METRICS)
    # Build untraced (like `trace query`): the trace isolates the serving
    # interleaving, so same-seed runs align span-for-span.
    tree = _build_serving_tree(args.records, args.seed)
    # Query bounds live on the indexed key's actual domain.
    domain = tree.geometry.domain.sides[0]
    spec = WorkloadSpec(
        shape=args.workload,
        tenants=args.tenants,
        queries_per_tenant=args.queries,
        closed_loop=args.closed_loop,
        key_lo=domain.lo,
        key_hi=domain.hi,
    )
    session = QualitySession(metrics=METRICS)
    workload = Workload(spec, seed=args.seed)
    with recorder:
        scheduler = ServeScheduler(
            tree, workload, config, session=session,
        )
        report = scheduler.run()

    quality_records = session.records()
    statuses = evaluate_slos(quality=quality_records,
                             metrics=METRICS.snapshot())
    report.slo = [status.as_dict() for status in statuses]

    report_path = args.out.with_suffix(".report.json")
    report_path.write_text(
        json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
    )
    status = _export_trace(recorder, args.out, top=args.top, quality=session)
    print()
    print(render_serve_report(report, top=args.top))
    print(f"\nserve: report JSON -> {report_path}")
    print()
    print(_render_slo_lines(statuses))
    return status
