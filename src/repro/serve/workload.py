"""Seeded arrival workloads for the multi-tenant serve scheduler.

ROADMAP item 1 asks for "millions-of-users traffic shapes": this module
generates the per-tenant request traces the scheduler replays.  Everything
is a pure function of ``(spec, seed)`` through :func:`repro.core.rng.derive_random`,
so a workload is reproducible from the command line (``--workload bursty
--tenants 100 --seed 7``) and two same-seed serve runs are bit-identical.

Shapes (per-tenant inter-arrival gap processes):

``steady``
    Poisson arrivals: exponential gaps with mean ``mean_gap``.
``bursty``
    A two-state process: most gaps are short intra-burst exponentials,
    occasionally a long inter-burst silence — the flash-crowd shape.
``diurnal``
    Exponential gaps whose mean swings sinusoidally with simulated time
    (period ``diurnal_period``), modelling a day/night load curve.
``heavy-tailed``
    Pareto gaps (``alpha=1.5``): most arrivals cluster tightly, a few
    tenants go quiet for a very long time — the self-similar trace shape.

Each shape drives both **open-loop** workloads (arrival times are fixed
up front, load is independent of server progress) and **closed-loop**
workloads (each tenant waits for its previous query to complete, then
thinks for one gap before submitting the next — load self-regulates).

Query bodies are 1-D range predicates over the tree's key domain with a
fixed selectivity; every query carries its own stream seed, so the record
sequence a query emits depends only on the query itself — the property
the solo-vs-interleaved differential oracle (``testkit fuzz --serve``)
checks the scheduler against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.rng import derive_random

__all__ = ["WORKLOAD_SHAPES", "ServeRequest", "Workload", "WorkloadSpec"]

#: Recognized traffic shapes (the ``--workload`` vocabulary).
WORKLOAD_SHAPES: tuple[str, ...] = (
    "steady", "bursty", "diurnal", "heavy-tailed"
)

#: Pareto shape for heavy-tailed gaps; 1 < alpha < 2 gives finite mean,
#: infinite variance — the canonical self-similar traffic regime.
_PARETO_ALPHA = 1.5


@dataclass(frozen=True)
class ServeRequest:
    """One query a tenant submits to the serve scheduler."""

    tenant: str
    query_id: str
    lo: float
    hi: float
    stream_seed: int
    #: Submission time (sim seconds) for open-loop workloads; closed-loop
    #: requests after a tenant's first are submitted at completion + think
    #: time, which only the scheduler knows.
    arrival: float = 0.0


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that determines a workload, minus the seed."""

    shape: str = "bursty"
    tenants: int = 8
    queries_per_tenant: int = 2
    closed_loop: bool = False
    #: Mean per-tenant inter-arrival / think gap in simulated seconds.
    mean_gap: float = 0.05
    #: Query predicate width as a fraction of the key domain.
    selectivity: float = 0.05
    key_lo: float = 0.0
    key_hi: float = 1.0
    #: Sinusoidal period of the ``diurnal`` shape (sim seconds).
    diurnal_period: float = 2.0

    def __post_init__(self) -> None:
        if self.shape not in WORKLOAD_SHAPES:
            raise ValueError(
                f"unknown workload shape {self.shape!r}; "
                f"one of {WORKLOAD_SHAPES}"
            )
        if self.tenants < 1:
            raise ValueError(f"need at least one tenant, got {self.tenants}")
        if self.queries_per_tenant < 1:
            raise ValueError(
                f"need at least one query per tenant, got {self.queries_per_tenant}"
            )
        if self.mean_gap <= 0:
            raise ValueError(f"mean_gap must be positive, got {self.mean_gap}")
        if not 0 < self.selectivity <= 1:
            raise ValueError(
                f"selectivity must be in (0, 1], got {self.selectivity}"
            )
        if not self.key_hi > self.key_lo:
            raise ValueError(
                f"need key_hi > key_lo, got [{self.key_lo}, {self.key_hi})"
            )


@dataclass
class Workload:
    """A materialized workload: requests plus the tenant gap processes.

    Gap streams are consumed lazily (:meth:`next_gap`), one stdlib RNG per
    tenant derived statelessly from ``(seed, shape, tenant)`` — a tenant's
    gap sequence never depends on any other tenant or on scheduler
    progress, which keeps closed-loop runs deterministic too.
    """

    spec: WorkloadSpec
    seed: int = 0
    _gap_rngs: dict = field(default_factory=dict, init=False, repr=False)

    def tenant_names(self) -> list[str]:
        return [f"t{i}" for i in range(self.spec.tenants)]

    def requests(self, tenant: str) -> list[ServeRequest]:
        """The tenant's query sequence (bounds + stream seeds, no arrivals)."""
        spec = self.spec
        rng = derive_random(self.seed, "serve-queries", tenant)
        width = spec.selectivity * (spec.key_hi - spec.key_lo)
        out = []
        for i in range(spec.queries_per_tenant):
            lo = spec.key_lo + rng.random() * (spec.key_hi - spec.key_lo - width)
            out.append(ServeRequest(
                tenant=tenant,
                query_id=f"q{i}",
                lo=lo,
                hi=lo + width,
                stream_seed=rng.getrandbits(32),
            ))
        return out

    def next_gap(self, tenant: str, now: float) -> float:
        """Draw the tenant's next inter-arrival (or think) gap at time *now*."""
        spec = self.spec
        rng = self._gap_rngs.get(tenant)
        if rng is None:
            rng = derive_random(self.seed, "serve-arrivals", spec.shape, tenant)
            self._gap_rngs[tenant] = rng
        shape = spec.shape
        mean = spec.mean_gap
        if shape == "steady":
            return rng.expovariate(1.0 / mean)
        if shape == "bursty":
            # ~1 in 4 gaps is an inter-burst silence an order of magnitude
            # longer than the intra-burst spacing; the mix keeps the
            # long-run mean near ``mean_gap`` while clustering arrivals.
            if rng.random() < 0.25:
                return rng.expovariate(1.0 / (3.0 * mean))
            return rng.expovariate(1.0 / (0.1 * mean))
        if shape == "diurnal":
            phase = math.sin(2.0 * math.pi * now / spec.diurnal_period)
            return rng.expovariate(1.0 / (mean * (1.05 + phase)))
        # heavy-tailed: Pareto with unit minimum, scaled so the mean of the
        # gap distribution equals ``mean_gap``.
        scale = mean * (_PARETO_ALPHA - 1.0) / _PARETO_ALPHA
        return scale * rng.paretovariate(_PARETO_ALPHA)

    def open_arrivals(self, tenant: str) -> list[ServeRequest]:
        """The tenant's requests with open-loop arrival times filled in."""
        clock = 0.0
        out = []
        for request in self.requests(tenant):
            clock += self.next_gap(tenant, clock)
            out.append(ServeRequest(
                tenant=request.tenant,
                query_id=request.query_id,
                lo=request.lo,
                hi=request.hi,
                stream_seed=request.stream_seed,
                arrival=clock,
            ))
        return out
