"""Deterministic multi-tenant serving layer (ROADMAP item 1).

``python -m repro serve --workload bursty --tenants 100 --seed 7`` runs a
seeded multi-tenant workload through one shared ACE tree under the
discrete-event scheduler and reports per-tenant time-to-accuracy, SLO
burn rates, and the page-budget audit.  See docs/SERVING.md.
"""

from .scheduler import (
    QueryRun,
    ServeConfig,
    ServeReport,
    ServeScheduler,
    TenantState,
    percentile,
)
from .workload import WORKLOAD_SHAPES, ServeRequest, Workload, WorkloadSpec

__all__ = [
    "QueryRun",
    "ServeConfig",
    "ServeReport",
    "ServeRequest",
    "ServeScheduler",
    "TenantState",
    "WORKLOAD_SHAPES",
    "Workload",
    "WorkloadSpec",
    "percentile",
]
