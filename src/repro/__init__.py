"""repro: Materialized Sample Views for Database Approximation (ACE Tree).

A from-scratch reproduction of Joshi & Jermaine's ACE Tree paper (ICDE 2006
/ IEEE TKDE): a materialized, indexed *sample view* that streams online
random samples from arbitrary range predicates, together with the storage
substrate, baselines, and benchmark harness needed to regenerate every
figure of the paper's evaluation.

Quickstart::

    from repro import (
        SimulatedDisk, CostModel, generate_sale_1d, create_sample_view,
    )

    disk = SimulatedDisk(page_size=4096, cost=CostModel.scaled(4096))
    sale = generate_sale_1d(disk, num_records=100_000, seed=0)
    view = create_sample_view("mysam", sale, index_on=("day",))
    query = view.query((100_000_000, 200_000_000))  # DAY BETWEEN a AND b
    for batch in view.sample(query):
        ...  # every prefix is a uniform random sample of the matching rows

Subpackages:

* :mod:`repro.core` — schemas, records, interval geometry, RNG discipline.
* :mod:`repro.storage` — simulated disk, buffer pool, heap files, TPMMS
  external sort.
* :mod:`repro.acetree` — the ACE Tree (construction, Shuttle/Combine
  query algorithm, k-d extension, Lemma 1/2 analysis).
* :mod:`repro.baselines` — randomly permuted file, ranked B+-Tree
  (Antoshenkov sampling), STR R-Tree (ranked + Olken sampling).
* :mod:`repro.view` — the materialized-sample-view facade, SQL-ish DDL,
  catalog, differential-file updates.
* :mod:`repro.apps` — online aggregation, streaming K-means, frequent-item
  estimation.
* :mod:`repro.workloads` / :mod:`repro.bench` — the paper's SALE workloads
  and the per-figure benchmark harness.
"""

from .acetree import (
    AceBuildParams,
    AceTree,
    SampleBatch,
    SampleStream,
    build_ace_tree,
)
from .apps import FrequentItemEstimator, OnlineAggregator, StreamingKMeans
from .baselines import (
    PermutedFile,
    RTree,
    RankedBPlusTree,
    build_bplus_tree,
    build_permuted_file,
    build_rtree,
)
from .core import Box, Field, Interval, Record, ReproError, Schema
from .storage import BufferPool, CostModel, HeapFile, SimulatedDisk, external_sort
from .view import Catalog, MaterializedSampleView, create_sample_view
from .workloads import generate_sale_1d, generate_sale_2d, queries_1d, queries_2d

__version__ = "1.0.0"

__all__ = [
    "AceBuildParams",
    "AceTree",
    "Box",
    "BufferPool",
    "Catalog",
    "CostModel",
    "Field",
    "FrequentItemEstimator",
    "HeapFile",
    "Interval",
    "MaterializedSampleView",
    "OnlineAggregator",
    "PermutedFile",
    "RTree",
    "RankedBPlusTree",
    "Record",
    "ReproError",
    "SampleBatch",
    "SampleStream",
    "Schema",
    "SimulatedDisk",
    "StreamingKMeans",
    "build_ace_tree",
    "build_bplus_tree",
    "build_permuted_file",
    "build_rtree",
    "create_sample_view",
    "external_sort",
    "generate_sale_1d",
    "generate_sale_2d",
    "queries_1d",
    "queries_2d",
    "__version__",
]
