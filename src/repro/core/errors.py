"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the storage, index, and query layers when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A schema definition or a record does not match its schema."""


class SerializationError(ReproError):
    """A record or node could not be encoded to / decoded from bytes."""


class StorageError(ReproError):
    """Base class for errors in the simulated storage substrate."""


class PageError(StorageError):
    """A page id is invalid, unallocated, or was accessed incorrectly."""


class TransientPageError(PageError):
    """A page access failed in a way that may succeed when retried.

    Raised by the fault-injection layer (:mod:`repro.testkit.faults`) to
    model transient media errors.  :func:`repro.storage.recovery.
    read_page_resilient` retries these with bounded backoff charged to the
    simulated clock; after the retry budget is exhausted the error
    propagates as a persistent failure.
    """


class PageCorruptionError(PageError):
    """A page's content failed its stored checksum on read.

    The simulated disk keeps a per-page checksum (standing in for an
    in-header page checksum) and verifies it on every read; a mismatch
    means the stored bytes were corrupted after the write — a bit flip or a
    torn write.  Corruption is persistent: retrying the read cannot help.
    """


class BufferPoolError(StorageError):
    """The buffer pool was used incorrectly (e.g. unpinning a free frame)."""


class HeapFileError(StorageError):
    """A heap file operation failed (bad record id, closed file, ...)."""


class SortError(StorageError):
    """External sorting failed (e.g. zero-buffer configuration)."""


class IndexError_(ReproError):
    """Base class for index construction / lookup errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexBuildError``'s parent.
    """


class IndexBuildError(IndexError_):
    """Bulk construction of an index structure failed."""


class QueryError(ReproError):
    """A query is malformed or incompatible with the index it targets."""


class ViewError(ReproError):
    """A materialized sample view was defined or used incorrectly."""


class ParseError(ViewError):
    """The SQL-ish DDL / query text could not be parsed."""


class EstimatorError(ReproError):
    """An online estimator was asked for output it cannot provide yet."""


class InvariantViolation(ReproError):
    """A runtime sanitizer found a broken structural/statistical invariant.

    Raised by :mod:`repro.analysis.invariants` (``check_tree``,
    ``check_sample``, ``check_stream``); never raised by normal operation.
    """
