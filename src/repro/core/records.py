"""Typed record schemas with fixed-size binary serialization.

The storage substrate works on raw pages of bytes, exactly like a real
database engine, so records must have a well-defined on-disk format.  A
:class:`Schema` describes a fixed-width record layout (int64, float64 and
fixed-length byte-string fields) and packs/unpacks records to ``bytes`` with
:mod:`struct`.

Records themselves are plain tuples — cheap, hashable and directly usable as
dictionary keys, which the samplers rely on for without-replacement checks.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Sequence

from .errors import SchemaError, SerializationError

__all__ = ["Field", "Schema", "Record"]

#: A record is a plain tuple of field values matching its schema.
Record = tuple

_STRUCT_CODES = {
    "i8": "q",  # signed 64-bit integer
    "f8": "d",  # IEEE-754 double
}


@dataclass(frozen=True, slots=True)
class Field:
    """One column of a schema.

    ``kind`` is one of ``"i8"``, ``"f8"`` or ``"bytes"``; for ``"bytes"``
    a positive ``size`` gives the fixed width of the field.
    """

    name: str
    kind: str
    size: int = 0

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"field name {self.name!r} is not an identifier")
        if self.kind in _STRUCT_CODES:
            if self.size:
                raise SchemaError(f"field {self.name}: {self.kind} takes no size")
        elif self.kind == "bytes":
            if self.size <= 0:
                raise SchemaError(f"field {self.name}: bytes needs a positive size")
        else:
            raise SchemaError(f"field {self.name}: unknown kind {self.kind!r}")

    @property
    def struct_code(self) -> str:
        if self.kind == "bytes":
            return f"{self.size}s"
        return _STRUCT_CODES[self.kind]


class Schema:
    """An ordered collection of fields with fixed-size binary layout.

    Example::

        schema = Schema([
            Field("day", "i8"),
            Field("cust", "i8"),
            Field("part", "i8"),
            Field("supp", "i8"),
            Field("pad", "bytes", 68),
        ])
        blob = schema.pack((5, 10, 3, 7, b""))
        record = schema.unpack(blob)
    """

    def __init__(self, fields: Sequence[Field]) -> None:
        if not fields:
            raise SchemaError("a schema needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in {names}")
        self._fields = tuple(fields)
        self._index = {f.name: i for i, f in enumerate(fields)}
        self._struct = struct.Struct("<" + "".join(f.struct_code for f in fields))

    # -- introspection -----------------------------------------------------

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def record_size(self) -> int:
        """Size in bytes of one packed record."""
        return self._struct.size

    def field_index(self, name: str) -> int:
        """Position of the named field; raises :class:`SchemaError` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"no field {name!r}; have {[f.name for f in self._fields]}"
            ) from None

    def __len__(self) -> int:
        return len(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{f.name}:{f.kind}{f.size or ''}" for f in self._fields)
        return f"Schema({cols})"

    # -- validation --------------------------------------------------------

    def validate(self, record: Record) -> None:
        """Raise :class:`SchemaError` unless ``record`` matches this schema."""
        if len(record) != len(self._fields):
            raise SchemaError(
                f"record has {len(record)} values, schema has {len(self._fields)}"
            )
        for field, value in zip(self._fields, record):
            if field.kind == "i8" and not isinstance(value, int):
                raise SchemaError(f"field {field.name}: expected int, got {value!r}")
            if field.kind == "f8" and not isinstance(value, (int, float)):
                raise SchemaError(f"field {field.name}: expected float, got {value!r}")
            if field.kind == "bytes":
                if not isinstance(value, bytes):
                    raise SchemaError(
                        f"field {field.name}: expected bytes, got {value!r}"
                    )
                if len(value) > field.size:
                    raise SchemaError(
                        f"field {field.name}: {len(value)} bytes exceeds "
                        f"fixed width {field.size}"
                    )

    # -- serialization -----------------------------------------------------

    def pack(self, record: Record) -> bytes:
        """Serialize a record to its fixed-size binary form."""
        try:
            return self._struct.pack(*record)
        except struct.error as exc:
            raise SerializationError(f"cannot pack {record!r}: {exc}") from exc

    def unpack(self, blob: bytes | memoryview) -> Record:
        """Deserialize one record; byte fields keep their fixed width."""
        try:
            return self._struct.unpack(blob)
        except struct.error as exc:
            raise SerializationError(
                f"cannot unpack {len(blob)} bytes as {self!r}: {exc}"
            ) from exc

    def pack_many(self, records: Iterable[Record]) -> bytes:
        """Serialize records back to back into one buffer."""
        return b"".join(self._struct.pack(*r) for r in records)

    def unpack_many(self, blob: bytes | memoryview, count: int) -> list[Record]:
        """Deserialize ``count`` records packed back to back."""
        size = self._struct.size
        if len(blob) < count * size:
            raise SerializationError(
                f"need {count * size} bytes for {count} records, have {len(blob)}"
            )
        view = memoryview(blob)
        return [self._struct.unpack(view[i * size:(i + 1) * size]) for i in range(count)]

    # -- accessors ---------------------------------------------------------

    def key_getter(self, name: str):
        """Return a fast ``record -> value`` accessor for the named field."""
        idx = self.field_index(name)
        return lambda record: record[idx]

    def keys_getter(self, names: Sequence[str]):
        """Return a ``record -> tuple of values`` accessor for several fields."""
        idxs = tuple(self.field_index(n) for n in names)
        return lambda record: tuple(record[i] for i in idxs)

    def fresh_field_name(self, stem: str) -> str:
        """A field name derived from ``stem`` that does not collide.

        Used when decorating records with temporary columns (sort keys,
        leaf/section numbers): user schemas may legitimately contain any
        identifier, so decoration names must be generated, not assumed.
        """
        name = stem
        suffix = 0
        existing = {f.name for f in self._fields}
        while name in existing:
            suffix += 1
            name = f"{stem}{suffix}"
        return name
