"""Typed record schemas with fixed-size binary serialization.

The storage substrate works on raw pages of bytes, exactly like a real
database engine, so records must have a well-defined on-disk format.  A
:class:`Schema` describes a fixed-width record layout (int64, float64 and
fixed-length byte-string fields) and packs/unpacks records to ``bytes`` with
:mod:`struct`.

Records themselves are plain tuples — cheap, hashable and directly usable as
dictionary keys, which the samplers rely on for without-replacement checks.

Serialization is *batched*: ``pack_many``/``unpack_many`` move whole pages
of records through one precompiled multi-record :class:`struct.Struct`
(packing) or :meth:`struct.Struct.iter_unpack` (unpacking), so the per-record
work happens in C rather than in a Python loop.  :class:`PageView` goes one
step further and defers decoding entirely, letting consumers that only need
one column (:meth:`Schema.unpack_column`) or a handful of rows skip the full
decode.  The byte format is identical to packing records one at a time —
``tests/property/test_prop_codec.py`` pins that equivalence.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from itertools import chain
from operator import itemgetter
from typing import Iterable, Iterator, Sequence

from .errors import SchemaError, SerializationError

__all__ = ["Field", "Schema", "Record", "PageView"]

#: A record is a plain tuple of field values matching its schema.
Record = tuple

_STRUCT_CODES = {
    "i8": "q",  # signed 64-bit integer
    "f8": "d",  # IEEE-754 double
}

#: Largest record count for which a dedicated multi-record Struct is
#: compiled and cached; bigger batches are packed in chunks of this size.
#: Covers a whole page of the smallest (8-byte) records at 8 KB pages.
_PACK_CHUNK = 1024

_first = itemgetter(0)


@dataclass(frozen=True, slots=True)
class Field:
    """One column of a schema.

    ``kind`` is one of ``"i8"``, ``"f8"`` or ``"bytes"``; for ``"bytes"``
    a positive ``size`` gives the fixed width of the field.
    """

    name: str
    kind: str
    size: int = 0

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"field name {self.name!r} is not an identifier")
        if self.kind in _STRUCT_CODES:
            if self.size:
                raise SchemaError(f"field {self.name}: {self.kind} takes no size")
        elif self.kind == "bytes":
            if self.size <= 0:
                raise SchemaError(f"field {self.name}: bytes needs a positive size")
        else:
            raise SchemaError(f"field {self.name}: unknown kind {self.kind!r}")

    @property
    def struct_code(self) -> str:
        if self.kind == "bytes":
            return f"{self.size}s"
        return _STRUCT_CODES[self.kind]

    @property
    def byte_size(self) -> int:
        """Width of this field in the packed record."""
        if self.kind == "bytes":
            return self.size
        return 8


class Schema:
    """An ordered collection of fields with fixed-size binary layout.

    Example::

        schema = Schema([
            Field("day", "i8"),
            Field("cust", "i8"),
            Field("part", "i8"),
            Field("supp", "i8"),
            Field("pad", "bytes", 68),
        ])
        blob = schema.pack((5, 10, 3, 7, b""))
        record = schema.unpack(blob)
    """

    def __init__(self, fields: Sequence[Field]) -> None:
        if not fields:
            raise SchemaError("a schema needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in {names}")
        self._fields = tuple(fields)
        self._index = {f.name: i for i, f in enumerate(fields)}
        self._fmt_body = "".join(f.struct_code for f in fields)
        self._struct = struct.Struct("<" + self._fmt_body)
        # count -> Struct packing `count` records back to back; compiled on
        # demand so common batch sizes (a page's worth) pay the format parse
        # once instead of one struct call per record.
        self._batch_structs: dict[int, struct.Struct] = {1: self._struct}  # repro: shared[confined] idempotent struct memo; same key always maps to an equal Struct
        # field index -> Struct extracting just that column from one record
        # (pad bytes skip the rest), for lazy column decodes.
        self._column_structs: dict[int, struct.Struct] = {}  # repro: shared[confined] idempotent struct memo; same key always maps to an equal Struct
        self._numpy_dtype = None

    # -- introspection -----------------------------------------------------

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def record_size(self) -> int:
        """Size in bytes of one packed record."""
        return self._struct.size

    def field_index(self, name: str) -> int:
        """Position of the named field; raises :class:`SchemaError` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"no field {name!r}; have {[f.name for f in self._fields]}"
            ) from None

    def field_kind(self, name: str) -> str:
        """The storage kind (``"i8"``/``"f8"``/``"bytes"``) of a field."""
        return self._fields[self.field_index(name)].kind

    def __len__(self) -> int:
        return len(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{f.name}:{f.kind}{f.size or ''}" for f in self._fields)
        return f"Schema({cols})"

    # -- validation --------------------------------------------------------

    def validate(self, record: Record) -> None:
        """Raise :class:`SchemaError` unless ``record`` matches this schema."""
        if len(record) != len(self._fields):
            raise SchemaError(
                f"record has {len(record)} values, schema has {len(self._fields)}"
            )
        for field, value in zip(self._fields, record):
            if field.kind == "i8" and not isinstance(value, int):
                raise SchemaError(f"field {field.name}: expected int, got {value!r}")
            if field.kind == "f8" and not isinstance(value, (int, float)):
                raise SchemaError(f"field {field.name}: expected float, got {value!r}")
            if field.kind == "bytes":
                if not isinstance(value, bytes):
                    raise SchemaError(
                        f"field {field.name}: expected bytes, got {value!r}"
                    )
                if len(value) > field.size:
                    raise SchemaError(
                        f"field {field.name}: {len(value)} bytes exceeds "
                        f"fixed width {field.size}"
                    )

    # -- serialization -----------------------------------------------------

    def _batch_struct(self, count: int) -> struct.Struct:
        try:
            return self._batch_structs[count]
        except KeyError:
            compiled = struct.Struct("<" + self._fmt_body * count)
            self._batch_structs[count] = compiled
            return compiled

    def pack(self, record: Record) -> bytes:
        """Serialize a record to its fixed-size binary form."""
        try:
            return self._struct.pack(*record)
        except struct.error as exc:
            raise SerializationError(f"cannot pack {record!r}: {exc}") from exc

    def unpack(self, blob: bytes | memoryview) -> Record:
        """Deserialize one record; byte fields keep their fixed width."""
        try:
            return self._struct.unpack(blob)
        except struct.error as exc:
            raise SerializationError(
                f"cannot unpack {len(blob)} bytes as {self!r}: {exc}"
            ) from exc

    def pack_many(self, records: Iterable[Record]) -> bytes:
        """Serialize records back to back into one buffer.

        Packs whole chunks through one multi-record Struct; the output is
        byte-identical to concatenating :meth:`pack` of each record.
        """
        if not isinstance(records, (list, tuple)):
            records = list(records)
        count = len(records)
        if count == 0:
            return b""
        try:
            if count <= _PACK_CHUNK:
                return self._batch_struct(count).pack(*chain.from_iterable(records))
            parts = []
            for start in range(0, count, _PACK_CHUNK):
                chunk = records[start:start + _PACK_CHUNK]
                parts.append(
                    self._batch_struct(len(chunk)).pack(*chain.from_iterable(chunk))
                )
            return b"".join(parts)
        except (struct.error, TypeError):
            # Re-pack record by record to blame the precise offender (a
            # wrong-arity tuple misaligns the whole flattened batch).
            for record in records:
                if len(record) != len(self._fields):
                    raise SerializationError(
                        f"cannot pack {record!r}: record has {len(record)} "
                        f"values, schema has {len(self._fields)}"
                    ) from None
                self.pack(record)
            raise SerializationError(
                f"cannot pack batch of {count} records as {self!r}"
            ) from None

    def pack_many_into(
        self, buffer: bytearray | memoryview, offset: int, records: Sequence[Record]
    ) -> int:
        """Like :meth:`pack_many`, but into an existing buffer.

        Returns the number of bytes written.  Lets page writers reuse one
        page-sized buffer instead of allocating a fresh blob per page.
        """
        count = len(records)
        if count == 0:
            return 0
        size = self._struct.size
        try:
            pos = offset
            for start in range(0, count, _PACK_CHUNK):
                chunk = records[start:start + _PACK_CHUNK]
                self._batch_struct(len(chunk)).pack_into(
                    buffer, pos, *chain.from_iterable(chunk)
                )
                pos += len(chunk) * size
            return pos - offset
        except (struct.error, TypeError):
            self.pack_many(records)  # raises with the precise offender
            raise SerializationError(
                f"cannot pack {count} records into buffer of "
                f"{len(buffer)} bytes at offset {offset}"
            ) from None

    def unpack_many(self, blob: bytes | memoryview, count: int) -> list[Record]:
        """Deserialize ``count`` records packed back to back."""
        size = self._struct.size
        need = count * size
        if len(blob) < need:
            raise SerializationError(
                f"need {need} bytes for {count} records, have {len(blob)}"
            )
        if count == 0:
            return []
        view = blob if len(blob) == need else memoryview(blob)[:need]
        try:
            return list(self._struct.iter_unpack(view))
        except struct.error as exc:  # pragma: no cover - length checked above
            raise SerializationError(
                f"cannot unpack {count} records as {self!r}: {exc}"
            ) from exc

    # -- lazy / columnar decoding ------------------------------------------

    def _column_struct(self, index: int) -> struct.Struct:
        try:
            return self._column_structs[index]
        except KeyError:
            before = sum(f.byte_size for f in self._fields[:index])
            after = self.record_size - before - self._fields[index].byte_size
            fmt = "<"
            if before:
                fmt += f"{before}x"
            fmt += self._fields[index].struct_code
            if after:
                fmt += f"{after}x"
            compiled = struct.Struct(fmt)
            self._column_structs[index] = compiled
            return compiled

    def unpack_column(
        self, blob: bytes | memoryview, count: int, name: str
    ) -> list:
        """Decode one column of ``count`` packed records, skipping the rest.

        Roughly a ``record_size / field_size`` cheaper than a full
        :meth:`unpack_many` when only a key attribute is needed (predicate
        evaluation, sort-key extraction).  Numeric columns take a
        numpy strided read over the raw buffer (no per-record struct
        objects, no intermediate copy) and convert to plain Python values
        in one ``tolist``; ``bytes`` columns keep the struct path, because
        numpy's ``S`` kind strips trailing NULs while :mod:`struct`
        preserves the fixed width.
        """
        size = self._struct.size
        need = count * size
        if len(blob) < need:
            raise SerializationError(
                f"need {need} bytes for {count} records, have {len(blob)}"
            )
        if count == 0:
            return []
        view = blob if len(blob) == need else memoryview(blob)[:need]
        index = self.field_index(name)
        if self._fields[index].kind != "bytes":
            # tolist() yields exact Python ints/floats: the values are
            # byte-for-byte the same little-endian words struct would read.
            return self.column_array(view, count, name).tolist()
        column = self._column_struct(index)
        return list(map(_first, column.iter_unpack(view)))

    def struct_array(self, blob: bytes | memoryview, count: int):
        """A zero-copy numpy structured array over ``count`` packed records.

        The array aliases the buffer (no decode, no copy); callers must
        treat it as read-only, like a pinned page frame.
        """
        import numpy as np

        size = self._struct.size
        need = count * size
        if len(blob) < need:
            raise SerializationError(
                f"need {need} bytes for {count} records, have {len(blob)}"
            )
        view = blob if len(blob) == need else memoryview(blob)[:need]
        return np.frombuffer(view, dtype=self.numpy_dtype(), count=count)

    def column_array(self, blob: bytes | memoryview, count: int, name: str):
        """One numeric column of ``count`` packed records as a numpy view."""
        return self.struct_array(blob, count)[name]

    def unpack_rows(self, array, indices) -> list[Record]:
        """Materialize selected rows of a structured array as exact records.

        ``array[indices]`` gathers the packed bytes of just the chosen rows
        (one vectorized copy), and the batch struct decode then yields
        tuples bit-identical to :meth:`unpack_many` of those rows — the
        numpy dtype and the struct format describe the same layout.
        """
        rows = array[indices]
        return self.unpack_many(rows.tobytes(), len(rows))

    def page_view(self, blob: bytes | memoryview, count: int) -> "PageView":
        """A lazily-decoded view over ``count`` packed records."""
        return PageView(self, blob, count)

    def numpy_dtype(self):
        """A numpy structured dtype matching the packed record layout.

        Field-for-field identical to the struct format (little-endian,
        no padding), so ``np.frombuffer(page_payload, dtype)`` reads packed
        records zero-copy.  Lets the sort fast path extract key columns
        without decoding records into tuples.
        """
        if self._numpy_dtype is None:
            import numpy as np

            np_codes = {"i8": "<i8", "f8": "<f8"}
            self._numpy_dtype = np.dtype(
                [
                    (
                        f.name,
                        f"S{f.size}" if f.kind == "bytes" else np_codes[f.kind],
                    )
                    for f in self._fields
                ]
            )
        return self._numpy_dtype

    # -- accessors ---------------------------------------------------------

    def key_getter(self, name: str):
        """A fast ``record -> value`` accessor for the named field.

        The result is an :func:`operator.itemgetter`, so repeated calls (sort
        keys, predicate filters) stay in C.
        """
        return itemgetter(self.field_index(name))

    def keys_getter(self, names: Sequence[str]):
        """A ``record -> tuple of values`` accessor for several fields.

        Always returns a tuple, even for a single name (a 1-field key is a
        1-tuple point, as the geometry code expects).
        """
        idxs = tuple(self.field_index(n) for n in names)
        if len(idxs) == 1:
            single = itemgetter(idxs[0])
            return lambda record: (single(record),)
        return itemgetter(*idxs)

    def fresh_field_name(self, stem: str) -> str:
        """A field name derived from ``stem`` that does not collide.

        Used when decorating records with temporary columns (sort keys,
        leaf/section numbers): user schemas may legitimately contain any
        identifier, so decoration names must be generated, not assumed.
        """
        name = stem
        suffix = 0
        existing = {f.name for f in self._fields}
        while name in existing:
            suffix += 1
            name = f"{stem}{suffix}"
        return name


class PageView:
    """A lazily-decoded view of ``count`` records packed back to back.

    Full decoding is deferred until :attr:`records` is first touched (then
    cached); :meth:`column` decodes a single field for every row and
    :meth:`record` decodes a single row — both without materializing the
    rest.  Consumers that filter on a key column and keep few rows (the
    permuted-file scan sampler at low selectivity) skip most of the decode
    work entirely.

    The view holds a reference to the underlying buffer; like a pinned page
    frame, treat its decoded contents as immutable.
    """

    __slots__ = ("schema", "count", "_view", "_records", "_array")

    def __init__(self, schema: Schema, blob: bytes | memoryview, count: int) -> None:
        need = count * schema.record_size
        if len(blob) < need:
            raise SerializationError(
                f"need {need} bytes for {count} records, have {len(blob)}"
            )
        self.schema = schema
        self.count = count
        self._view = blob if len(blob) == need else memoryview(blob)[:need]
        self._records: list[Record] | None = None
        self._array = None

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    @property
    def payload(self) -> bytes | memoryview:
        """The raw packed bytes backing this view (count * record_size)."""
        return self._view

    @property
    def records(self) -> list[Record]:
        """All records, decoded once and cached."""
        if self._records is None:
            self._records = self.schema.unpack_many(self._view, self.count)
        return self._records

    def record(self, index: int) -> Record:
        """Decode one row by position (no caching)."""
        if self._records is not None:
            return self._records[index]
        if not 0 <= index < self.count:
            raise SerializationError(
                f"record index {index} out of range 0..{self.count - 1}"
            )
        size = self.schema.record_size
        view = self._view if isinstance(self._view, memoryview) else memoryview(self._view)
        return self.schema.unpack(view[index * size:(index + 1) * size])

    def column(self, name: str) -> list:
        """Decode one field of every row, skipping the other columns."""
        if self._records is not None:
            return list(map(self.schema.key_getter(name), self._records))
        return self.schema.unpack_column(self._view, self.count, name)

    def struct_array(self):
        """A zero-copy numpy structured array aliasing the packed rows.

        Computed once and cached; treat it as read-only (it shares the
        page buffer).  This is the columnar hot path's entry point: key
        columns come out as strided views with no per-record decode.
        """
        if self._array is None:
            self._array = self.schema.struct_array(self._view, self.count)
        return self._array

    def column_array(self, name: str):
        """One column of every row as a (possibly strided) numpy view."""
        return self.struct_array()[name]

    def gather(self, indices) -> list[Record]:
        """Materialize just the rows at ``indices``, in the given order.

        Record-for-record identical to ``[self.records[i] for i in
        indices]`` but decodes only the selected rows (vectorized byte
        gather + one batch struct call).
        """
        if self._records is not None:
            records = self._records
            return [records[i] for i in indices]
        return self.schema.unpack_rows(self.struct_array(), indices)
