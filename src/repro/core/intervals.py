"""Interval and box geometry used by every index structure in the library.

All index geometry uses *half-open* intervals ``[lo, hi)`` over floats.
Half-open intervals tile a domain without overlap or gaps, which is exactly
what the ACE Tree's level-``s`` ranges and the B+-Tree's key separators need.
User-facing range predicates (SQL ``BETWEEN a AND b`` is inclusive on both
ends) are converted with :meth:`Interval.closed`.

A :class:`Box` is a k-dimensional product of intervals; the 1-D structures
simply use 1-dimensional boxes, so the ACE Tree code is identical for the
1-D and k-d variants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Interval", "Box"]


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open interval ``[lo, hi)`` over floats.

    ``lo == hi`` denotes the empty interval.  ``lo`` may be ``-inf`` and
    ``hi`` may be ``+inf``.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval bounds must not be NaN")
        if self.lo > self.hi:
            raise ValueError(f"interval lo={self.lo} exceeds hi={self.hi}")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def closed(lo: float, hi: float) -> "Interval":
        """Build the half-open equivalent of the closed interval [lo, hi].

        For float bounds the upper end is nudged one ulp past ``hi`` so that
        ``hi`` itself is included; integer keys are covered because
        ``nextafter`` on an exactly-representable integer moves past it.
        """
        if lo > hi:
            raise ValueError(f"closed interval lo={lo} exceeds hi={hi}")
        return Interval(lo, math.nextafter(hi, math.inf))

    @staticmethod
    def everything() -> "Interval":
        """The interval covering the whole real line."""
        return Interval(-math.inf, math.inf)

    # -- predicates --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.lo >= self.hi

    def contains_value(self, value: float) -> bool:
        return self.lo <= value < self.hi

    def contains(self, other: "Interval") -> bool:
        """True when every point of ``other`` lies in this interval."""
        if other.is_empty:
            return True
        return self.lo <= other.lo and other.hi <= self.hi

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share at least one point.

        Empty intervals contain no points, so they overlap nothing.
        """
        if self.is_empty or other.is_empty:
            return False
        return self.lo < other.hi and other.lo < self.hi

    # -- algebra -----------------------------------------------------------

    def intersect(self, other: "Interval") -> "Interval":
        """The common part of the two intervals (possibly empty)."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return Interval(lo, lo)
        return Interval(lo, hi)

    def split_at(self, boundary: float) -> tuple["Interval", "Interval"]:
        """Split into ``[lo, boundary)`` and ``[boundary, hi)``.

        The boundary must satisfy ``lo <= boundary <= hi``; a boundary at
        either end yields one empty half (this happens for degenerate median
        splits over heavily duplicated keys).
        """
        if not self.lo <= boundary <= self.hi:
            raise ValueError(
                f"split boundary {boundary} outside interval [{self.lo}, {self.hi})"
            )
        return Interval(self.lo, boundary), Interval(boundary, self.hi)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo}, {self.hi})"


@dataclass(frozen=True, slots=True)
class Box:
    """A k-dimensional half-open box: the product of k intervals."""

    sides: tuple[Interval, ...]

    def __post_init__(self) -> None:
        if not self.sides:
            raise ValueError("a box needs at least one dimension")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def of(*sides: Interval) -> "Box":
        return Box(tuple(sides))

    @staticmethod
    def from_bounds(lows: Sequence[float], highs: Sequence[float]) -> "Box":
        if len(lows) != len(highs):
            raise ValueError("lows and highs must have equal length")
        return Box(tuple(Interval(lo, hi) for lo, hi in zip(lows, highs)))

    @staticmethod
    def closed(lows: Sequence[float], highs: Sequence[float]) -> "Box":
        """Box including both endpoints in every dimension."""
        if len(lows) != len(highs):
            raise ValueError("lows and highs must have equal length")
        return Box(tuple(Interval.closed(lo, hi) for lo, hi in zip(lows, highs)))

    @staticmethod
    def everything(dims: int) -> "Box":
        return Box(tuple(Interval.everything() for _ in range(dims)))

    # -- predicates --------------------------------------------------------

    @property
    def dims(self) -> int:
        return len(self.sides)

    @property
    def is_empty(self) -> bool:
        return any(side.is_empty for side in self.sides)

    def contains_point(self, point: Sequence[float]) -> bool:
        if len(point) != self.dims:
            raise ValueError(f"point has {len(point)} dims, box has {self.dims}")
        return all(side.contains_value(v) for side, v in zip(self.sides, point))

    def contains(self, other: "Box") -> bool:
        self._check_dims(other)
        if other.is_empty:
            return True
        return all(a.contains(b) for a, b in zip(self.sides, other.sides))

    def overlaps(self, other: "Box") -> bool:
        self._check_dims(other)
        return all(a.overlaps(b) for a, b in zip(self.sides, other.sides))

    # -- algebra -----------------------------------------------------------

    def intersect(self, other: "Box") -> "Box":
        self._check_dims(other)
        return Box(tuple(a.intersect(b) for a, b in zip(self.sides, other.sides)))

    def split_at(self, axis: int, boundary: float) -> tuple["Box", "Box"]:
        """Split along ``axis`` at ``boundary`` into (low half, high half)."""
        if not 0 <= axis < self.dims:
            raise ValueError(f"axis {axis} out of range for {self.dims}-d box")
        low_side, high_side = self.sides[axis].split_at(boundary)
        low = list(self.sides)
        high = list(self.sides)
        low[axis] = low_side
        high[axis] = high_side
        return Box(tuple(low)), Box(tuple(high))

    def replace_side(self, axis: int, side: Interval) -> "Box":
        sides = list(self.sides)
        sides[axis] = side
        return Box(tuple(sides))

    def volume(self) -> float:
        result = 1.0
        for side in self.sides:
            result *= side.width
        return result

    @staticmethod
    def bounding(points: Iterable[Sequence[float]]) -> "Box":
        """Smallest half-open box containing every point (one ulp of slack
        above each max so that the max itself is inside)."""
        lows: list[float] | None = None
        highs: list[float] | None = None
        for point in points:
            if lows is None:
                lows = list(point)
                highs = list(point)
                continue
            assert highs is not None
            for i, value in enumerate(point):
                if value < lows[i]:
                    lows[i] = value
                if value > highs[i]:
                    highs[i] = value
        if lows is None or highs is None:
            raise ValueError("cannot bound an empty point set")
        return Box.closed(lows, highs)

    def _check_dims(self, other: "Box") -> None:
        if self.dims != other.dims:
            raise ValueError(
                f"dimension mismatch: {self.dims}-d box vs {other.dims}-d box"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " x ".join(str(side) for side in self.sides)
