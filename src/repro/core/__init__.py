"""Core primitives: errors, RNG discipline, intervals, schemas, profiling."""

from .errors import (
    BufferPoolError,
    EstimatorError,
    HeapFileError,
    IndexBuildError,
    InvariantViolation,
    PageCorruptionError,
    PageError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
    SerializationError,
    SortError,
    StorageError,
    TransientPageError,
    ViewError,
)
from .intervals import Box, Interval
from .profile import PROFILE, Profiler
from .records import Field, Record, Schema
from .rng import derive, derive_random, make_rng, spawn

__all__ = [
    "Box",
    "BufferPoolError",
    "EstimatorError",
    "Field",
    "HeapFileError",
    "IndexBuildError",
    "Interval",
    "InvariantViolation",
    "PROFILE",
    "PageCorruptionError",
    "PageError",
    "ParseError",
    "Profiler",
    "QueryError",
    "Record",
    "ReproError",
    "Schema",
    "SchemaError",
    "SerializationError",
    "SortError",
    "StorageError",
    "TransientPageError",
    "ViewError",
    "derive",
    "derive_random",
    "make_rng",
    "spawn",
]
