"""Core primitives: errors, RNG discipline, interval geometry, record schemas."""

from .errors import (
    BufferPoolError,
    EstimatorError,
    HeapFileError,
    IndexBuildError,
    PageError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
    SerializationError,
    SortError,
    StorageError,
    ViewError,
)
from .intervals import Box, Interval
from .records import Field, Record, Schema
from .rng import derive, make_rng, spawn

__all__ = [
    "Box",
    "BufferPoolError",
    "EstimatorError",
    "Field",
    "HeapFileError",
    "IndexBuildError",
    "Interval",
    "PageError",
    "ParseError",
    "QueryError",
    "Record",
    "ReproError",
    "Schema",
    "SchemaError",
    "SerializationError",
    "SortError",
    "StorageError",
    "ViewError",
    "derive",
    "make_rng",
    "spawn",
]
