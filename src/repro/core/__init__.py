"""Core primitives: errors, RNG discipline, intervals, schemas, profiling."""

from .errors import (
    BufferPoolError,
    EstimatorError,
    HeapFileError,
    IndexBuildError,
    InvariantViolation,
    PageError,
    ParseError,
    QueryError,
    ReproError,
    SchemaError,
    SerializationError,
    SortError,
    StorageError,
    ViewError,
)
from .intervals import Box, Interval
from .profile import PROFILE, Profiler
from .records import Field, Record, Schema
from .rng import derive, derive_random, make_rng, spawn

__all__ = [
    "Box",
    "BufferPoolError",
    "EstimatorError",
    "Field",
    "HeapFileError",
    "IndexBuildError",
    "Interval",
    "InvariantViolation",
    "PROFILE",
    "PageError",
    "ParseError",
    "Profiler",
    "QueryError",
    "Record",
    "ReproError",
    "Schema",
    "SchemaError",
    "SerializationError",
    "SortError",
    "StorageError",
    "ViewError",
    "derive",
    "derive_random",
    "make_rng",
    "spawn",
]
