"""Wall-clock profiling registry for build and query paths.

The simulated clock answers "what would this cost on the modeled hardware";
this module answers "what does it cost *us*, right now, in real seconds".
A :class:`Profiler` is a process-wide registry of named wall-clock timers
and event counters that the storage substrate and the ACE-Tree build/query
paths report into, giving every optimization PR a before/after trace:

    with PROFILE.timer("external_sort.run_generation"):
        ...
    PROFILE.count("external_sort.runs", len(runs))

    print(PROFILE.report())

Timers nest and re-enter freely (each ``with`` adds its own elapsed time),
and the module deliberately imports nothing above the layering bottom so
any layer — including the rest of ``core`` and ``storage`` — can report
into it without import cycles.  It lives in ``core`` (not ``bench``) for
exactly that reason: profiling is reported *from* every layer, so the
registry must sit at the bottom of the layering (lint rule LAY001).  It is
also one of the modules sanctioned to touch the wall clock (lint rule
CLK001): the profiler measures the implementation itself, never the modeled
hardware, so it must bypass the simulated clock by design.

Since the tracing subsystem landed, :data:`PROFILE` is the thin *aggregate
view* over the same event stream :data:`repro.obs.tracer.TRACER` produces:
library code opens ``TRACER.span(name)`` instead of ``PROFILE.timer(name)``,
and the tracer folds every measured span's wall time back into this
registry (see :meth:`repro.obs.tracer.Tracer.attach_profile`, wired at the
bottom of this module).  ``Profiler.timer`` remains supported for direct
use and external callers.

Profiling is on by default: one ``perf_counter`` pair per *phase* (not per
record or page) is far below measurement noise.  Use
:meth:`Profiler.disable` to freeze the registry, e.g. while taking
micro-benchmark timings that should not include bookkeeping.

Thread-safety guarantee
-----------------------
All mutation (``timer`` completion, ``add_time``, ``count``, ``reset``) and
all composite reads (``snapshot``, ``report``) are serialized by a single
internal lock, so concurrent threads can report into one shared profiler
without losing updates, and a snapshot is internally consistent.  The
``enabled`` flag is a plain attribute read on the hot path — toggling it
concurrently with recording is benign (an update is either counted or not)
but enable/disable themselves are not meant to race with each other.
"""

from __future__ import annotations

from contextlib import contextmanager
from threading import Lock
from time import perf_counter
from typing import Iterator

__all__ = ["Profiler", "PROFILE"]


class Profiler:  # repro: shared[lock=_lock] one lock guards every mutation and composite read
    """Named wall-clock timers and counters, accumulated per name.

    Safe for concurrent use from multiple threads: a single lock guards
    every mutation and composite read (see the module docstring).
    """

    __slots__ = ("_seconds", "_calls", "_counters", "_enabled", "_lock")

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._counters: dict[str, int] = {}
        self._enabled = True
        self._lock = Lock()

    # -- recording ---------------------------------------------------------

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock time of the ``with`` body under ``name``."""
        if not self._enabled:
            yield
            return
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            with self._lock:
                self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
                self._calls[name] = self._calls.get(name, 0) + 1

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate an externally measured duration under ``name``."""
        if not self._enabled:
            return
        with self._lock:
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds
            self._calls[name] = self._calls.get(name, 0) + 1

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name``."""
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    # -- control -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop every accumulated timer and counter."""
        with self._lock:
            self._seconds.clear()
            self._calls.clear()
            self._counters.clear()

    # -- reading -----------------------------------------------------------

    def seconds(self, name: str) -> float:
        """Total accumulated wall-clock seconds for ``name`` (0.0 if unseen)."""
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        """Number of completed timer entries for ``name``."""
        return self._calls.get(name, 0)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if unseen)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """All timers and counters as a JSON-ready dictionary."""
        with self._lock:
            return {
                "timers": {
                    name: {"seconds": self._seconds[name], "calls": self._calls[name]}
                    for name in sorted(self._seconds)
                },
                "counters": {
                    name: self._counters[name] for name in sorted(self._counters)
                },
            }

    def report(self) -> str:
        """A human-readable table of timers (by time, descending) and counters."""
        with self._lock:
            seconds = dict(self._seconds)
            calls = dict(self._calls)
            counters = dict(self._counters)
        lines = []
        if seconds:
            lines.append(f"{'timer':<44} {'seconds':>10} {'calls':>8}")
            for name in sorted(seconds, key=seconds.get, reverse=True):
                lines.append(
                    f"{name:<44} {seconds[name]:>10.4f} {calls[name]:>8}"
                )
        if counters:
            if lines:
                lines.append("")
            lines.append(f"{'counter':<44} {'value':>10}")
            for name in sorted(counters):
                lines.append(f"{name:<44} {counters[name]:>10}")
        return "\n".join(lines) if lines else "(profiler is empty)"


#: Process-wide profiler that the library's build and query paths report into.
PROFILE = Profiler()  # repro: shared[lock=_lock] process-wide; every mutation holds Profiler._lock

# PROFILE consumes the tracer's span stream: every span measured by
# repro.obs.tracer.TRACER (live or aggregate-only) folds its wall time into
# this registry under the span name, and TRACER.count() forwards here.
# core and obs share rank 0 in the layering, so this import is legal and
# keeps either module usable without the other at call sites.
from ..obs.tracer import TRACER  # noqa: E402  (deliberate bottom wiring)

TRACER.attach_profile(PROFILE)
