"""Wall-clock profiling registry for build and query paths.

The simulated clock answers "what would this cost on the modeled hardware";
this module answers "what does it cost *us*, right now, in real seconds".
A :class:`Profiler` is a process-wide registry of named wall-clock timers
and event counters that the storage substrate and the ACE-Tree build/query
paths report into, giving every optimization PR a before/after trace:

    with PROFILE.timer("external_sort.run_generation"):
        ...
    PROFILE.count("external_sort.runs", len(runs))

    print(PROFILE.report())

Timers nest and re-enter freely (each ``with`` adds its own elapsed time),
and the module deliberately imports nothing from the rest of the package so
any layer — including the rest of ``core`` and ``storage`` — can report
into it without import cycles.  It lives in ``core`` (not ``bench``) for
exactly that reason: profiling is reported *from* every layer, so the
registry must sit at the bottom of the layering (lint rule LAY001).  It is
also one of the two modules sanctioned to touch the wall clock (lint rule
CLK001): the profiler measures the implementation itself, never the modeled
hardware, so it must bypass the simulated clock by design.

Profiling is on by default: one ``perf_counter`` pair per *phase* (not per
record or page) is far below measurement noise.  Use
:meth:`Profiler.disable` to freeze the registry, e.g. while taking
micro-benchmark timings that should not include bookkeeping.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

__all__ = ["Profiler", "PROFILE"]


class Profiler:
    """Named wall-clock timers and counters, accumulated per name."""

    __slots__ = ("_seconds", "_calls", "_counters", "_enabled")

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._counters: dict[str, int] = {}
        self._enabled = True

    # -- recording ---------------------------------------------------------

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock time of the ``with`` body under ``name``."""
        if not self._enabled:
            yield
            return
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate an externally measured duration under ``name``."""
        if not self._enabled:
            return
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + 1

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name``."""
        if not self._enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + value

    # -- control -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        """Drop every accumulated timer and counter."""
        self._seconds.clear()
        self._calls.clear()
        self._counters.clear()

    # -- reading -----------------------------------------------------------

    def seconds(self, name: str) -> float:
        """Total accumulated wall-clock seconds for ``name`` (0.0 if unseen)."""
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        """Number of completed timer entries for ``name``."""
        return self._calls.get(name, 0)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if unseen)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """All timers and counters as a JSON-ready dictionary."""
        return {
            "timers": {
                name: {"seconds": self._seconds[name], "calls": self._calls[name]}
                for name in sorted(self._seconds)
            },
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
        }

    def report(self) -> str:
        """A human-readable table of timers (by time, descending) and counters."""
        lines = []
        if self._seconds:
            lines.append(f"{'timer':<44} {'seconds':>10} {'calls':>8}")
            for name in sorted(self._seconds, key=self._seconds.get, reverse=True):
                lines.append(
                    f"{name:<44} {self._seconds[name]:>10.4f} {self._calls[name]:>8}"
                )
        if self._counters:
            if lines:
                lines.append("")
            lines.append(f"{'counter':<44} {'value':>10}")
            for name in sorted(self._counters):
                lines.append(f"{name:<44} {self._counters[name]:>10}")
        return "\n".join(lines) if lines else "(profiler is empty)"


#: Process-wide profiler that the library's build and query paths report into.
PROFILE = Profiler()
