"""Seeded randomness discipline.

Everything stochastic in the library (workload generation, ACE Tree
construction, samplers) draws from a :class:`numpy.random.Generator` that is
passed in explicitly.  This module centralizes how generators are created and
how independent child streams are derived, so that

* every experiment is reproducible from a single integer seed, and
* two components never share a stream by accident (which would couple their
  randomness and silently break statistical guarantees).
"""

from __future__ import annotations

import random as _stdlib_random

import numpy as np

__all__ = ["make_rng", "spawn", "derive", "derive_random"]

#: Fixed library-wide salt mixed into derived seeds so that user seeds for
#: different purposes ("build" vs "query") cannot collide with each other.
_SALT = 0x9E3779B97F4A7C15


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a new random generator.

    Args:
        seed: Any non-negative integer, or ``None`` for OS entropy.  The same
            seed always produces the same stream.

    Returns:
        A :class:`numpy.random.Generator` backed by PCG64.
    """
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent child streams.

    The parent generator is advanced; the children are independent of each
    other and of the parent's future output.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive(seed: int, *tags: int | str) -> np.random.Generator:
    """Derive a generator from a base seed and a sequence of tags.

    Unlike :func:`spawn`, derivation is *stateless*: the same
    ``(seed, tags)`` always yields the same stream regardless of how many
    other streams were derived before it.  Use it when components are created
    in a data-dependent order but must stay reproducible.
    """
    mixed = seed ^ _SALT
    for tag in tags:
        if isinstance(tag, str):
            tag_val = hash_str(tag)
        else:
            tag_val = int(tag)
        mixed = _mix64(mixed ^ tag_val)
    return np.random.default_rng(mixed & 0x7FFFFFFFFFFFFFFF)


def derive_random(seed: int, *tags: int | str) -> _stdlib_random.Random:
    """Derive a stdlib :class:`random.Random` from a base seed and tags.

    Some hot paths (sample shuffles, per-record section draws) use the
    stdlib generator because ``getrandbits``/``shuffle`` on it are faster
    than numpy for scalar work.  This is the one sanctioned way to obtain
    one: the stream is seeded from the same stateless :func:`derive`
    derivation, so ``(seed, tags)`` fully determines it.  Constructing
    ``random.Random`` anywhere else is a lint violation (rule RNG001).

    The seeding draw matches the historical inline pattern
    ``random.Random(int(derive(seed, *tags).integers(2**62)))`` bit for
    bit, so every figure and golden test stream is unchanged.
    """
    return _stdlib_random.Random(int(derive(seed, *tags).integers(2**62)))


def hash_str(text: str) -> int:
    """Deterministic 64-bit FNV-1a hash of a string.

    Python's builtin ``hash`` is salted per process, so it cannot be used for
    reproducible seed derivation.
    """
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


def _mix64(value: int) -> int:
    """Finalize a 64-bit value (splitmix64 finalizer)."""
    value &= 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)
