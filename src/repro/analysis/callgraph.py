"""Project-wide symbol table and call graph for the whole-program pass.

The per-module rules in :mod:`repro.analysis.rules` see one file at a
time; the analyses in :mod:`repro.analysis.program` (seed provenance,
shared-state reachability, call-level layering) need to know *who calls
whom* across the whole ``src/repro`` tree.  This module builds that:

* :func:`build_project` parses every ``.py`` file under a package root
  into a :class:`Project` — modules, functions, classes, and methods with
  repro-relative qualified names (``"acetree.query.SampleStream.__next__"``);
* :func:`build_call_graph` resolves every call site inside every function
  body into a :class:`CallEdge`.

Resolution is deliberately *best effort and total*: a call through a
local alias, a package ``__init__`` re-export, a ``self.method``, or an
attribute whose type is known from a constructor assignment or a
parameter/dataclass annotation resolves to a ``direct`` edge; a call on a
receiver of unknown type degrades to name-matched ``fuzzy`` edges (used
only for reachability over-approximation, never for layering); anything
else — ``getattr(obj, name)()``, calls on call results, builtins —
becomes an ``unknown`` edge.  No input may crash the builder: dynamic
dispatch degrades, it never raises.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

from .lint import (
    SYNTAX_RULE,
    Finding,
    _collect_aliases,
    dotted_name,
    iter_python_files,
)

__all__ = [
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "build_call_graph",
    "build_project",
]

#: How many ``__init__`` re-export hops a dotted name may chase before the
#: resolver gives up (guards against pathological alias cycles).
_MAX_REEXPORT_HOPS = 8


@dataclass
class FunctionInfo:
    """One function or method, with its resolved call sites."""

    qname: str  #: repro-relative, e.g. ``"acetree.query.SampleStream.take"``
    module: str
    cls: str | None  #: enclosing class qname, or None for module functions
    name: str
    path: Path
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False)
    #: Parameter name -> project class qname, from annotations.
    param_types: dict[str, str] = field(default_factory=dict, repr=False)


@dataclass
class ClassInfo:
    """One class: its methods and what its attributes are known to hold."""

    qname: str
    module: str
    name: str
    path: Path
    lineno: int
    node: ast.ClassDef = field(repr=False)
    #: Method name -> function qname.
    methods: dict[str, str] = field(default_factory=dict)
    #: Attribute name -> project class qname (from ``self.x = Ctor()`` in
    #: ``__init__`` or a class-body / dataclass-field annotation).
    attr_types: dict[str, str] = field(default_factory=dict)
    #: Base class qnames that resolved to project classes.
    bases: list[str] = field(default_factory=list)
    #: True for ``@dataclass(frozen=True)`` classes (immutable instances).
    frozen: bool = False


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    module: str  #: repro-relative dotted path; ``""`` for the root package
    path: Path
    tree: ast.Module = field(repr=False)
    lines: list[str] = field(default_factory=list, repr=False)
    #: Local name -> absolute dotted target (``"repro.core.rng.derive"``).
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)  #: name -> qname
    classes: dict[str, str] = field(default_factory=dict)  #: name -> qname


@dataclass(frozen=True)
class CallEdge:
    """One call site, resolved as far as the static evidence allows."""

    caller: str  #: function qname (``"<module>"``-suffixed for module body)
    callee: str | None  #: function qname for ``direct``, else None
    kind: str  #: ``"direct"`` | ``"fuzzy"`` | ``"unknown"``
    raw: str  #: the dotted text (or attr name) as written
    path: str
    lineno: int


@dataclass
class Project:
    """The whole-program symbol table."""

    root: Path
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Files that failed to parse, as AST000 findings (never fatal).
    errors: list[Finding] = field(default_factory=list)

    # -- name resolution ---------------------------------------------------

    def resolve_dotted(self, dotted: str, _hops: int = 0):
        """Resolve an absolute dotted name to a project symbol.

        Returns ``("func", qname)``, ``("class", qname)``, or ``None``.
        Chases package ``__init__`` re-exports (``from .build import
        build_ace_tree`` surfaced as ``repro.acetree.build_ace_tree``).
        """
        if _hops > _MAX_REEXPORT_HOPS:
            return None
        if dotted == "repro" or not dotted.startswith("repro."):
            return None
        parts = dotted[len("repro."):].split(".")
        for split in range(len(parts) - 1, -1, -1):
            mod_name = ".".join(parts[:split])
            mod = self.modules.get(mod_name)
            if mod is None:
                continue
            rest = parts[split:]
            if not rest:
                return None
            head = rest[0]
            if len(rest) == 1:
                if head in mod.functions:
                    return ("func", mod.functions[head])
                if head in mod.classes:
                    return ("class", mod.classes[head])
                if head in mod.aliases:
                    return self.resolve_dotted(mod.aliases[head], _hops + 1)
                return None
            if len(rest) == 2 and head in mod.classes:
                cls = self.classes[mod.classes[head]]
                method = self.find_method(cls, rest[1])
                if method is not None:
                    return ("func", method)
                return None
            if head in mod.aliases:
                target = mod.aliases[head] + "." + ".".join(rest[1:])
                return self.resolve_dotted(target, _hops + 1)
            return None
        return None

    def find_method(self, cls: ClassInfo, name: str,
                    _hops: int = 0) -> str | None:
        """A method qname, searching ``cls`` then its project bases."""
        if _hops > _MAX_REEXPORT_HOPS:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            base_cls = self.classes.get(base)
            if base_cls is not None:
                found = self.find_method(base_cls, name, _hops + 1)
                if found is not None:
                    return found
        return None

    def attr_type(self, cls: ClassInfo, attr: str,
                  _hops: int = 0) -> str | None:
        """The project class an attribute holds, searching project bases."""
        if _hops > _MAX_REEXPORT_HOPS:
            return None
        if attr in cls.attr_types:
            return cls.attr_types[attr]
        for base in cls.bases:
            base_cls = self.classes.get(base)
            if base_cls is not None:
                found = self.attr_type(base_cls, attr, _hops + 1)
                if found is not None:
                    return found
        return None

    def class_of_annotation(self, node: ast.AST | None,
                            mod: ModuleInfo) -> str | None:
        """The project class named by an annotation expression, if any.

        Handles plain names, string annotations (``"AceTree"``), unions
        (``SampleCache | None``), and subscripts — the first name that
        resolves to a project class wins.
        """
        if node is None:
            return None
        candidates: list[str] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                candidates.append(sub.id)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                candidates.append(sub.value)
            elif isinstance(sub, ast.Attribute):
                dotted = dotted_name(sub)
                if dotted:
                    candidates.append(dotted)
        for cand in candidates:
            resolved = self._resolve_local_class(cand, mod)
            if resolved is not None:
                return resolved
        return None

    def _resolve_local_class(self, name: str, mod: ModuleInfo) -> str | None:
        """Resolve a (possibly dotted) local name to a project class."""
        head, _, rest = name.partition(".")
        if not rest and head in mod.classes:
            return mod.classes[head]
        target = mod.aliases.get(head)
        if target is not None:
            dotted = f"{target}.{rest}" if rest else target
            resolved = self.resolve_dotted(dotted)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
        return None


@dataclass
class CallGraph:
    """Resolved call edges plus reachability queries."""

    project: Project
    edges: list[CallEdge] = field(default_factory=list)
    #: caller qname -> outgoing edges
    by_caller: dict[str, list[CallEdge]] = field(
        default_factory=lambda: defaultdict(list))
    #: attr name -> method qnames (the fuzzy fan-out universe)
    _methods_by_name: dict[str, list[str]] = field(
        default_factory=lambda: defaultdict(list))

    def add(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self.by_caller[edge.caller].append(edge)

    def reachable(self, roots, *, fuzzy: bool = True) -> set[str]:
        """Function qnames reachable from ``roots`` over the edge set.

        ``fuzzy=True`` (the default, used by the race detector) follows
        name-matched edges for calls on unknown receivers — an
        over-approximation that trades precision for never missing a
        mutation path.  ``fuzzy=False`` follows only ``direct`` edges.
        """
        seen: set[str] = set()
        stack = [r for r in roots if r in self.project.functions]
        while stack:
            fn = stack.pop()
            if fn in seen:
                continue
            seen.add(fn)
            for edge in self.by_caller.get(fn, ()):
                if edge.callee is None:
                    continue
                if edge.kind == "direct" or (fuzzy and edge.kind == "fuzzy"):
                    if edge.callee not in seen:
                        stack.append(edge.callee)
        return seen


# ---------------------------------------------------------------------------
# Project construction
# ---------------------------------------------------------------------------


def _module_name(path: Path, root: Path) -> str:
    rel = path.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def build_project(root: Path) -> Project:
    """Parse every module under ``root`` (a ``repro`` package directory)."""
    root = Path(root)
    project = Project(root=root)
    for path in iter_python_files([root]):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            project.errors.append(Finding(
                rule=SYNTAX_RULE, path=str(path), line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            ))
            continue
        except OSError:
            continue
        module = _module_name(path, root)
        # Aliases resolve relative imports against the file's position, so
        # ``__init__`` must stay in the path handed to the resolver (the
        # package name alone would drop one level off ``from .x import y``).
        alias_module = ".".join(path.relative_to(root).with_suffix("").parts)
        mod = ModuleInfo(
            module=module, path=path, tree=tree,
            lines=source.splitlines(),
            aliases=_collect_aliases(tree, alias_module),
        )
        project.modules[module] = mod
        _collect_symbols(project, mod)
    for mod in project.modules.values():
        _resolve_bases_and_types(project, mod)
    return project


def _collect_symbols(project: Project, mod: ModuleInfo) -> None:
    prefix = f"{mod.module}." if mod.module else ""
    for node in mod.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qname = f"{prefix}{node.name}"
            mod.functions[node.name] = qname
            project.functions[qname] = FunctionInfo(
                qname=qname, module=mod.module, cls=None, name=node.name,
                path=mod.path, lineno=node.lineno, node=node,
            )
        elif isinstance(node, ast.ClassDef):
            cls_qname = f"{prefix}{node.name}"
            mod.classes[node.name] = cls_qname
            cls = ClassInfo(
                qname=cls_qname, module=mod.module, name=node.name,
                path=mod.path, lineno=node.lineno, node=node,
                frozen=_is_frozen_dataclass(node),
            )
            project.classes[cls_qname] = cls
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn_qname = f"{cls_qname}.{item.name}"
                    cls.methods[item.name] = fn_qname
                    project.functions[fn_qname] = FunctionInfo(
                        qname=fn_qname, module=mod.module, cls=cls_qname,
                        name=item.name, path=mod.path, lineno=item.lineno,
                        node=item,
                    )


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = dotted_name(deco.func)
        if name is None or not name.endswith("dataclass"):
            continue
        for kw in deco.keywords:
            if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                return bool(kw.value.value)
    return False


def _resolve_bases_and_types(project: Project, mod: ModuleInfo) -> None:
    """Second pass: base classes, parameter types, attribute types."""
    for cls_qname in mod.classes.values():
        cls = project.classes[cls_qname]
        for base in cls.node.bases:
            resolved = project.class_of_annotation(base, mod)
            if resolved is not None and resolved != cls_qname:
                cls.bases.append(resolved)
        # Class-body annotations (incl. dataclass fields): ``x: SampleCache``.
        for item in cls.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name):
                attr_cls = project.class_of_annotation(item.annotation, mod)
                if attr_cls is not None:
                    cls.attr_types.setdefault(item.target.id, attr_cls)
    for fn in list(project.functions.values()):
        if fn.module != mod.module:
            continue
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            arg_cls = project.class_of_annotation(arg.annotation, mod)
            if arg_cls is not None:
                fn.param_types[arg.arg] = arg_cls
        # ``self.x = Ctor()`` / ``self.x = typed_param`` in any method.
        if fn.cls is None:
            continue
        cls = project.classes[fn.cls]
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    inferred = _infer_value_class(project, mod, fn, node.value)
                    if inferred is not None:
                        cls.attr_types.setdefault(target.attr, inferred)


def _infer_value_class(project: Project, mod: ModuleInfo, fn: FunctionInfo,
                       value: ast.AST) -> str | None:
    """The project class a value expression constructs or forwards."""
    if isinstance(value, ast.Call):
        resolved = _resolve_call_name(project, mod, value.func)
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None
    if isinstance(value, ast.Name):
        return fn.param_types.get(value.id)
    if (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
    ):
        base_cls_qname = None
        if value.value.id == "self" and fn.cls is not None:
            base_cls_qname = fn.cls
        else:
            base_cls_qname = fn.param_types.get(value.value.id)
        if base_cls_qname is not None:
            base_cls = project.classes.get(base_cls_qname)
            if base_cls is not None:
                return project.attr_type(base_cls, value.attr)
    return None


def _resolve_call_name(project: Project, mod: ModuleInfo, func: ast.AST):
    """Resolve a call's function expression by name alone (no receivers)."""
    if isinstance(func, ast.Name):
        if func.id in mod.functions:
            return ("func", mod.functions[func.id])
        if func.id in mod.classes:
            return ("class", mod.classes[func.id])
        target = mod.aliases.get(func.id)
        if target is not None:
            return project.resolve_dotted(target)
        return None
    if isinstance(func, ast.Attribute):
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = mod.aliases.get(head)
        if target is not None and rest:
            return project.resolve_dotted(f"{target}.{rest}")
        return None
    return None


# ---------------------------------------------------------------------------
# Call-graph construction
# ---------------------------------------------------------------------------


def build_call_graph(project: Project) -> CallGraph:
    """Resolve every call site in every function body into edges."""
    graph = CallGraph(project=project)
    for fn in project.functions.values():
        cls = project.classes.get(fn.cls) if fn.cls else None
        methods = graph._methods_by_name
        if not methods:
            for name, qname in _all_methods(project):
                methods[name].append(qname)
        mod = project.modules[fn.module]
        local_types = _collect_local_types(project, mod, fn)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            edge = _resolve_call(project, graph, mod, fn, cls, local_types,
                                 node)
            graph.add(edge)
    return graph


def _all_methods(project: Project):
    for cls in project.classes.values():
        for name, qname in cls.methods.items():
            yield name, qname


def _collect_local_types(project: Project, mod: ModuleInfo,
                         fn: FunctionInfo) -> dict[str, str]:
    """Local variable -> project class, from constructor/typed assignments."""
    local_types: dict[str, str] = dict(fn.param_types)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and (
                isinstance(node.targets[0], ast.Name)):
            inferred = _infer_value_class(project, mod, fn, node.value)
            if inferred is not None:
                local_types[node.targets[0].id] = inferred
        elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name):
            inferred = project.class_of_annotation(node.annotation, mod)
            if inferred is not None:
                local_types[node.target.id] = inferred
    return local_types


def _class_edge(project: Project, cls_qname: str) -> str | None:
    """The function a constructor call lands in (``__init__``), if defined."""
    cls = project.classes.get(cls_qname)
    if cls is None:
        return None
    return project.find_method(cls, "__init__")


def _resolve_call(project, graph, mod, fn, cls, local_types,
                  node: ast.Call) -> CallEdge:
    func = node.func

    def make(callee: str | None, kind: str, raw: str) -> CallEdge:
        return CallEdge(
            caller=fn.qname, callee=callee, kind=kind, raw=raw,
            path=str(fn.path), lineno=node.lineno,
        )
    if isinstance(func, ast.Name):
        resolved = _resolve_call_name(project, mod, func)
        if resolved is not None:
            kind_, qname = resolved
            if kind_ == "func":
                return make(qname, "direct", func.id)
            init = _class_edge(project, qname)
            if init is not None:
                return make(init, "direct", func.id)
            return make(None, "unknown", func.id)
        return make(None, "unknown", func.id)
    if isinstance(func, ast.Attribute):
        raw = dotted_name(func) or f"<expr>.{func.attr}"
        # self.m(...) / cls.m(...) inside a class body.
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and cls is not None
        ):
            method = project.find_method(cls, func.attr)
            if method is not None:
                return make(method, "direct", raw)
            # Fall through: maybe an attribute-typed callable.
        receiver_cls = _receiver_class(project, mod, fn, cls, local_types,
                                       func.value)
        if receiver_cls is not None:
            cls_info = project.classes.get(receiver_cls)
            if cls_info is not None:
                method = project.find_method(cls_info, func.attr)
                if method is not None:
                    return make(method, "direct", raw)
        # Module-attribute call (``module.func(...)``) via the alias map.
        resolved = _resolve_call_name(project, mod, func)
        if resolved is not None:
            kind_, qname = resolved
            if kind_ == "func":
                return make(qname, "direct", raw)
            init = _class_edge(project, qname)
            if init is not None:
                return make(init, "direct", raw)
        # Unknown receiver: fan out to every project method of that name.
        candidates = graph._methods_by_name.get(func.attr, ())
        if candidates:
            for qname in candidates:
                graph.add(make(qname, "fuzzy", raw))
        return make(None, "unknown", raw)
    # getattr(x, name)(...), call-on-call-result, lambdas, subscripts...
    return make(None, "unknown", "<dynamic>")


def _receiver_class(project, mod, fn, cls, local_types,
                    value: ast.AST) -> str | None:
    """The project class of a call receiver expression, if inferable."""
    if isinstance(value, ast.Name):
        if value.id == "self" and cls is not None:
            return cls.qname
        return local_types.get(value.id)
    if isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
        owner: str | None = None
        if value.value.id == "self" and cls is not None:
            owner = cls.qname
        else:
            owner = local_types.get(value.value.id)
        if owner is not None:
            owner_cls = project.classes.get(owner)
            if owner_cls is not None:
                return project.attr_type(owner_cls, value.attr)
    return None
