"""``python -m repro lint`` — run the static analysis pass.

Exit status is 0 when every linted file is clean and 1 when any finding
survives suppression, so the command slots directly into CI.  ``--json``
emits the findings as a JSON array for tooling.
"""

from __future__ import annotations

import sys
from pathlib import Path

from .lint import findings_to_json, format_findings, lint_paths

__all__ = ["run_lint"]

#: Linted when no paths are given: the library itself.
DEFAULT_PATHS = ("src/repro",)


def run_lint(
    paths: list[str] | None,
    as_json: bool = False,
    select: list[str] | None = None,
) -> int:
    """Lint the given files/directories; returns a process exit code.

    ``select`` restricts the run to the named rule IDs — used to apply
    individual rules to paths the full rule set is not meant for (e.g.
    ``--select TST001`` over ``tests/``, where test code legitimately
    violates the library-only rules).
    """
    targets = [Path(p) for p in (paths or DEFAULT_PATHS)]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        print(f"lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    rules = None
    if select:
        # Import for side effect: the project rules register on import.
        from . import rules as _project_rules  # noqa: F401
        from .lint import RULES

        unknown = [rule_id for rule_id in select if rule_id not in RULES]
        if unknown:
            print(f"lint: unknown rule(s): {', '.join(unknown)}; "
                  f"known: {', '.join(sorted(RULES))}", file=sys.stderr)
            return 2
        rules = [RULES[rule_id] for rule_id in select]
    findings = lint_paths(targets, rules=rules)
    if as_json:
        print(findings_to_json(findings))
    else:
        print(format_findings(findings))
    return 1 if findings else 0
