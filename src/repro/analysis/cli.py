"""``python -m repro lint`` — run the static analysis pass.

Exit status is 0 when every linted file is clean and 1 when any finding
survives suppression, so the command slots directly into CI.  ``--json``
emits the findings as a JSON array for tooling.
"""

from __future__ import annotations

import sys
from pathlib import Path

from .lint import findings_to_json, format_findings, lint_paths

__all__ = ["run_lint"]

#: Linted when no paths are given: the library itself.
DEFAULT_PATHS = ("src/repro",)


def run_lint(paths: list[str] | None, as_json: bool = False) -> int:
    """Lint the given files/directories; returns a process exit code."""
    targets = [Path(p) for p in (paths or DEFAULT_PATHS)]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        print(f"lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(targets)
    if as_json:
        print(findings_to_json(findings))
    else:
        print(format_findings(findings))
    return 1 if findings else 0
