"""``python -m repro lint`` — run the static analysis passes.

Two modes share the subcommand:

* the default per-module rule run (``lint [paths...]``), and
* the whole-program pass (``lint --program``): call-graph construction,
  seed-provenance taint (SEED001/SEED002), shared-state detection
  (RACE001/RACE002/RACE003), and call-level layering — gated by the
  committed baseline in ``analysis/baseline.json`` so accepted findings
  never fail CI while new ones always do.

Exit status is 0 when clean (or fully baselined), 1 when any finding
survives suppression and the baseline, 2 on usage errors — so both modes
slot directly into CI.  ``--json`` emits machine-readable output;
``--sarif FILE`` (program mode) writes a SARIF 2.1.0 log for
code-scanning UIs.  ``--fix`` applies the MUT001 None-sentinel rewrite in
place (opt-in; see :mod:`repro.analysis.fix`).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from .lint import findings_to_json, format_findings, lint_paths

__all__ = ["run_lint", "run_program_lint"]

#: Linted when no paths are given: the library itself.
DEFAULT_PATHS = ("src/repro",)

#: Baseline consulted by ``--program`` when it exists and no ``--baseline``
#: or ``--no-baseline`` was given.
DEFAULT_BASELINE = Path("analysis/baseline.json")


def run_lint(
    paths: list[str] | None,
    as_json: bool = False,
    select: list[str] | None = None,
    program: bool = False,
    baseline: str | None = None,
    update_baseline: bool = False,
    no_baseline: bool = False,
    sarif: str | None = None,
    fix: bool = False,
) -> int:
    """Lint the given files/directories; returns a process exit code.

    ``select`` restricts the run to the named rule IDs — used to apply
    individual rules to paths the full rule set is not meant for (e.g.
    ``--select TST001`` over ``tests/``, where test code legitimately
    violates the library-only rules).
    """
    targets = [Path(p) for p in (paths or DEFAULT_PATHS)]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        print(f"lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    if fix:
        if program:
            print("lint: --fix applies per-module fixes; it cannot be "
                  "combined with --program", file=sys.stderr)
            return 2
        from .fix import fix_paths

        files_changed, fixed, skipped = fix_paths(targets)
        for reason in skipped:
            print(f"lint --fix: skipped {reason}", file=sys.stderr)
        print(f"lint --fix: rewrote {fixed} mutable default(s) in "
              f"{files_changed} file(s)")
        # Fall through to a fresh lint so the exit code reflects what is
        # left after fixing.
    if program:
        return run_program_lint(
            targets, as_json=as_json, baseline=baseline,
            update_baseline=update_baseline, no_baseline=no_baseline,
            sarif=sarif,
        )
    rules = None
    if select:
        # Import for side effect: the project rules register on import.
        from . import rules as _project_rules  # noqa: F401
        from .lint import RULES

        unknown = [rule_id for rule_id in select if rule_id not in RULES]
        if unknown:
            print(f"lint: unknown rule(s): {', '.join(unknown)}; "
                  f"known: {', '.join(sorted(RULES))}", file=sys.stderr)
            return 2
        rules = [RULES[rule_id] for rule_id in select]
    findings = lint_paths(targets, rules=rules)
    if as_json:
        print(findings_to_json(findings))
    else:
        print(format_findings(findings))
    return 1 if findings else 0


def run_program_lint(
    targets: list[Path],
    as_json: bool = False,
    baseline: str | None = None,
    update_baseline: bool = False,
    no_baseline: bool = False,
    sarif: str | None = None,
) -> int:
    """The whole-program pass over one package root."""
    from .program import (
        analyze_program,
        apply_baseline,
        load_baseline,
        to_sarif,
        write_baseline,
    )

    if len(targets) != 1 or not targets[0].is_dir():
        print("lint --program: expects exactly one package root directory "
              "(default src/repro)", file=sys.stderr)
        return 2
    report = analyze_program(targets[0])

    baseline_path: Path | None = None
    if not no_baseline:
        if baseline is not None:
            baseline_path = Path(baseline)
        elif DEFAULT_BASELINE.exists() or update_baseline:
            baseline_path = DEFAULT_BASELINE
    if update_baseline:
        if baseline_path is None:
            baseline_path = DEFAULT_BASELINE
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        write_baseline(baseline_path, report.findings)
        print(f"lint --program: baselined {len(report.findings)} "
              f"finding(s) into {baseline_path}")
        return 0

    accepted = load_baseline(baseline_path) if baseline_path else None
    if accepted:
        report.baselined, report.fresh = apply_baseline(report.findings,
                                                        accepted)
    else:
        report.baselined, report.fresh = [], list(report.findings)

    if sarif:
        sarif_path = Path(sarif)
        sarif_path.parent.mkdir(parents=True, exist_ok=True)
        sarif_path.write_text(
            json.dumps(to_sarif(report.findings, report.fresh), indent=2)
            + "\n",
            encoding="utf-8",
        )

    if as_json:
        print(json.dumps({
            "stats": report.stats,
            "baselined": len(report.baselined),
            "fresh": [f.__dict__ for f in report.fresh],
        }, indent=2))
    else:
        for finding in report.fresh:
            print(finding.render())
        summary = (
            f"lint --program: {report.stats['files']} files, "
            f"{report.stats['functions']} functions, "
            f"{report.stats['call_edges']} call edges; "
            f"{len(report.fresh)} new finding(s), "
            f"{len(report.baselined)} baselined"
        )
        print(summary)
    return 1 if report.fresh else 0
