"""Project-specific lint rules for the repro codebase.

Each rule encodes one of the global invariants the paper reproduction
depends on (see ``docs/ANALYSIS.md`` for the full catalogue and rationale):

=======  ==================================================================
RNG001   all randomness flows through ``core/rng.py`` (``derive`` /
         ``derive_random`` / ``make_rng``); no direct RNG construction.
CLK001   no wall-clock / real-I/O access outside the sanctioned modules
         (``storage/disk.py`` owns the simulated clock, ``core/profile.py``
         is the wall-clock profiling layer).
FLT001   no ``==`` / ``!=`` on key or split-bound floats in ``acetree/``.
LAY001   package layering is respected (``core`` < ``storage`` <
         ``acetree``/``workloads`` < ``baselines``/``apps`` < ``view`` <
         ``analysis`` < ``bench``/``serve``/``testkit``).
MUT001   no mutable default arguments.
EXC001   no bare / overbroad ``except`` clauses.
TST001   test files must not monkeypatch the simulated disk's I/O
         internals; fault injection goes through
         :mod:`repro.testkit.faults` so faults are recorded and replayable.
HOT001   the columnar query hot path (``acetree/query.py``,
         ``acetree/storage.py``, ``storage/sample_cache.py``) must not
         materialize record tuples eagerly outside the sanctioned
         consumer-boundary functions.
OBS001   literal metric names passed to the metrics registry must be
         dot-namespaced ``subsystem.name``; ``.labels()`` keyword keys
         must come from the registered label vocabulary
         (``repro.obs.context.LABEL_KEYS``).
OBS002   exemplar and cost capture go through the sanctioned boundary:
         only the obs substrate and the storage charge points may mutate
         the cost accountant's ledger, call ``current_span_id()``, or
         pass an explicit ``span_id=`` to ``observe()``.
=======  ==================================================================

Rules only see one module at a time; whole-program invariants (sample
uniformity, cost conservation) live in :mod:`repro.analysis.invariants`.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .lint import (
    Finding,
    LintContext,
    canonical_name,
    register,
    resolve_import_base,
)

__all__ = ["LAYER_RANKS"]


# ---------------------------------------------------------------------------
# RNG001 — randomness discipline
# ---------------------------------------------------------------------------

#: Modules allowed to construct generators directly.
_RNG_SANCTIONED = {"core.rng"}

#: Canonical callables that construct or reseed a generator.
_RNG_BANNED = {
    "numpy.random.default_rng",
    "numpy.random.seed",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "random.Random",
    "random.seed",
    "random.SystemRandom",
}


@register("RNG001", "direct RNG construction outside core/rng.py")
def check_rng(ctx: LintContext) -> Iterator[Finding]:
    if ctx.module in _RNG_SANCTIONED:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = canonical_name(node.func, ctx.aliases)
        if name in _RNG_BANNED:
            yield ctx.finding(
                "RNG001",
                node,
                f"direct call to {name}(); derive the stream via "
                "repro.core.rng.derive()/derive_random() instead",
            )


# ---------------------------------------------------------------------------
# CLK001 — clock and I/O integrity
# ---------------------------------------------------------------------------

#: ``storage/disk.py`` owns the simulated clock; ``core/profile.py`` and
#: ``obs/tracer.py`` are the sanctioned wall-clock layers (profiler and
#: tracer measure the implementation itself, never the modeled hardware).
_CLK_SANCTIONED = {"storage.disk", "core.profile", "obs.tracer"}

#: Modules whose import alone gives access to wall time / raw I/O.  The
#: import is the choke point: one finding per module instead of one per
#: call keeps suppressions readable.
_CLK_BANNED_MODULES = {"time", "mmap"}

#: Direct file / device access callables (no import needed for ``open``).
_CLK_BANNED_CALLS = {
    "open",
    "os.open",
    "os.read",
    "os.write",
    "os.pread",
    "os.pwrite",
    "os.fdopen",
    "io.open",
    "mmap.mmap",
}


@register("CLK001", "wall clock / raw I/O outside the simulated disk layer")
def check_clock(ctx: LintContext) -> Iterator[Finding]:
    if ctx.module in _CLK_SANCTIONED:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root in _CLK_BANNED_MODULES:
                    yield ctx.finding(
                        "CLK001",
                        node,
                        f"import of {root!r}: timing must flow through the "
                        "simulated clock (storage/disk.py) or the profiler "
                        "(core/profile.py)",
                    )
        elif isinstance(node, ast.ImportFrom):
            base = resolve_import_base(node, ctx.module)
            if base and base.split(".", 1)[0] in _CLK_BANNED_MODULES:
                yield ctx.finding(
                    "CLK001",
                    node,
                    f"import from {base!r}: timing must flow through the "
                    "simulated clock (storage/disk.py) or the profiler "
                    "(core/profile.py)",
                )
        elif isinstance(node, ast.Call):
            name = canonical_name(node.func, ctx.aliases)
            if name in _CLK_BANNED_CALLS:
                yield ctx.finding(
                    "CLK001",
                    node,
                    f"direct call to {name}(); all I/O must route through "
                    "the simulated disk layer",
                )


# ---------------------------------------------------------------------------
# FLT001 — float equality on keys / split bounds in acetree/
# ---------------------------------------------------------------------------

_FLT_NAME_RE = re.compile(r"key|split|bound|boundar|quantile", re.IGNORECASE)


def _is_float_valued(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    return False


def _is_suspect_name(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return bool(_FLT_NAME_RE.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_FLT_NAME_RE.search(node.attr))
    return False


def _is_non_numeric_const(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (str, bytes, bool, type(None))
    )


@register("FLT001", "float equality on keys / split bounds in acetree/")
def check_float_eq(ctx: LintContext) -> Iterator[Finding]:
    if ctx.module is None or not ctx.module.startswith("acetree"):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        if any(_is_float_valued(op) for op in operands):
            yield ctx.finding(
                "FLT001",
                node,
                "== / != against a float value; split bounds and keys must "
                "be compared with ordering predicates or math.isinf/isnan",
            )
        elif any(_is_suspect_name(op) for op in operands) and not any(
            _is_non_numeric_const(op) for op in operands
        ):
            yield ctx.finding(
                "FLT001",
                node,
                "== / != on a key/split-bound value; use ordering "
                "predicates (floats make equality fragile)",
            )


# ---------------------------------------------------------------------------
# LAY001 — import layering
# ---------------------------------------------------------------------------

#: A package may import from packages of rank <= its own.  Top-level
#: modules (``__init__``, ``__main__``) may import anything.
LAYER_RANKS = {
    "core": 0,
    "obs": 0,
    "storage": 1,
    "workloads": 2,
    "acetree": 2,
    "baselines": 3,
    "apps": 3,
    "view": 4,
    "analysis": 5,
    "bench": 6,
    "serve": 6,
    "testkit": 6,
}


def _repro_target(base: str) -> str | None:
    """The repro subpackage an absolute dotted import refers to, if any."""
    parts = base.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


@register("LAY001", "import-layering violation between repro subpackages")
def check_layering(ctx: LintContext) -> Iterator[Finding]:
    if ctx.module is None or "." not in ctx.module:
        return  # top-level modules sit above the layering
    own_pkg = ctx.module.split(".", 1)[0]
    own_rank = LAYER_RANKS.get(own_pkg)
    if own_rank is None:
        return
    for node in ast.walk(ctx.tree):
        targets: list[tuple[ast.AST, str]] = []
        if isinstance(node, ast.ImportFrom):
            base = resolve_import_base(node, ctx.module)
            if base:
                targets.append((node, base))
        elif isinstance(node, ast.Import):
            targets.extend((node, alias.name) for alias in node.names)
        for at, base in targets:
            pkg = _repro_target(base)
            if pkg is None:
                continue
            rank = LAYER_RANKS.get(pkg)
            if rank is not None and rank > own_rank:
                yield ctx.finding(
                    "LAY001",
                    at,
                    f"{own_pkg}/ (layer {own_rank}) imports repro.{pkg} "
                    f"(layer {rank}); lower layers must not depend on "
                    "higher ones",
                )


# ---------------------------------------------------------------------------
# MUT001 — mutable default arguments
# ---------------------------------------------------------------------------

_MUT_FACTORIES = {"list", "dict", "set", "bytearray"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUT_FACTORIES
    ):
        return True
    return False


@register("MUT001", "mutable default argument")
def check_mutable_defaults(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield ctx.finding(
                    "MUT001",
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the function",
                )


# ---------------------------------------------------------------------------
# EXC001 — bare / overbroad except clauses
# ---------------------------------------------------------------------------

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _names_in_handler_type(node: ast.AST | None) -> Iterator[str]:
    if node is None:
        return
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _names_in_handler_type(element)
    else:
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            yield name


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(stmt, ast.Raise) and stmt.exc is None for stmt in handler.body
    )


@register("EXC001", "bare or overbroad except clause")
def check_excepts(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield ctx.finding(
                "EXC001",
                node,
                "bare except catches SystemExit/KeyboardInterrupt too; "
                "name the exceptions you expect",
            )
            continue
        broad = [
            name
            for name in _names_in_handler_type(node.type)
            if name in _BROAD_EXCEPTIONS
        ]
        if broad and not _reraises(node):
            yield ctx.finding(
                "EXC001",
                node,
                f"overbroad except {broad[0]} without re-raise; narrow it "
                "to the exceptions this site expects",
            )


# ---------------------------------------------------------------------------
# HOT001 — no eager record materialization in the query hot path
# ---------------------------------------------------------------------------

#: The zero-copy hot path (see docs/PERFORMANCE.md): these modules stream
#: lazy batch handles and column views; decoding every record into Python
#: tuples belongs to the consumer, not the loop.
_HOT_MODULES = {"acetree.query", "acetree.storage", "storage.sample_cache"}

#: Method calls that decode a whole record set in one go.
_HOT_EAGER_CALLS = {"section_records", "to_leaf_node", "unpack_many"}

#: An attribute whose *load* decodes every record of a page/batch
#: (``PageView.records``, ``SampleBatch.records``).
_HOT_EAGER_ATTR = "records"

#: The sanctioned materialization boundaries — the functions whose entire
#: purpose is handing decoded tuples to a consumer that asked for them.
#: Anything else (the stab loop, Combine filing/draining, cache
#: fetch/insert) must stay lazy; one-off exceptions carry a
#: ``# repro: allow[HOT001]`` comment explaining why.
_HOT_SANCTIONED_FUNCS = {"records", "materialize", "take", "read_leaf"}


def _walk_with_function(tree: ast.AST) -> Iterator[tuple[ast.AST, str | None]]:
    """Every node paired with the name of its innermost enclosing function."""
    stack: list[tuple[ast.AST, str | None]] = [(tree, None)]
    while stack:
        node, func = stack.pop()
        yield node, func
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.append((child, child.name))
            else:
                stack.append((child, func))


@register("HOT001", "eager record materialization in the query hot path")
def check_hot_path(ctx: LintContext) -> Iterator[Finding]:
    if ctx.module not in _HOT_MODULES:
        return
    for node, func in _walk_with_function(ctx.tree):
        if func in _HOT_SANCTIONED_FUNCS:
            continue
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _HOT_EAGER_CALLS
        ):
            yield ctx.finding(
                "HOT001",
                node,
                f".{node.func.attr}() decodes a full record set inside the "
                "query hot path; keep cells/batches lazy and let the "
                "consumer materialize (see docs/PERFORMANCE.md)",
            )
        elif (
            isinstance(node, ast.Attribute)
            and node.attr == _HOT_EAGER_ATTR
            and isinstance(node.ctx, ast.Load)
        ):
            yield ctx.finding(
                "HOT001",
                node,
                f"loading .{_HOT_EAGER_ATTR} decodes every record inside "
                "the query hot path; keep cells/batches lazy and let the "
                "consumer materialize (see docs/PERFORMANCE.md)",
            )


# ---------------------------------------------------------------------------
# TST001 — no ad-hoc disk monkeypatching in tests
# ---------------------------------------------------------------------------

#: Disk internals tests must not stub out directly: patched faults are
#: unrecorded and unreplayable, and they skip the accounting the real
#: read/write paths perform.  :class:`repro.testkit.faults.FaultyDisk`
#: exists precisely so injected failures are deterministic and replayable.
_TST_PATCH_BANNED = {
    "read_page", "write_page", "_charge_access", "_pages", "_checksums",
}


def _mentions_banned_attr(value) -> bool:
    return isinstance(value, str) and (
        value in _TST_PATCH_BANNED
        or any(value.endswith("." + attr) for attr in _TST_PATCH_BANNED)
    )


@register("TST001", "test monkeypatches the simulated disk's I/O internals")
def check_test_disk_patching(ctx: LintContext) -> Iterator[Finding]:
    if "tests" not in ctx.path.parts:
        return
    message = (
        "{what} replaces the disk's I/O path behind the accounting layer; "
        "inject failures via repro.testkit.faults.FaultyDisk/FaultPlan so "
        "they are deterministic and replayable"
    )
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _TST_PATCH_BANNED
                ):
                    yield ctx.finding(
                        "TST001",
                        node,
                        message.format(what=f"assignment to .{target.attr}"),
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            is_setattr = (
                isinstance(func, ast.Name) and func.id == "setattr"
            ) or (isinstance(func, ast.Attribute) and func.attr == "setattr")
            if not is_setattr:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Constant) and _mentions_banned_attr(
                    arg.value
                ):
                    yield ctx.finding(
                        "TST001",
                        node,
                        message.format(what=f"setattr of {arg.value!r}"),
                    )
                    break


# ---------------------------------------------------------------------------
# OBS001 — metric naming and label vocabulary
# ---------------------------------------------------------------------------

#: Metric-family constructor methods on the metrics registry.
_OBS_FAMILY_METHODS = {"counter", "gauge", "histogram"}

#: ``subsystem.name``: lowercase dot-separated segments, at least two.
_OBS_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: The registered label vocabulary (mirrors ``repro.obs.context.LABEL_KEYS``;
#: kept literal so the analyzer never imports the library it is checking).
_OBS_LABEL_KEYS = {"tenant", "query", "sampler", "shard", "section"}


def _is_metrics_receiver(node: ast.AST) -> bool:
    """True when the call receiver looks like a metrics registry.

    Matches ``METRICS``, ``metrics``, ``self.metrics``/``self._metrics`` and
    other dotted chains whose final segment names a registry.  Keeping the
    check name-based (rather than type-based) is what lets the rule run on
    one module at a time.
    """
    name = canonical_name(node, {})
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1].lower().lstrip("_")
    return tail in {"metrics", "registry"} or name.endswith("METRICS")


@register("OBS001", "metric name / label key outside the registered scheme")
def check_obs_naming(ctx: LintContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr in _OBS_FAMILY_METHODS and _is_metrics_receiver(
            func.value
        ):
            if not node.args:
                continue
            first = node.args[0]
            # Dynamic names (f-strings, variables) are checked at runtime
            # by the registry; the lint pins only literal names.
            if not isinstance(first, ast.Constant) or not isinstance(
                first.value, str
            ):
                continue
            if not _OBS_NAME_RE.match(first.value):
                yield ctx.finding(
                    "OBS001",
                    node,
                    f"metric name {first.value!r} is not dot-namespaced; "
                    "use 'subsystem.name' (e.g. 'query.lost_leaves')",
                )
        elif func.attr == "labels":
            for kw in node.keywords:
                if kw.arg is None:  # **CONTEXT.labels() expansion
                    continue
                if kw.arg not in _OBS_LABEL_KEYS:
                    allowed = ", ".join(sorted(_OBS_LABEL_KEYS))
                    yield ctx.finding(
                        "OBS001",
                        node,
                        f"label key {kw.arg!r} is not in the registered "
                        f"vocabulary ({allowed}); extend "
                        "repro.obs.context.LABEL_KEYS first",
                    )


# ---------------------------------------------------------------------------
# OBS002 — exemplar / cost capture stays behind the sanctioned boundary
# ---------------------------------------------------------------------------

#: Modules allowed to capture span ids or mutate the cost accountant's
#: ledger: the obs substrate itself plus the storage charge points.  Any
#: other call site must let ``Histogram.observe`` resolve the ambient
#: span and let the disk layer attribute its own charges — ad-hoc
#: capture would fork the attribution path and break the conservation
#: check.
_OBS2_SANCTIONED = {
    "obs.analyze",
    "obs.cost",
    "obs.export",
    "obs.expose",
    "obs.flight",
    "obs.metrics",
    "obs.recorder",
    "obs.report",
    "obs.tracer",
    "storage.disk",
    "storage.recovery",
}

#: Ledger mutators on the cost accountant.
_OBS2_COST_METHODS = {"record_reads", "record_writes", "record_io"}


def _is_cost_receiver(node: ast.AST) -> bool:
    """True when the call receiver looks like the cost accountant."""
    name = canonical_name(node, {})
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1].lstrip("_").lower()
    return tail in {"cost", "accountant"}


@register("OBS002", "exemplar/cost capture outside the sanctioned boundary")
def check_obs_boundary(ctx: LintContext) -> Iterator[Finding]:
    if ctx.module in _OBS2_SANCTIONED:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr in _OBS2_COST_METHODS and _is_cost_receiver(func.value):
            yield ctx.finding(
                "OBS002",
                node,
                f"direct COST.{func.attr}() outside the storage charge "
                "points; page attribution flows through repro.storage.disk "
                "and repro.storage.recovery only",
            )
        elif func.attr == "current_span_id":
            yield ctx.finding(
                "OBS002",
                node,
                "ad-hoc span-id capture via current_span_id(); exemplars "
                "are recorded inside Histogram.observe (repro.obs.metrics)",
            )
        elif func.attr == "observe" and any(
            kw.arg == "span_id" for kw in node.keywords
        ):
            yield ctx.finding(
                "OBS002",
                node,
                "explicit span_id= on observe() outside the trace "
                "recorder; let the histogram resolve the ambient span",
            )
