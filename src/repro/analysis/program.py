"""The whole-program determinism & concurrency-safety pass.

``python -m repro lint --program`` runs four analyses over the project
call graph (:mod:`repro.analysis.callgraph`) that no per-module rule can
express — the gate every scheduler/sharding PR (ROADMAP item 1) runs
under:

=========  ================================================================
SEED001    two call sites derive RNG streams with the *same* constant tag
           tuple — their draws are bit-identical, silently correlating
           components that believe they are independent.
SEED002    an RNG object escapes the scope that derived it: stored at
           module level, stored on a *foreign* object's attribute, or
           returned from a function outside ``core/rng.py``.  Escaped
           generators are shared mutable cursors; two consumers advancing
           one stream destroys replayability.
RACE001    module-level mutable state (dict/list/set/OrderedDict/counter
           objects, stateful project-class singletons) without a
           ``# repro: shared[...]`` annotation.
RACE002    an instance dict/list/cache attribute that is mutated on a call
           chain reachable from the sampling hot paths (traversals that
           ROADMAP item 1 will interleave), without an annotation on the
           attribute or its class.
RACE003    the annotation registry is inconsistent: a ``shared[...]``
           annotation missing from the ``pyproject.toml`` allowlist, a
           spec mismatch, a stale allowlist entry, or an annotation on an
           unrecognizable site.
LAY001     (upgraded) a *resolved call edge* crosses the package layering
           upward — catches dynamic imports and callbacks the per-module
           import rule cannot see.
=========  ================================================================

Pre-existing accepted findings live in a committed baseline
(``analysis/baseline.json``): baselined findings never fail the run, new
ones always do.  Output is human text, ``--json``, or SARIF 2.1.0
(``--sarif FILE``) for code-scanning UIs.  The runtime counterpart — the
access-ordinal sanitizer proving the ``confined`` annotations honest —
lives in :mod:`repro.analysis.invariants`.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from pathlib import Path

from .callgraph import (
    CallGraph,
    Project,
    _collect_local_types,
    _receiver_class,
    _resolve_call_name,
    build_call_graph,
    build_project,
)
from .lint import Finding, suppressed_rule_index
from .rules import LAYER_RANKS
from .state import (
    MUTABLE_FACTORIES,
    MUTATOR_METHODS,
    SharedAnnotation,
    collect_annotations,
    load_allowlist,
    parse_spec,
)

__all__ = [
    "PROGRAM_RULES",
    "ProgramReport",
    "analyze_program",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "to_sarif",
    "write_baseline",
]

#: Rule descriptors for output and SARIF metadata.
PROGRAM_RULES = {
    "SEED001": "duplicate derive() tag: two sites draw identical streams",
    "SEED002": "RNG object escapes its deriving scope",
    "RACE001": "unannotated module-level mutable state",
    "RACE002": "unannotated instance state mutated on a hot traversal path",
    "RACE003": "shared[...] annotation registry violation",
    "LAY001": "call-graph layering violation between repro subpackages",
    "AST000": "file does not parse",
}

#: Functions whose return value is a seeded generator (the taint sources).
_RNG_SOURCES = frozenset({
    "core.rng.derive",
    "core.rng.derive_random",
    "core.rng.make_rng",
    "core.rng.spawn",
})

#: The tag-taking derivation entry points (SEED001 collision candidates).
_TAGGED_SOURCES = frozenset({"core.rng.derive", "core.rng.derive_random"})

#: Modules exempt from the SEED escape rules (they implement the
#: discipline).
_SEED_SANCTIONED = frozenset({"core.rng"})

#: Entry points of the sampling/query surface — the call chains ROADMAP
#: item 1 will run concurrently, and hence the roots of the RACE002
#: reachability.  Extended (never replaced) by ``hot_roots`` in
#: ``[tool.repro.program]``.
DEFAULT_HOT_ROOTS = (
    r"^acetree\.tree\.AceTree\.sample$",
    r"^acetree\.query\.SampleStream\.(__init__|__next__|__iter__|take|records)$",
    r"^baselines\.\w+\.\w+\.(sample|sample_olken)$",
    r"^view\.\w+\.\w+\.sample\w*$",
    r"^storage\.sample_cache\.SampleCache\.(get|peek|put)$",
    r"^storage\.buffer\.(BufferPool|RecordPageCache)\.(read|write)$",
    r"^storage\.buffer\.DecodeMemo\.(get|put)$",
)

#: Current baseline file format version.
BASELINE_VERSION = 1


@dataclass
class ProgramReport:
    """Everything one whole-program run produced."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    fresh: list[Finding] = field(default_factory=list)
    stats: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Helpers shared by the passes
# ---------------------------------------------------------------------------


def _ordered_stmts(body):
    """Statements of a body in execution order, not entering nested defs."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for field_name in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field_name, None)
            if isinstance(sub, list):
                yield from _ordered_stmts(
                    [s for s in sub if isinstance(s, ast.stmt)])
        for handler in getattr(stmt, "handlers", None) or ():
            yield from _ordered_stmts(handler.body)


def _callee_qname(project: Project, mod, fn, call: ast.Call) -> str | None:
    """The function qname a call resolves to by name, or None."""
    resolved = _resolve_call_name(project, mod, call.func)
    if resolved is not None and resolved[0] == "func":
        return resolved[1]
    if (
        isinstance(call.func, ast.Attribute)
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id in ("self", "cls")
        and fn is not None
        and fn.cls is not None
    ):
        cls = project.classes.get(fn.cls)
        if cls is not None:
            return project.find_method(cls, call.func.attr)
    return None


def _finding(rule: str, path, node_or_line, message: str,
             col: int = 1) -> Finding:
    if isinstance(node_or_line, int):
        line, column = node_or_line, col
    else:
        line = getattr(node_or_line, "lineno", 1)
        column = getattr(node_or_line, "col_offset", 0) + 1
    return Finding(rule=rule, path=str(path), line=line, col=column,
                   message=message)


def _mutable_kind(project: Project, mod, value: ast.AST) -> str | None:
    """How a value expression is shared-mutable, or None if it is not."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if not isinstance(value, ast.Call):
        return None
    resolved = _resolve_call_name(project, mod, value.func)
    if resolved is not None and resolved[0] == "class":
        cls = project.classes.get(resolved[1])
        if cls is not None and not cls.frozen:
            return f"instance of {cls.name}"
        return None
    if isinstance(value.func, ast.Name):
        name = mod.aliases.get(value.func.id, value.func.id)
    else:
        from .lint import canonical_name

        name = canonical_name(value.func, mod.aliases)
    if name in MUTABLE_FACTORIES:
        return f"{name}()"
    return None


# ---------------------------------------------------------------------------
# SEED001 — duplicate derivation tags
# ---------------------------------------------------------------------------


def _check_seed_collisions(project: Project) -> list[Finding]:
    sites: dict[tuple, list[tuple]] = defaultdict(list)
    for fn in project.functions.values():
        if fn.module in _SEED_SANCTIONED:
            continue
        mod = project.modules[fn.module]
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = _callee_qname(project, mod, fn, node)
            if callee not in _TAGGED_SOURCES:
                continue
            tags = node.args[1:]
            if not tags or not all(
                isinstance(t, ast.Constant)
                and isinstance(t.value, (str, int))
                for t in tags
            ):
                continue
            key = tuple(t.value for t in tags)
            sites[key].append((str(fn.path), node.lineno,
                               node.col_offset + 1, fn.qname, key))
    findings: list[Finding] = []
    for key, occurrences in sites.items():
        # Distinct *functions* deriving with one tag tuple draw identical
        # streams; repeated derivation inside one function is the
        # sanctioned replay idiom.
        by_fn = {occ[3] for occ in occurrences}
        if len(by_fn) < 2:
            continue
        occurrences.sort()
        first = occurrences[0]
        for path, line, col, qname, tags in occurrences[1:]:
            if qname == first[3]:
                continue
            findings.append(Finding(
                rule="SEED001", path=path, line=line, col=col,
                message=(
                    f"derive tag {tags!r} in {qname} is also used by "
                    f"{first[3]} ({first[0]}:{first[1]}): both sites draw "
                    "bit-identical streams — give each derivation a "
                    "distinct tag"
                ),
            ))
    return findings


# ---------------------------------------------------------------------------
# SEED002 — escaped RNG objects
# ---------------------------------------------------------------------------


def _returns_and_escapes(project, mod, fn, rng_returning, emit):
    """One intraprocedural taint pass over ``fn``.

    Returns True when the function returns a tainted value.  With
    ``emit`` set, appends SEED002 findings for escapes (module-level and
    foreign-attribute stores, returns).
    """
    tainted: set[str] = set()
    returns = False
    findings: list[Finding] = []

    def value_tainted(expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, ast.Call):
            return _callee_qname(project, mod, fn, expr) in rng_returning
        if isinstance(expr, ast.IfExp):
            return value_tainted(expr.body) or value_tainted(expr.orelse)
        if isinstance(expr, ast.NamedExpr):
            return value_tainted(expr.value)
        return False

    # Two passes so loop-carried taint converges.
    for _ in range(2):
        for stmt in _ordered_stmts(fn.node.body):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is None:
                    continue
                hot = value_tainted(value)
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        if hot:
                            tainted.add(target.id)
                        else:
                            tainted.discard(target.id)
                    elif hot and isinstance(target, ast.Attribute):
                        base = target.value
                        if not (isinstance(base, ast.Name)
                                and base.id in ("self", "cls")):
                            findings.append(_finding(
                                "SEED002", fn.path, stmt,
                                f"RNG stored on a foreign object "
                                f"(.{target.attr}) in {fn.qname}: the "
                                "generator escapes its deriving scope and "
                                "becomes shared mutable state — store a "
                                "(seed, tag) pair and re-derive instead",
                            ))
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None and value_tainted(stmt.value):
                    returns = True
                    findings.append(_finding(
                        "SEED002", fn.path, stmt,
                        f"{fn.qname} returns a live RNG object; callers "
                        "share one stream cursor and draws stop being "
                        "attributable to a (seed, tag) — return the "
                        "seed/tag, or sanction the factory in core/rng.py",
                    ))
    if emit is not None:
        # De-duplicate the two convergence passes by anchor.
        seen = set()
        for finding in findings:
            key = (finding.path, finding.line, finding.col, finding.message)
            if key not in seen:
                seen.add(key)
                emit.append(finding)
    return returns


def _check_seed_escapes(project: Project) -> list[Finding]:
    rng_returning = set(_RNG_SOURCES)
    # Fixpoint: a function returning a tainted value is itself a source
    # for its callers (the interprocedural step).
    changed = True
    guard = 0
    while changed and guard < 10:
        changed = False
        guard += 1
        for fn in project.functions.values():
            if fn.module in _SEED_SANCTIONED or fn.qname in rng_returning:
                continue
            mod = project.modules[fn.module]
            if _returns_and_escapes(project, mod, fn, rng_returning, None):
                rng_returning.add(fn.qname)
                changed = True
    findings: list[Finding] = []
    for fn in project.functions.values():
        if fn.module in _SEED_SANCTIONED:
            continue
        mod = project.modules[fn.module]
        _returns_and_escapes(project, mod, fn, rng_returning, findings)
    # Module-level: an RNG bound at import time is global shared state.
    for mod in project.modules.values():
        if mod.module in _SEED_SANCTIONED:
            continue
        for stmt in mod.tree.body:
            value = getattr(stmt, "value", None)
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            if isinstance(value, ast.Call):
                resolved = _resolve_call_name(project, mod, value.func)
                if (resolved is not None and resolved[0] == "func"
                        and resolved[1] in rng_returning):
                    findings.append(_finding(
                        "SEED002", mod.path, stmt,
                        "module-level RNG object: every importer shares "
                        "one stream cursor — derive inside the consuming "
                        "function from an explicit (seed, tag)",
                    ))
    return findings


# ---------------------------------------------------------------------------
# Shared-state annotation sites (RACE003 registry checking)
# ---------------------------------------------------------------------------


@dataclass
class _AnnotatedSite:
    site: str  #: qualified site name (``"obs.metrics.METRICS"``)
    annotation: SharedAnnotation
    path: str
    line: int


def _annotation_sites(project: Project) -> tuple[list[_AnnotatedSite],
                                                 list[Finding]]:
    """Map every ``shared[...]`` annotation to the site it covers."""
    sites: list[_AnnotatedSite] = []
    orphans: list[Finding] = []
    for mod in project.modules.values():
        annotations = collect_annotations(mod.lines)
        if not annotations:
            continue
        covered: dict[int, str] = {}
        prefix = f"{mod.module}." if mod.module else ""

        def span_of(node, header_only=False) -> range:
            end = getattr(node, "end_lineno", None) or node.lineno
            body = getattr(node, "body", None)
            if header_only and isinstance(body, list) and body:
                end = body[0].lineno - 1
            return range(node.lineno, end + 1)

        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                target = (stmt.targets[0] if isinstance(stmt, ast.Assign)
                          and stmt.targets else getattr(stmt, "target", None))
                if isinstance(target, ast.Name):
                    for line in span_of(stmt):
                        covered.setdefault(line, f"{prefix}{target.id}")
            elif isinstance(stmt, ast.ClassDef):
                cls_site = f"{prefix}{stmt.name}"
                for line in span_of(stmt, header_only=True):
                    covered.setdefault(line, cls_site)
                for item in stmt.body:
                    if isinstance(item, ast.AnnAssign) and isinstance(
                            item.target, ast.Name):
                        for line in span_of(item):
                            covered.setdefault(
                                line, f"{cls_site}.{item.target.id}")
                    elif isinstance(item, ast.Assign) and item.targets and (
                            isinstance(item.targets[0], ast.Name)):
                        for line in span_of(item):
                            covered.setdefault(
                                line, f"{cls_site}.{item.targets[0].id}")
                    elif isinstance(item, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        for node in ast.walk(item):
                            if isinstance(node, ast.Assign):
                                node_targets = node.targets
                            elif isinstance(node, ast.AnnAssign):
                                node_targets = [node.target]
                            else:
                                continue
                            for tgt in node_targets:
                                if (
                                    isinstance(tgt, ast.Attribute)
                                    and isinstance(tgt.value, ast.Name)
                                    and tgt.value.id == "self"
                                ):
                                    for line in span_of(node):
                                        covered.setdefault(
                                            line,
                                            f"{cls_site}.{tgt.attr}")
        for lineno, annotation in annotations.items():
            site = covered.get(lineno)
            if site is None:
                orphans.append(Finding(
                    rule="RACE003", path=str(mod.path), line=lineno, col=1,
                    message=(
                        "shared[...] annotation is not attached to a "
                        "module-level binding, a class, or an instance "
                        "attribute — move it onto the shared site it "
                        "sanctions"
                    ),
                ))
                continue
            sites.append(_AnnotatedSite(
                site=site, annotation=annotation, path=str(mod.path),
                line=lineno,
            ))
    return sites, orphans


def _check_registry(sites: list[_AnnotatedSite], registry: dict[str, str],
                    pyproject: Path | None) -> list[Finding]:
    findings: list[Finding] = []
    annotated = {s.site: s for s in sites}
    for name, site in sorted(annotated.items()):
        spec = registry.get(name)
        if spec is None:
            findings.append(Finding(
                rule="RACE003", path=site.path, line=site.line, col=1,
                message=(
                    f"shared[{site.annotation.spec}] on {name} is not in "
                    "the [tool.repro.program] shared allowlist of "
                    "pyproject.toml — register it so sanctioned shared "
                    "state stays reviewable in one place"
                ),
            ))
            continue
        kind, lock = parse_spec(spec)
        if (kind, lock) != (site.annotation.kind, site.annotation.lock):
            findings.append(Finding(
                rule="RACE003", path=site.path, line=site.line, col=1,
                message=(
                    f"shared[{site.annotation.spec}] on {name} disagrees "
                    f"with the allowlist entry '{spec}' in pyproject.toml "
                    "— the annotation and the registry must tell the same "
                    "concurrency story"
                ),
            ))
    for name in sorted(registry):
        if name not in annotated:
            findings.append(Finding(
                rule="RACE003",
                path=str(pyproject) if pyproject else "pyproject.toml",
                line=1, col=1,
                message=(
                    f"stale allowlist entry: {name} has no matching "
                    "shared[...] annotation in the source tree — remove "
                    "the entry or restore the annotation"
                ),
            ))
    return findings


# ---------------------------------------------------------------------------
# RACE001 — module-level mutable state
# ---------------------------------------------------------------------------

_CONST_NAME_RE = re.compile(r"^_?[A-Z][A-Z0-9_]*$")


def _is_literal_constant(name: str, value: ast.AST) -> bool:
    """ALL_CAPS bound to a *non-empty* literal container with no calls.

    Such bindings are constants by project convention (rule tables, banned
    sets, schema dicts): built once by the literal, never grown.  An
    *empty* literal does not qualify — a registry that starts empty exists
    to be mutated.
    """
    if not _CONST_NAME_RE.match(name):
        return False
    if not isinstance(value, (ast.Dict, ast.Set, ast.List, ast.Tuple)):
        return False
    elts = value.keys if isinstance(value, ast.Dict) else value.elts
    if not elts:
        return False
    return not any(isinstance(sub, ast.Call) for sub in ast.walk(value))


def _check_module_state(project: Project,
                        annotated_sites: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    for mod in project.modules.values():
        prefix = f"{mod.module}." if mod.module else ""
        for stmt in mod.tree.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            target = (stmt.targets[0] if isinstance(stmt, ast.Assign)
                      and len(stmt.targets) == 1
                      else getattr(stmt, "target", None))
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.startswith("__") and name.endswith("__"):
                continue  # __all__ and friends: written once, by convention
            value = stmt.value
            if value is None:
                continue
            if _is_literal_constant(name, value):
                continue
            kind = _mutable_kind(project, mod, value)
            if kind is None:
                continue
            site = f"{prefix}{name}"
            if site in annotated_sites:
                continue
            findings.append(_finding(
                "RACE001", mod.path, stmt,
                f"module-level mutable state {name} ({kind}): every "
                "importer shares it and concurrent traversals will race — "
                "annotate `# repro: shared[lock=<name>|confined|frozen]` "
                "(and register it in pyproject.toml) or construct it "
                "per-use",
            ))
    return findings


# ---------------------------------------------------------------------------
# RACE002 — hot-path shared instance state
# ---------------------------------------------------------------------------


def _declared_mutable_attrs(project: Project):
    """(class qname, attr) -> (kind, path, lineno) for container attrs."""
    declared: dict[tuple[str, str], tuple[str, str, int]] = {}
    for cls in project.classes.values():
        mod = project.modules[cls.module]
        for item in cls.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name):
                kind = _dataclass_field_kind(project, mod, item.value)
                if kind is None and item.value is not None:
                    kind = _container_kind(project, mod, item.value)
                if kind is not None:
                    declared[(cls.qname, item.target.id)] = (
                        kind, str(mod.path), item.lineno)
        for method_name in ("__init__", "__post_init__"):
            fn_qname = cls.methods.get(method_name)
            if fn_qname is None:
                continue
            fn = project.functions[fn_qname]
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        kind = _container_kind(project, mod, value)
                        if kind is not None:
                            declared.setdefault(
                                (cls.qname, target.attr),
                                (kind, str(mod.path), node.lineno))
    return declared


def _container_kind(project, mod, value) -> str | None:
    """Like :func:`_mutable_kind` but containers only (no class instances).

    Composition (``self.stats = CacheStats()``) is the normal shape of an
    object; the race surface this rule tracks is the *container* caches
    and memos that grow and evict on the hot path.
    """
    kind = _mutable_kind(project, mod, value)
    if kind is None or kind.startswith("instance of"):
        return None
    return kind


def _dataclass_field_kind(project, mod, value) -> str | None:
    """Mutable default_factory of a dataclass ``field(...)`` value."""
    if not isinstance(value, ast.Call):
        return None
    name = None
    if isinstance(value.func, ast.Name):
        name = mod.aliases.get(value.func.id, value.func.id)
    if name is None or not name.endswith("field"):
        return None
    for kw in value.keywords:
        if kw.arg == "default_factory" and isinstance(kw.value, ast.Name):
            factory = mod.aliases.get(kw.value.id, kw.value.id)
            if factory in MUTABLE_FACTORIES:
                return f"field(default_factory={kw.value.id})"
    return None


def _collect_mutations(project: Project):
    """(class qname, attr) -> list of (fn qname, path, lineno) mutations."""
    mutations: dict[tuple[str, str], list[tuple[str, str, int]]] = (
        defaultdict(list))
    for fn in project.functions.values():
        mod = project.modules[fn.module]
        cls = project.classes.get(fn.cls) if fn.cls else None
        local_types = _collect_local_types(project, mod, fn)

        def owner_of(attr_node: ast.Attribute) -> str | None:
            owner = _receiver_class(project, mod, fn, cls, local_types,
                                    attr_node.value)
            return owner

        def note(attr_node: ast.Attribute) -> None:
            owner = owner_of(attr_node)
            if owner is not None:
                mutations[(owner, attr_node.attr)].append(
                    (fn.qname, str(fn.path), attr_node.lineno))

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                            target.value, ast.Attribute):
                        note(target.value)
                    elif isinstance(target, ast.Attribute):
                        if fn.name not in ("__init__", "__post_init__"):
                            note(target)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Subscript) and isinstance(
                        node.target.value, ast.Attribute):
                    note(node.target.value)
                elif isinstance(node.target, ast.Attribute):
                    note(node.target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                            target.value, ast.Attribute):
                        note(target.value)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Attribute)
                ):
                    note(func.value)
    return mutations


def _hot_roots(project: Project, extra_patterns) -> list[str]:
    patterns = [re.compile(p) for p in
                (*DEFAULT_HOT_ROOTS, *extra_patterns)]
    return [qname for qname in project.functions
            if any(p.search(qname) for p in patterns)]


def _check_instance_state(project: Project, graph: CallGraph,
                          annotated_sites: set[str],
                          extra_roots) -> list[Finding]:
    declared = _declared_mutable_attrs(project)
    if not declared:
        return []
    mutations = _collect_mutations(project)
    hot = graph.reachable(_hot_roots(project, extra_roots), fuzzy=True)
    findings: list[Finding] = []
    for (cls_qname, attr), (kind, path, lineno) in sorted(declared.items()):
        hot_sites = [m for m in mutations.get((cls_qname, attr), ())
                     if m[0] in hot]
        if not hot_sites:
            continue
        site = f"{cls_qname}.{attr}"
        if site in annotated_sites or cls_qname in annotated_sites:
            continue
        cls = project.classes[cls_qname]
        sample = hot_sites[0]
        findings.append(Finding(
            rule="RACE002", path=path, line=lineno, col=1,
            message=(
                f"instance attribute {cls.name}.{attr} ({kind}) is mutated "
                f"on a hot traversal path ({sample[0]} at "
                f"{sample[1]}:{sample[2]}); interleaved traversals will "
                "race on it — annotate `# repro: shared[lock=<name>|"
                "confined|frozen]` on the attribute or its class (and "
                "register it in pyproject.toml), or make it "
                "traversal-local"
            ),
        ))
    return findings


# ---------------------------------------------------------------------------
# LAY001 — call-graph layering
# ---------------------------------------------------------------------------


def _check_call_layering(project: Project, graph: CallGraph) -> list[Finding]:
    findings: list[Finding] = []
    seen: set[tuple] = set()
    for edge in graph.edges:
        if edge.kind != "direct" or edge.callee is None:
            continue
        caller = project.functions.get(edge.caller)
        callee = project.functions.get(edge.callee)
        if caller is None or callee is None:
            continue
        if "." not in caller.module:
            continue  # top-level / __init__ modules sit above the layering
        caller_rank = LAYER_RANKS.get(caller.module.split(".", 1)[0])
        callee_pkg = callee.module.split(".", 1)[0]
        callee_rank = LAYER_RANKS.get(callee_pkg)
        if caller_rank is None or callee_rank is None:
            continue
        if callee_rank > caller_rank:
            key = (edge.path, edge.lineno, edge.callee)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                rule="LAY001", path=edge.path, line=edge.lineno, col=1,
                message=(
                    f"{caller.module.split('.', 1)[0]}/ (layer "
                    f"{caller_rank}) calls {edge.callee} ({callee_pkg}/, "
                    f"layer {callee_rank}); lower layers must not invoke "
                    "higher ones — this edge evades the import-level "
                    "LAY001 check"
                ),
            ))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def analyze_program(root: str | Path,
                    pyproject: str | Path | None = None) -> ProgramReport:
    """Run every whole-program analysis over the package at ``root``.

    ``pyproject`` locates the shared-state allowlist; when None, a
    ``pyproject.toml`` next to ``root``'s repository layout (two levels
    up, the conventional ``src/repro`` shape) is used if present.
    """
    root = Path(root)
    if pyproject is None:
        candidate = root.parent.parent / "pyproject.toml"
        pyproject = candidate if candidate.exists() else None
    else:
        pyproject = Path(pyproject)
    project = build_project(root)
    graph = build_call_graph(project)
    registry = load_allowlist(pyproject) if pyproject else {}
    extra_roots = _extra_hot_roots(pyproject) if pyproject else ()

    sites, orphan_findings = _annotation_sites(project)
    annotated = {s.site for s in sites}

    findings: list[Finding] = list(project.errors)
    findings.extend(_check_seed_collisions(project))
    findings.extend(_check_seed_escapes(project))
    findings.extend(_check_module_state(project, annotated))
    findings.extend(_check_instance_state(project, graph, annotated,
                                          extra_roots))
    findings.extend(_check_call_layering(project, graph))
    findings.extend(orphan_findings)
    findings.extend(_check_registry(sites, registry, pyproject))

    # Honor # repro: allow[RULE] suppressions (statement-scoped), exactly
    # like the per-module rules.
    by_path = {str(mod.path): mod for mod in project.modules.values()}
    kept: list[Finding] = []
    suppress_cache: dict[str, dict[int, set[str]]] = {}
    for finding in findings:
        mod = by_path.get(finding.path)
        if mod is not None:
            index = suppress_cache.get(finding.path)
            if index is None:
                index = suppressed_rule_index(mod.tree, mod.lines)
                suppress_cache[finding.path] = index
            if finding.rule in index.get(finding.line, ()):
                continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    edge_kinds = Counter(edge.kind for edge in graph.edges)
    stats = {
        "files": len(project.modules),
        "functions": len(project.functions),
        "classes": len(project.classes),
        "call_edges": len(graph.edges),
        "direct_edges": edge_kinds.get("direct", 0),
        "fuzzy_edges": edge_kinds.get("fuzzy", 0),
        "unknown_calls": edge_kinds.get("unknown", 0),
        "annotations": len(sites),
        "findings": len(kept),
        "findings_by_rule": dict(Counter(f.rule for f in kept)),
    }
    return ProgramReport(findings=kept, stats=stats)


def _extra_hot_roots(pyproject: Path) -> tuple[str, ...]:
    import tomllib

    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError):
        return ()
    roots = (
        data.get("tool", {}).get("repro", {}).get("program", {})
        .get("hot_roots", [])
    )
    return tuple(r for r in roots if isinstance(r, str))


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

_LINE_REF_RE = re.compile(r":\d+")


def fingerprint(finding: Finding) -> str:
    """A line-number-insensitive identity for baseline matching.

    Keyed on rule, path, and the message with ``:<line>`` references
    stripped — stable across unrelated edits that shift line numbers,
    invalidated when the finding itself materially changes.
    """
    path = Path(finding.path).as_posix()
    message = _LINE_REF_RE.sub("", finding.message)
    return f"{finding.rule}|{path}|{message}"


def load_baseline(path: Path) -> Counter:
    """The accepted-finding multiset from a baseline file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return Counter()
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        return Counter()
    counts: Counter = Counter()
    for entry in data.get("entries", []):
        if isinstance(entry, dict) and isinstance(
                entry.get("fingerprint"), str):
            counts[entry["fingerprint"]] += int(entry.get("count", 1))
    return counts


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Accept the current findings: write them as the new baseline."""
    counts = Counter(fingerprint(f) for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Accepted pre-existing findings of `python -m repro lint "
            "--program`. Baselined findings do not fail CI; new ones do. "
            "Regenerate with --update-baseline after fixing or accepting "
            "a finding."
        ),
        "entries": [
            {"fingerprint": fp, "count": n}
            for fp, n in sorted(counts.items())
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")


def apply_baseline(findings: list[Finding],
                   baseline: Counter) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (baselined, fresh) against an accepted multiset."""
    budget = Counter(baseline)
    baselined: list[Finding] = []
    fresh: list[Finding] = []
    for finding in findings:
        fp = fingerprint(finding)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            baselined.append(finding)
        else:
            fresh.append(finding)
    return baselined, fresh


# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------


def to_sarif(findings: list[Finding], fresh: list[Finding]) -> dict:
    """The findings as a minimal SARIF 2.1.0 log.

    Fresh findings carry level ``error`` (they fail the run); baselined
    ones are included as ``note`` so code-scanning UIs show the accepted
    debt without failing on it.
    """
    fresh_ids = {id(f) for f in fresh}
    rules = sorted({f.rule for f in findings})
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-program-analyzer",
                    "informationUri":
                        "https://example.invalid/docs/ANALYSIS.md",
                    "rules": [
                        {
                            "id": rule,
                            "shortDescription": {
                                "text": PROGRAM_RULES.get(rule, rule),
                            },
                        }
                        for rule in rules
                    ],
                },
            },
            "results": [
                {
                    "ruleId": finding.rule,
                    "level": ("error" if id(finding) in fresh_ids
                              else "note"),
                    "message": {"text": finding.message},
                    "locations": [{
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": Path(finding.path).as_posix(),
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col,
                            },
                        },
                    }],
                    "partialFingerprints": {
                        "reproProgram/v1": fingerprint(finding),
                    },
                }
                for finding in findings
            ],
        }],
    }
