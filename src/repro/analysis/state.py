"""Shared-mutable-state model: annotations, allowlist, mutability tests.

The race rules in :mod:`repro.analysis.program` report shared mutable
state *unless* the site carries an explicit concurrency story (the
examples below omit the leading ``#`` so this docstring is not itself a
registered annotation)::

    _frames: OrderedDict = ...    repro: shared[lock=pool_lock] reason...
    METRICS = MetricsRegistry()   repro: shared[lock=_lock] registry
    class SampleStream:           repro: shared[confined] one per traversal

The grammar is ``# repro: shared[lock=<name>|owner=<name>|confined|frozen]``
followed by free-text rationale:

* ``lock=<name>``  — mutations are serialized by the named lock;
* ``owner=<name>`` — mutations are serialized by the named scheduler:
  concurrent logical users exist, but every mutation happens inside one
  scheduling quantum of that owner (``serve.scheduler`` is the one the
  serve layer registers; its claim is *checked* by the access-ordinal
  sanitizer's single-writer tag on ``testkit fuzz --serve`` sweeps);
* ``confined``     — the object is only ever touched by one logical
  writer at a time (a single traversal or test);
* ``frozen``       — written once during import/build, read-only after.

Every annotation must also be registered in the ``pyproject.toml``
allowlist (``[tool.repro.program] shared = ["<site>: <spec>", ...]``) so
the set of sanctioned shared state is reviewable in one place; an
annotation without a registry entry — or a stale registry entry without
an annotation — is itself a finding (RACE003).
"""

from __future__ import annotations

import re
import tomllib
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "SharedAnnotation",
    "collect_annotations",
    "load_allowlist",
    "MUTABLE_FACTORIES",
    "MUTATOR_METHODS",
]

_SHARED_RE = re.compile(
    r"#\s*repro:\s*shared\["
    r"(lock=[A-Za-z0-9_.]+|owner=[A-Za-z0-9_.]+|confined|frozen)\]"
)

#: Canonical callables that construct a shared-mutable container.  The
#: plain builtins double as their canonical names; ``itertools.count`` is
#: here because a shared counter object is exactly as racy as a dict.
MUTABLE_FACTORIES = {
    "dict", "list", "set", "bytearray",
    "collections.OrderedDict", "collections.defaultdict",
    "collections.deque", "collections.Counter", "collections.ChainMap",
    "itertools.count",
}

#: Method calls that mutate a container in place.
MUTATOR_METHODS = {
    "append", "appendleft", "add", "insert", "extend", "remove", "discard",
    "pop", "popleft", "popitem", "clear", "update", "setdefault",
    "move_to_end", "sort", "reverse",
}


@dataclass(frozen=True)
class SharedAnnotation:
    """One parsed ``# repro: shared[...]`` annotation."""

    kind: str  #: ``"lock"`` | ``"owner"`` | ``"confined"`` | ``"frozen"``
    lock: str | None  #: lock/owner name when ``kind`` is ``lock``/``owner``
    line: int

    @property
    def spec(self) -> str:
        """The normalized bracket text (``"lock=registry"``)."""
        if self.kind in ("lock", "owner"):
            return f"{self.kind}={self.lock}"
        return self.kind


def parse_spec(spec: str) -> tuple[str, str | None]:
    """Split a spec string into ``(kind, lock_or_owner_name)``."""
    spec = spec.strip()
    if spec.startswith("lock="):
        return "lock", spec[len("lock="):]
    if spec.startswith("owner="):
        return "owner", spec[len("owner="):]
    return spec, None


def collect_annotations(lines: list[str]) -> dict[int, SharedAnnotation]:
    """Every ``shared[...]`` annotation in a file, keyed by 1-based line."""
    found: dict[int, SharedAnnotation] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SHARED_RE.search(text)
        if match is None:
            continue
        kind, lock = parse_spec(match.group(1))
        found[lineno] = SharedAnnotation(kind=kind, lock=lock, line=lineno)
    return found


def load_allowlist(pyproject: Path) -> dict[str, str]:
    """The sanctioned shared-state registry from ``pyproject.toml``.

    Returns ``{site_qname: spec}`` (e.g. ``{"obs.metrics.METRICS":
    "lock=_lock"}``).  A missing file or missing table is an empty
    registry, not an error — fixture projects have no pyproject.
    """
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError):
        return {}
    entries = (
        data.get("tool", {}).get("repro", {}).get("program", {})
        .get("shared", [])
    )
    registry: dict[str, str] = {}
    for entry in entries:
        if not isinstance(entry, str) or ":" not in entry:
            continue
        site, _, spec = entry.partition(":")
        registry[site.strip()] = spec.strip()
    return registry
