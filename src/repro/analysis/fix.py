"""``lint --fix``: mechanical rewrites for fixable findings (MUT001).

The only autofix today is the None-sentinel rewrite for mutable default
arguments::

    def f(xs: list = [], seen=set()):     def f(xs: list | None = None,
        ...                                     seen=None):
                                              if xs is None:
                                                  xs = []
                                              if seen is None:
                                                  seen = set()
                                              ...

The rewrite is deliberately conservative — it edits source text spans
reported by the parser rather than regenerating code, so formatting,
comments, and everything outside the touched spans survive byte-for-byte.
Functions it cannot fix safely are skipped and reported, never mangled:

* ``lambda`` defaults (no body to hold the sentinel test);
* one-line bodies on the ``def`` line (nowhere to insert);
* parameters already named ``None``-ambiguously — not applicable here,
  the sentinel test is inserted only for the rewritten parameters.

Fixing is opt-in (``python -m repro lint --fix``) because it rewrites
files in place; run it on a clean working tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .lint import iter_python_files

__all__ = ["FixResult", "fix_mut001_source", "fix_paths"]


@dataclass
class FixResult:
    """Outcome of fixing one file (or one source string)."""

    source: str
    fixed: int = 0  #: defaults rewritten
    skipped: list[str] = field(default_factory=list)  #: human reasons


def _mutable_default(node: ast.AST) -> bool:
    # Mirrors the MUT001 rule's test (rules._is_mutable_default); kept in
    # sync by the round-trip tests that re-lint fixed sources.
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"list", "dict", "set", "bytearray"}
    )


def _defaults_with_args(args: ast.arguments):
    """(arg, default) pairs for every defaulted parameter, in order."""
    positional = [*args.posonlyargs, *args.args]
    pairs = list(zip(positional[len(positional) - len(args.defaults):],
                     args.defaults))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            pairs.append((arg, default))
    return pairs


def fix_mut001_source(source: str, filename: str = "<source>") -> FixResult:
    """Rewrite every fixable mutable default in ``source``.

    Returns the new source (unchanged when nothing was fixable), the
    number of rewritten defaults, and the reasons anything was skipped.
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return FixResult(source=source,
                         skipped=[f"does not parse: {exc.msg}"])
    lines = source.splitlines(keepends=True)
    replacements: list[tuple[int, int, int, int, str]] = []
    insertions: list[tuple[int, str]] = []  # (insert before 1-based line, text)
    result = FixResult(source=source)

    for node in ast.walk(tree):
        if isinstance(node, ast.Lambda):
            if any(_mutable_default(d) for d in
                   (*node.args.defaults,
                    *(d for d in node.args.kw_defaults if d is not None))):
                result.skipped.append(
                    f"line {node.lineno}: lambda default has no body to "
                    "hold a sentinel test")
            continue
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        fixable = [(arg, default)
                   for arg, default in _defaults_with_args(node.args)
                   if _mutable_default(default)]
        if not fixable:
            continue
        body = node.body
        if body[0].lineno == node.lineno:
            result.skipped.append(
                f"line {node.lineno}: {node.name} has its body on the "
                "def line; nowhere to insert the sentinel test")
            continue
        # Where the sentinel block goes: after a leading docstring.
        anchor = body[0]
        if (
            isinstance(anchor, ast.Expr)
            and isinstance(anchor.value, ast.Constant)
            and isinstance(anchor.value.value, str)
            and len(body) > 1
        ):
            anchor = body[1]
        indent = " " * anchor.col_offset
        sentinel_lines = []
        for arg, default in fixable:
            default_src = ast.get_source_segment(source, default)
            if default_src is None:  # pragma: no cover - parser guarantee
                continue
            replacements.append((default.lineno, default.col_offset,
                                 default.end_lineno, default.end_col_offset,
                                 "None"))
            if arg.annotation is not None:
                ann_src = ast.get_source_segment(source, arg.annotation)
                needs_none = not any(
                    isinstance(sub, ast.Constant) and sub.value is None
                    for sub in ast.walk(arg.annotation)
                )
                if ann_src is not None and needs_none and (
                        "None" not in ann_src):
                    replacements.append((
                        arg.annotation.lineno, arg.annotation.col_offset,
                        arg.annotation.end_lineno,
                        arg.annotation.end_col_offset,
                        f"{ann_src} | None"))
            sentinel_lines.append(
                f"{indent}if {arg.arg} is None:\n"
                f"{indent}    {arg.arg} = {default_src}\n")
            result.fixed += 1
        if sentinel_lines:
            insertions.append((anchor.lineno, "".join(sentinel_lines)))

    if not result.fixed:
        return result

    # Apply span replacements bottom-up so earlier positions stay valid.
    for sl, sc, el, ec, text in sorted(replacements, reverse=True):
        head = lines[sl - 1][:sc]
        tail = lines[el - 1][ec:]
        lines[sl - 1:el] = [head + text + tail]
    # Line indexes shift once spans collapse multi-line defaults; recount
    # insertion anchors against the rewritten text instead of trusting the
    # old line numbers when any replacement removed lines.
    removed_before = sorted((sl, el) for sl, sc, el, ec, _ in replacements
                            if el > sl)
    adjusted: list[tuple[int, str]] = []
    for before_line, text in insertions:
        shift = sum(el - sl for sl, el in removed_before if el < before_line)
        adjusted.append((before_line - shift, text))
    for before_line, text in sorted(adjusted, reverse=True):
        lines.insert(before_line - 1, text)
    result.source = "".join(lines)
    return result


def fix_paths(paths: list[str | Path]) -> tuple[int, int, list[str]]:
    """Fix every Python file under ``paths`` in place.

    Returns ``(files_changed, defaults_fixed, skipped_reasons)``.
    """
    files_changed = 0
    total_fixed = 0
    skipped: list[str] = []
    for path in iter_python_files(Path(p) for p in paths):
        source = path.read_text(encoding="utf-8")
        result = fix_mut001_source(source, filename=str(path))
        skipped.extend(f"{path}: {reason}" for reason in result.skipped)
        if result.fixed:
            path.write_text(result.source, encoding="utf-8")
            files_changed += 1
            total_fixed += result.fixed
    return files_changed, total_fixed, skipped
