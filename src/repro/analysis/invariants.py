"""Runtime sanitizers for the ACE Tree's statistical and structural invariants.

The static rules in :mod:`repro.analysis.rules` keep randomness and timing
flowing through the sanctioned layers; this module checks the *product* of
those layers:

* :func:`check_tree` — structural integrity of a built tree: split keys
  ascending and nested within their node boxes, every leaf's section-``s``
  records falling inside the level-``s`` ancestor range (the paper's
  ``L.R1 ⊃ L.R2 ⊃ ... ⊃ L.Rh`` nesting), per-cell counts conserved, and
  the Shuttle's toggle pointers staying valid on a probe stream.
* :func:`check_sample` — the Combine correctness argument, empirically: a
  prefix of the sample stream must be statistically uniform over the
  matching population (chi-square against the exact per-cell matching
  counts), and every simulated page read during the query must be
  attributed to exactly one ``PROFILE`` counter (cost conservation).
* :func:`check_stream` — white-box invariants of a live
  :class:`~repro.acetree.query.SampleStream` (toggle bits in range,
  buffered-record accounting exact).

All checks raise :class:`repro.core.errors.InvariantViolation` on failure
and run under :meth:`SimulatedDisk.unmetered`, so they never disturb the
simulated clock of the experiment they are guarding.  Wire them into a run
with the bench CLI's ``--sanitize`` flag or call them from tests.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from ..core.errors import InvariantViolation
from ..core.profile import PROFILE

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..acetree.query import SampleStream
    from ..acetree.tree import AceTree
    from ..core.intervals import Box

__all__ = [
    "AccessOrdinalSanitizer",
    "SampleCheckReport",
    "SanitizedDict",
    "SanitizedHandle",
    "check_tree",
    "check_sample",
    "check_stream",
]


def _fail(message: str) -> None:
    raise InvariantViolation(message)


# ---------------------------------------------------------------------------
# check_tree — structural integrity
# ---------------------------------------------------------------------------


def check_tree(
    tree: "AceTree",
    *,
    max_leaves: int | None = None,
    probe_batches: int = 4,
) -> None:
    """Verify the structural invariants of a built ACE Tree.

    Args:
        tree: the tree to check.
        max_leaves: cap on how many leaves to read (``None`` checks all;
            the per-cell count conservation check needs all of them).
        probe_batches: how many batches of a whole-domain probe stream to
            draw while validating the Shuttle's toggle pointers; 0 skips
            the probe.

    Raises:
        InvariantViolation: on the first violated invariant.
    """
    geometry = tree.geometry

    # -- split keys: ascending per node, nested within the node box --------
    for level in range(1, geometry.height):
        axis = geometry.axis(level)
        for index in range(geometry.num_nodes(level)):
            boundaries = geometry.split_keys(level, index)
            if any(b > c for b, c in zip(boundaries, boundaries[1:])):
                _fail(
                    f"split keys of node ({level},{index}) not ascending: "
                    f"{boundaries}"
                )
            side = geometry.node_box(level, index).sides[axis]
            for boundary in boundaries:
                if not side.lo <= boundary <= side.hi:
                    _fail(
                        f"split key {boundary} of node ({level},{index}) "
                        f"escapes its box side [{side.lo}, {side.hi})"
                    )
            parent_box = geometry.node_box(level, index)
            for child_level, child_index in geometry.children(level, index):
                child_box = geometry.node_box(child_level, child_index)
                if not parent_box.contains(child_box):
                    _fail(
                        f"child box ({child_level},{child_index}) not nested "
                        f"in parent ({level},{index})"
                    )

    # -- counts conserved --------------------------------------------------
    if geometry.has_counts:
        total = sum(geometry.cell_count(leaf) for leaf in range(geometry.num_leaves))
        if total != tree.num_records:
            _fail(
                f"cell counts sum to {total}, tree holds {tree.num_records} "
                "records"
            )

    # -- leaves: section records inside their ancestor ranges --------------
    key_of = tree.schema.keys_getter(tree.key_fields)
    num_leaves = geometry.num_leaves
    leaves_to_check = num_leaves if max_leaves is None else min(max_leaves, num_leaves)
    tallied = [0] * num_leaves
    with tree.disk.unmetered():
        for leaf_index in range(leaves_to_check):
            leaf = tree.leaf_store.read_leaf(leaf_index)
            if leaf.index != leaf_index:
                _fail(f"leaf {leaf_index} stores index {leaf.index}")
            if leaf.height != geometry.height:
                _fail(
                    f"leaf {leaf_index} has {leaf.height} sections, tree "
                    f"height is {geometry.height}"
                )
            for s in range(1, geometry.height + 1):
                box = geometry.section_box(leaf_index, s)
                for record in leaf.section(s):
                    point = key_of(record)
                    if not box.contains_point(point):
                        _fail(
                            f"leaf {leaf_index} section {s} record key "
                            f"{point} outside ancestor range {box}"
                        )
            # Tally each record against the cell its *key* lives in (the
            # section decides where it is stored, not where it belongs).
            for section in leaf.sections:
                for record in section:
                    tallied[geometry.locate_leaf(key_of(record))] += 1

        if (
            geometry.has_counts
            and leaves_to_check == num_leaves
        ):
            for cell in range(num_leaves):
                if tallied[cell] != geometry.cell_count(cell):
                    _fail(
                        f"cell {cell}: {tallied[cell]} records located in "
                        f"its box, geometry records {geometry.cell_count(cell)}"
                    )

        # -- toggle pointers on a probe stream -----------------------------
        if probe_batches > 0:
            stream = tree.sample(_domain_query(tree), seed=0)
            for _ in range(probe_batches):
                batch = next(stream, None)
                if batch is None:
                    break
                check_stream(stream)


def _domain_query(tree: "AceTree") -> "Box":
    """A query box covering the tree's whole key domain."""
    return tree.geometry.domain


# ---------------------------------------------------------------------------
# check_stream — white-box stream invariants
# ---------------------------------------------------------------------------


def check_stream(stream: "SampleStream") -> None:
    """Validate the live state of a sample stream (toggle bits, buffers)."""
    arity = stream.tree.geometry.arity
    height = stream.tree.geometry.height
    for (level, index), pointer in stream._next_child.items():
        if not 0 <= pointer < arity:
            _fail(
                f"toggle pointer {pointer} at node ({level},{index}) "
                f"outside 0..{arity - 1}"
            )
        if not 1 <= level < height:
            _fail(f"toggle pointer recorded at non-internal level {level}")
    buffered = sum(
        len(cell)
        for bucket in stream._buckets
        for cells in bucket.values()
        for cell in cells
    )
    if buffered != stream.stats.buffered_records:
        _fail(
            f"stream reports {stream.stats.buffered_records} buffered "
            f"records, buckets hold {buffered}"
        )
    for level, index in stream._done:
        if not 1 <= level <= height:
            _fail(f"done-set entry at invalid level {level}")
        if not 0 <= index < arity ** (level - 1):
            _fail(f"done-set entry ({level},{index}) out of range")


# ---------------------------------------------------------------------------
# check_sample — uniformity + cost conservation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SampleCheckReport:
    """What :func:`check_sample` measured (returned on success)."""

    population_size: int
    sample_size: int
    bins: int
    chi2: float
    p_value: float
    pages_read: int
    pages_attributed: int
    leaves_read: int


def check_sample(
    tree: "AceTree",
    query: "Box",
    *,
    seed: int = 0,
    sample_size: int | None = None,
    alpha: float = 0.01,
    min_expected: float = 5.0,
) -> SampleCheckReport:
    """Empirically verify Combine's uniformity claim and cost conservation.

    Runs the sample stream for ``query`` to exhaustion (under an unmetered
    disk, so the experiment clock is untouched).  The emitted prefix of
    ``sample_size`` records (default: 20% of the matching population) is
    chi-square-tested against the exact per-leaf-cell composition of the
    full matching population; a uniform random prefix matches those
    proportions.  Every simulated page read during the query must equal the
    pages attributed to the ``leaf_store.pages_read`` PROFILE counter.

    The stream is deterministic given ``(tree, query, seed)``, so a pass or
    failure is exactly reproducible — there is no test flakiness, only
    seeds that expose bias.

    Raises:
        InvariantViolation: if uniformity is rejected at ``alpha``, the
            page accounting does not balance, or a stream invariant breaks.
    """
    geometry = tree.geometry
    key_of = tree.schema.keys_getter(tree.key_fields)
    profile_was_enabled = PROFILE.enabled
    PROFILE.enable()
    pages_attr_before = PROFILE.counter("leaf_store.pages_read")
    try:
        with tree.disk.unmetered():
            stream = tree.sample(query, seed=seed)
            emitted: list = []
            for batch in stream:
                check_stream(stream)
                emitted.extend(batch.records)
            pages_read = tree.disk.stats.page_reads
            leaves_read = stream.stats.leaves_read
    finally:
        if not profile_was_enabled:
            PROFILE.disable()
    pages_attributed = PROFILE.counter("leaf_store.pages_read") - pages_attr_before

    if pages_read != pages_attributed:
        _fail(
            f"cost conservation broken: disk served {pages_read} page "
            f"reads, PROFILE attributes {pages_attributed}"
        )

    population = len(emitted)
    for record in emitted:
        if not query.contains_point(key_of(record)):
            _fail(f"emitted record {record!r} does not match the query")

    if sample_size is None:
        sample_size = max(1, population // 5)
    sample_size = min(sample_size, population)

    # Bin the population by leaf cell; a uniform prefix follows the same
    # proportions.  Cells are merged greedily until each bin's expected
    # count reaches ``min_expected`` (the chi-square validity rule).
    pop_counts: dict[int, int] = {}
    for record in emitted:
        cell = geometry.locate_leaf(key_of(record))
        pop_counts[cell] = pop_counts.get(cell, 0) + 1
    sample_counts: dict[int, int] = {}
    for record in emitted[:sample_size]:
        cell = geometry.locate_leaf(key_of(record))
        sample_counts[cell] = sample_counts.get(cell, 0) + 1

    bins: list[tuple[float, int]] = []  # (expected, observed)
    expected_acc = 0.0
    observed_acc = 0
    for cell in sorted(pop_counts):
        expected_acc += sample_size * pop_counts[cell] / population
        observed_acc += sample_counts.get(cell, 0)
        if expected_acc >= min_expected:
            bins.append((expected_acc, observed_acc))
            expected_acc = 0.0
            observed_acc = 0
    if bins and (expected_acc or observed_acc):
        last_e, last_o = bins[-1]
        bins[-1] = (last_e + expected_acc, last_o + observed_acc)

    chi2 = 0.0
    p_value = 1.0
    if len(bins) >= 2:
        chi2 = sum((obs - exp) ** 2 / exp for exp, obs in bins)
        p_value = _chi2_sf(chi2, len(bins) - 1)
        if p_value < alpha:
            _fail(
                f"sample prefix rejects uniformity: chi2={chi2:.2f} over "
                f"{len(bins)} bins, p={p_value:.5f} < alpha={alpha}"
            )

    return SampleCheckReport(
        population_size=population,
        sample_size=sample_size,
        bins=len(bins),
        chi2=chi2,
        p_value=p_value,
        pages_read=pages_read,
        pages_attributed=pages_attributed,
        leaves_read=leaves_read,
    )


# ---------------------------------------------------------------------------
# AccessOrdinalSanitizer — runtime single-writer checking
# ---------------------------------------------------------------------------


@dataclass
class _StructureState:
    """Per-wrapped-structure write history."""

    #: Collapsed writer history: consecutive writes by one writer are one
    #: episode.  A writer re-appearing after a *different* writer wrote is
    #: an interleaved-episode violation.
    episodes: list[str] = field(default_factory=list)
    #: Simulated clock of the current tick and the distinct writers that
    #: have written within it.
    tick_clock: float | None = None
    tick_writers: list[str] = field(default_factory=list)
    reads: int = 0
    writes: int = 0


class AccessOrdinalSanitizer:
    """Runtime proof of the static ``shared[confined]`` annotations.

    The program analyzer accepts shared caches and memos when they are
    annotated *confined* — touched by one logical writer at a time.  This
    sanitizer makes that claim checkable: instrumented structures (wrapped
    via :meth:`wrap` / :meth:`wrap_dict`) record every mutation against
    the writer context active at the time and the simulated clock, and an
    :class:`~repro.core.errors.InvariantViolation` is raised on:

    * **unattributed write** — a wrapped structure is mutated with no
      ``with sanitizer.writer(tag):`` context active;
    * **multi-writer tick** — two distinct writers mutate one structure
      at the same simulated-clock reading (nothing serialized them: no
      charged I/O or CPU separates the writes);
    * **interleaved episodes** — writer A mutates a structure, writer B
      mutates it, then A mutates it again.  Confinement means ownership
      transfers; an A-B-A history is two concurrent owners, exactly the
      shape a tenant scheduler would produce by racing two traversals.

    Reads are never violations (warm cache streams legitimately read data
    a previous stream wrote) but are counted in :attr:`stats`.

    The checker is deterministic: it observes only the simulated clock and
    the caller-chosen writer tags, so under the testkit's replayable
    scenarios a trip reproduces exactly.
    """

    def __init__(self, clock_fn: Callable[[], float]) -> None:
        self._clock_fn = clock_fn
        self._writer_stack: list[str] = []
        # One sanitizer instruments one scenario run; its bookkeeping is
        # confined to that run by construction.
        self._structures: dict[str, _StructureState] = {}  # repro: shared[confined]

    # -- writer contexts ---------------------------------------------------

    @contextmanager
    def writer(self, tag: str):
        """Declare ``tag`` the active logical writer for the duration."""
        self._writer_stack.append(tag)
        try:
            yield self
        finally:
            self._writer_stack.pop()

    @property
    def active_writer(self) -> str | None:
        return self._writer_stack[-1] if self._writer_stack else None

    # -- recording ---------------------------------------------------------

    def note_read(self, structure: str, op: str = "") -> None:
        self._state(structure).reads += 1

    def note_write(self, structure: str, op: str = "") -> None:
        state = self._state(structure)
        state.writes += 1
        writer = self.active_writer
        suffix = f".{op}" if op else ""
        if writer is None:
            _fail(
                f"sanitizer: write to {structure}{suffix} outside any "
                "writer context; every mutation of confined state must be "
                "attributed to a logical writer"
            )
        clock = self._clock_fn()
        if state.tick_clock is None or clock != state.tick_clock:
            state.tick_clock = clock
            state.tick_writers = [writer]
        elif writer not in state.tick_writers:
            _fail(
                f"sanitizer: {structure}{suffix} written by "
                f"{writer!r} and {state.tick_writers[-1]!r} within one "
                f"simulated-clock tick (clock={clock!r}); confined state "
                "requires a single writer per tick"
            )
        if state.episodes and state.episodes[-1] != writer:
            if writer in state.episodes:
                _fail(
                    f"sanitizer: interleaved writer episodes on "
                    f"{structure}{suffix}: {writer!r} wrote, "
                    f"{state.episodes[-1]!r} wrote, now {writer!r} again — "
                    "two logical writers own this structure concurrently"
                )
            state.episodes.append(writer)
        elif not state.episodes:
            state.episodes.append(writer)

    def _state(self, structure: str) -> _StructureState:
        state = self._structures.get(structure)
        if state is None:
            state = _StructureState()
            self._structures[structure] = state
        return state

    @property
    def stats(self) -> dict[str, dict[str, int]]:
        """Per-structure read/write counts (for tests and reports)."""
        return {
            name: {"reads": state.reads, "writes": state.writes,
                   "episodes": len(state.episodes)}
            for name, state in self._structures.items()
        }

    # -- instrumentation ---------------------------------------------------

    def wrap(
        self,
        structure: str,
        obj,
        *,
        write_ops: Sequence[str],
        read_ops: Sequence[str] = (),
    ) -> "SanitizedHandle":
        """Wrap any object, intercepting the named mutator methods.

        The default op sets below cover the project's cache classes::

            sanitizer.wrap("SampleCache", cache,
                           write_ops=("put", "clear"),
                           read_ops=("get", "peek"))
            sanitizer.wrap("BufferPool", pool,
                           write_ops=("read", "write", "invalidate",
                                      "clear"))
            sanitizer.wrap("DecodeMemo", memo,
                           write_ops=("put", "clear"), read_ops=("get",))

        ``BufferPool.read`` counts as a write: a miss admits and evicts
        frames, mutating the LRU state.
        """
        return SanitizedHandle(self, structure, obj,
                               frozenset(write_ops), frozenset(read_ops))

    def wrap_dict(self, structure: str, mapping: dict) -> "SanitizedDict":
        """A dict replacement that reports mutations (for bare memos)."""
        return SanitizedDict(self, structure, mapping)


class SanitizedHandle:
    """Method-intercepting proxy produced by :meth:`AccessOrdinalSanitizer.wrap`.

    Unlisted attributes and methods pass straight through to the wrapped
    object, so the proxy drops into any call site that duck-types the
    original (``attach_sample_cache``, leaf-store memo slots, ...).
    """

    __slots__ = ("_obj", "_sanitizer", "_structure", "_write_ops",
                 "_read_ops")

    def __init__(self, sanitizer, structure, obj, write_ops, read_ops):
        object.__setattr__(self, "_sanitizer", sanitizer)
        object.__setattr__(self, "_structure", structure)
        object.__setattr__(self, "_obj", obj)
        object.__setattr__(self, "_write_ops", write_ops)
        object.__setattr__(self, "_read_ops", read_ops)

    @property
    def wrapped(self):
        """The underlying object."""
        return self._obj

    def __getattr__(self, name):
        value = getattr(self._obj, name)
        if callable(value):
            if name in self._write_ops:
                sanitizer, structure = self._sanitizer, self._structure

                def write_op(*args, **kwargs):
                    sanitizer.note_write(structure, name)
                    return value(*args, **kwargs)

                return write_op
            if name in self._read_ops:
                sanitizer, structure = self._sanitizer, self._structure

                def read_op(*args, **kwargs):
                    sanitizer.note_read(structure, name)
                    return value(*args, **kwargs)

                return read_op
        return value

    def __contains__(self, item) -> bool:
        return item in self._obj

    def __len__(self) -> int:
        return len(self._obj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanitizedHandle({self._structure}, {self._obj!r})"


class SanitizedDict(dict):
    """A dict that reports every mutation to the sanitizer.

    Used for bare-dict memos (``AceTree._overlap_memo``): swap the memo
    for ``sanitizer.wrap_dict("AceTree._overlap_memo", memo)`` and every
    ``d[k] = v`` / ``clear`` / ``pop`` is ordinal-checked while reads stay
    plain dict reads.
    """

    def __init__(self, sanitizer: AccessOrdinalSanitizer, structure: str,
                 initial: dict | None = None):
        super().__init__(initial or {})
        self._sanitizer = sanitizer
        self._structure = structure

    def __setitem__(self, key, value):
        self._sanitizer.note_write(self._structure, "setitem")
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._sanitizer.note_write(self._structure, "delitem")
        super().__delitem__(key)

    def clear(self):
        self._sanitizer.note_write(self._structure, "clear")
        super().clear()

    def pop(self, *args):
        self._sanitizer.note_write(self._structure, "pop")
        return super().pop(*args)

    def popitem(self):
        self._sanitizer.note_write(self._structure, "popitem")
        return super().popitem()

    def setdefault(self, key, default=None):
        if key not in self:
            self._sanitizer.note_write(self._structure, "setdefault")
        return super().setdefault(key, default)

    def update(self, *args, **kwargs):
        self._sanitizer.note_write(self._structure, "update")
        super().update(*args, **kwargs)


def _chi2_sf(x: float, df: int) -> float:
    """Chi-square survival function, with a scipy-free fallback.

    scipy is a declared dependency, but the checker stays usable in
    minimal environments via the Wilson-Hilferty normal approximation
    (accurate to ~1e-3 for the p-range that matters here).
    """
    try:
        from scipy.stats import chi2 as _chi2  # noqa: PLC0415

        return float(_chi2.sf(x, df))
    except ImportError:  # pragma: no cover - scipy is normally present
        if x <= 0:
            return 1.0
        z = ((x / df) ** (1.0 / 3.0) - (1.0 - 2.0 / (9.0 * df))) / math.sqrt(
            2.0 / (9.0 * df)
        )
        return 0.5 * math.erfc(z / math.sqrt(2.0))
