"""AST lint framework for the repro codebase.

The library's correctness rests on global invariants that no single module
can see — every random draw must descend from :func:`repro.core.rng.derive`,
every I/O and timing operation must route through the simulated-clock disk
layer, and the package layering must stay acyclic.  This module provides
the *mechanism* for enforcing such invariants statically:

* a :class:`Rule` registry (``@register`` adds a rule; the project's rules
  live in :mod:`repro.analysis.rules`);
* a :class:`LintContext` handed to every rule: the parsed ``ast`` tree, the
  module's position inside the ``repro`` package (so rules can exempt the
  sanctioned modules), and an import-alias map for canonicalizing dotted
  names (``np.random.default_rng`` -> ``numpy.random.default_rng``);
* statement-scoped suppression via ``# repro: allow[RULE]`` comments
  (several IDs may be listed, comma separated; the rest of the comment
  should say *why*) — a comment on any line of a multi-line statement,
  including the closing line of a black-wrapped call, covers the whole
  statement;
* human-readable (``path:line:col: RULE message``) and JSON output.

Run it as ``python -m repro lint [--json] [paths...]``; see
``docs/ANALYSIS.md`` for the rule catalogue and how to add a rule.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "RULES",
    "register",
    "canonical_name",
    "dotted_name",
    "lint_file",
    "lint_paths",
    "format_findings",
    "findings_to_json",
    "suppressed_rule_index",
]

#: Rule ID for files that cannot be parsed at all.
SYNTAX_RULE = "AST000"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One lint violation, anchored to a file position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class LintContext:
    """Everything a rule needs to inspect one module."""

    path: Path
    #: Dotted module path relative to the ``repro`` package root
    #: (``"core.rng"`` for ``src/repro/core/rng.py``) or ``None`` when the
    #: file does not live under a directory named ``repro``.
    module: str | None
    tree: ast.Module
    lines: list[str]
    #: Maps a locally bound name to the canonical dotted name it imports
    #: (``np -> numpy``, ``Random -> random.Random``).
    aliases: dict[str, str] = field(default_factory=dict)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: an ID, a summary, and a checker."""

    id: str
    summary: str
    check: Callable[[LintContext], Iterable[Finding]]


#: Registry of all known rules, keyed by rule ID.
RULES: dict[str, Rule] = {}  # repro: shared[frozen] populated once at import by @register, read-only after


def register(rule_id: str, summary: str):
    """Decorator registering ``check(ctx) -> Iterable[Finding]`` as a rule."""

    def wrap(check: Callable[[LintContext], Iterable[Finding]]) -> Rule:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        rule = Rule(id=rule_id, summary=summary, check=check)
        RULES[rule_id] = rule
        return rule

    return wrap


# ---------------------------------------------------------------------------
# Name canonicalization helpers (shared by the rules)
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """The literal dotted name of an expression (``a.b.c``), if it is one."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def canonical_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """The import-resolved dotted name of an expression.

    ``np.random.default_rng`` becomes ``numpy.random.default_rng`` under
    ``import numpy as np``; a bare ``Random`` becomes ``random.Random``
    under ``from random import Random``.
    """
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    target = aliases.get(head)
    if target is None:
        return name
    return f"{target}.{rest}" if rest else target


def _collect_aliases(tree: ast.Module, module: str | None) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a``; the bound name already
                    # matches its canonical prefix, record it as itself.
                    head = alias.name.split(".", 1)[0]
                    aliases.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            base = resolve_import_base(node, module)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{base}.{alias.name}"
    return aliases


def resolve_import_base(node: ast.ImportFrom, module: str | None) -> str | None:
    """Absolute dotted module an ``ImportFrom`` pulls from, if resolvable.

    Relative imports are resolved against the file's repro-relative module
    path (so ``from ..core.rng import derive`` inside ``acetree/build.py``
    resolves to ``repro.core.rng``); they stay unresolved (``None``) for
    files outside the package.
    """
    if node.level == 0:
        return node.module
    if module is None:
        return None
    full = ("repro." + module).split(".")
    # Level 1 strips the module's own name, each extra level one package.
    base = full[: len(full) - node.level]
    if not base:
        return None
    if node.module:
        base.append(node.module)
    return ".".join(base)


def module_path_of(path: Path) -> str | None:
    """Dotted module path relative to the innermost ``repro`` directory."""
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    rel = parts[idx + 1:]
    if not rel:
        return None
    rel[-1] = rel[-1].removesuffix(".py")
    return ".".join(rel)


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------


def _suppressed_rules(line: str) -> set[str]:
    match = _SUPPRESS_RE.search(line)
    if not match:
        return set()
    return {part.strip() for part in match.group(1).split(",") if part.strip()}


def _statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """(first, last) line of every multi-line statement, headers only.

    For simple statements (assignments, expressions, returns...) the span
    is the whole statement — that is what lets a suppression on the
    closing line of a black-wrapped call cover the call's anchor line.
    Compound statements (``def``/``if``/``for``...) span only their
    *header*, up to the line before their first body statement: a comment
    at the end of a function must not silence the whole function.
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = body[0].lineno - 1
        else:
            end = getattr(node, "end_lineno", None) or node.lineno
        if end > node.lineno:
            spans.append((node.lineno, end))
    return spans


def suppressed_rule_index(tree: ast.Module,
                          lines: list[str]) -> dict[int, set[str]]:
    """Rule IDs suppressed at each 1-based line of a parsed file.

    A ``# repro: allow[RULE]`` comment silences findings anchored to its
    own line and — when it sits on any line of a multi-line statement —
    findings anchored anywhere in that statement.
    """
    index: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        rules = _suppressed_rules(text)
        if rules:
            index.setdefault(lineno, set()).update(rules)
    if index:
        for start, end in _statement_spans(tree):
            span_rules: set[str] = set()
            for lineno in range(start, end + 1):
                span_rules.update(index.get(lineno, ()))
            if span_rules:
                for lineno in range(start, end + 1):
                    index.setdefault(lineno, set()).update(span_rules)
    return index


def lint_file(path: Path, rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Run every (or the given) rule over one Python file."""
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule=SYNTAX_RULE,
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    module = module_path_of(path)
    ctx = LintContext(
        path=path,
        module=module,
        tree=tree,
        lines=lines,
        aliases=_collect_aliases(tree, module),
    )
    suppressed = suppressed_rule_index(tree, lines)
    findings: list[Finding] = []
    for rule in rules if rules is not None else RULES.values():
        for finding in rule.check(ctx):
            if finding.rule in suppressed.get(finding.line, ()):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files beneath them, sorted.

    ``fixtures/`` subtrees discovered *during* recursion are skipped: they
    hold deliberately rule-violating lint fixtures (see
    ``tests/analysis/fixtures/``) that whole-tree runs must not report.
    Passing a fixture directory or file explicitly still lints it — that
    is how the rule tests exercise them.
    """
    for path in paths:
        if path.is_dir():
            base_depth = len(path.parts)
            for file in sorted(path.rglob("*.py")):
                if "fixtures" in file.parts[base_depth:-1]:
                    continue
                yield file
        else:
            yield path


def lint_paths(
    paths: Iterable[str | Path], rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Lint every Python file under the given files/directories."""
    # Import for side effect: registers the project rule set exactly once.
    from . import rules as _project_rules  # noqa: F401

    findings: list[Finding] = []
    for file in iter_python_files(Path(p) for p in paths):
        findings.extend(lint_file(file, rules))
    return findings


# ---------------------------------------------------------------------------
# Output
# ---------------------------------------------------------------------------


def format_findings(findings: list[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    if not findings:
        return "lint: clean"
    lines = [finding.render() for finding in findings]
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    summary = ", ".join(f"{rule} x{n}" for rule, n in sorted(by_rule.items()))
    lines.append(f"lint: {len(findings)} finding(s) ({summary})")
    return "\n".join(lines)


def findings_to_json(findings: list[Finding]) -> str:
    """The findings as a JSON array (stable field order)."""
    return json.dumps([asdict(finding) for finding in findings], indent=2)
