"""Static analysis and runtime sanitizers for the repro codebase.

Two halves guard the invariants the paper's claims rest on:

* :mod:`repro.analysis.lint` / :mod:`repro.analysis.rules` — an AST lint
  pass (``python -m repro lint``) enforcing the RNG-derivation discipline,
  simulated-clock integrity, float-comparison hygiene on index keys, and
  package layering.
* :mod:`repro.analysis.invariants` — runtime checkers for ACE-Tree
  structure (:func:`check_tree`), sample uniformity and cost conservation
  (:func:`check_sample`), and live stream state (:func:`check_stream`).

See ``docs/ANALYSIS.md`` for the rule catalogue and extension guide.
"""

from .invariants import SampleCheckReport, check_sample, check_stream, check_tree
from .lint import (
    RULES,
    Finding,
    findings_to_json,
    format_findings,
    lint_file,
    lint_paths,
)
from . import rules as _rules  # noqa: F401  (registers the project rules)

__all__ = [
    "Finding",
    "RULES",
    "SampleCheckReport",
    "check_sample",
    "check_stream",
    "check_tree",
    "findings_to_json",
    "format_findings",
    "lint_file",
    "lint_paths",
]
