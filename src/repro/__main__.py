"""``python -m repro`` — regenerate the paper's figures from the CLI."""

from .bench.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
