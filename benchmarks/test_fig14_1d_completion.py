"""Figure 14: the 2.5%-selectivity race run to completion.

Paper shape: all three methods eventually return every matching record.
The permuted file finishes first (at ~100% of the scan time); a crossover
against the ACE Tree exists but happens "very late in the query execution,
by which time the ACE Tree has already retrieved almost 90% of the possible
random samples"; the B+-Tree finishes far later than both.
"""

import pytest
from conftest import run_and_report

from repro.bench import ACE, BPLUS, PERMUTED


def test_fig14(benchmark, scale, results_dir):
    result = run_and_report(benchmark, "fig14", scale, results_dir)

    completion = {
        name: result.completion_time(name) for name in (ACE, BPLUS, PERMUTED)
    }
    assert all(seconds is not None for seconds in completion.values())
    # Everyone returned the same (full) matching set.
    totals = {name: result.raw[name][0].total for name in result.raw}
    assert len(set(totals.values())) == 1
    if scale == "small":
        return
    # Permuted finishes around one scan; ACE after it; B+ last.
    assert completion[PERMUTED] < completion[ACE] < completion[BPLUS]
    assert completion[PERMUTED] == pytest.approx(
        result.scan_seconds, rel=0.2
    )
    # Crossover is late: when the permuted file finishes, ACE has already
    # returned the majority of the matching records.
    ace_curves = result.raw[ACE]
    fraction_done = [
        curve.count_at(completion[PERMUTED]) / curve.total
        for curve in ace_curves
    ]
    assert sum(fraction_done) / len(fraction_done) > 0.5
